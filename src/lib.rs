//! Umbrella crate of the PODS reproduction workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`) at the repository root. The
//! public API lives in the [`pods`] crate (re-exported here for
//! convenience); the individual pipeline stages live in the `pods-*` crates.
//!
//! See `README.md` for the quickstart, the pipeline diagram, the crate map,
//! and the engine matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pods::*;

/// The benchmark workloads bundled with the reproduction.
pub mod workloads {
    pub use pods_workloads::*;
}

/// The sequential and static-compilation baselines.
pub mod baseline {
    pub use pods_baseline::*;
}
