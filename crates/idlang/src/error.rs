//! Compilation errors for the `idlang` front end.

use crate::token::Span;

/// The phase in which a compilation error was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorPhase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Semantic analysis (name resolution, single assignment, arity).
    Sema,
}

impl std::fmt::Display for ErrorPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorPhase::Lex => write!(f, "lex"),
            ErrorPhase::Parse => write!(f, "parse"),
            ErrorPhase::Sema => write!(f, "semantic"),
        }
    }
}

/// An error produced while compiling an `idlang` program.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Which phase rejected the program.
    pub phase: ErrorPhase,
    /// Human-readable description of the problem.
    pub message: String,
    /// Location of the problem in the source, when known.
    pub span: Option<Span>,
}

impl CompileError {
    /// Creates a lexer error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        CompileError {
            phase: ErrorPhase::Lex,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a parser error.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        CompileError {
            phase: ErrorPhase::Parse,
            message: message.into(),
            span: Some(span),
        }
    }

    /// Creates a semantic-analysis error.
    pub fn sema(message: impl Into<String>, span: Option<Span>) -> Self {
        CompileError {
            phase: ErrorPhase::Sema,
            message: message.into(),
            span,
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.span {
            Some(span) => write!(f, "{} error at {}: {}", self.phase, span, self.message),
            None => write!(f, "{} error: {}", self.phase, self.message),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_phase_and_line() {
        let e = CompileError::parse("expected `;`", Span::new(3, 4, 7));
        let text = e.to_string();
        assert!(text.contains("parse"));
        assert!(text.contains("line 7"));
        assert!(text.contains("expected"));

        let e = CompileError::sema("unknown variable `x`", None);
        assert!(e.to_string().contains("semantic"));
    }
}
