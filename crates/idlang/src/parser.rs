//! Recursive-descent parser for `idlang`.

use crate::ast::{BinOp, Expr, FunctionDef, Program, Stmt, UnOp};
use crate::error::CompileError;
use crate::lexer::tokenize;
use crate::token::{Span, Token, TokenKind};

/// Parses source text into an AST [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<Program, CompileError> {
    let tokens = tokenize(source)?;
    Parser::new(tokens).program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn peek2_kind(&self) -> &TokenKind {
        let idx = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokenKind) -> bool {
        self.peek_kind() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, CompileError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(CompileError::parse(
                format!(
                    "expected {}, found {}",
                    kind.describe(),
                    self.peek_kind().describe()
                ),
                self.peek().span,
            ))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), CompileError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => Err(CompileError::parse(
                format!("expected identifier, found {}", other.describe()),
                self.peek().span,
            )),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut functions = Vec::new();
        while !self.at(&TokenKind::Eof) {
            functions.push(self.function()?);
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<FunctionDef, CompileError> {
        let def = self.expect(TokenKind::Def)?;
        let (name, name_span) = self.expect_ident()?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                let (p, _) = self.expect_ident()?;
                params.push(p);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(FunctionDef {
            name,
            params,
            body,
            span: def.span.merge(name_span),
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, CompileError> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.at(&TokenKind::RBrace) {
            if self.at(&TokenKind::Eof) {
                return Err(CompileError::parse(
                    "unexpected end of input inside block (missing `}`)",
                    self.peek().span,
                ));
            }
            stmts.push(self.statement()?);
        }
        self.expect(TokenKind::RBrace)?;
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, CompileError> {
        match self.peek_kind().clone() {
            TokenKind::For => self.for_stmt(),
            TokenKind::If => self.if_stmt(),
            TokenKind::Return => {
                let start = self.bump().span;
                let value = self.expr()?;
                let end = self.expect(TokenKind::Semicolon)?.span;
                Ok(Stmt::Return {
                    value,
                    span: start.merge(end),
                })
            }
            TokenKind::Let => {
                self.bump();
                self.binding_stmt()
            }
            TokenKind::Ident(_) => self.binding_stmt(),
            other => Err(CompileError::parse(
                format!("expected a statement, found {}", other.describe()),
                self.peek().span,
            )),
        }
    }

    /// Parses `name = expr;`, `name = array(...);`, `name[...] = expr;`, or a
    /// call-for-effect `name(args);`.
    fn binding_stmt(&mut self) -> Result<Stmt, CompileError> {
        let (name, start) = self.expect_ident()?;
        if self.at(&TokenKind::LParen) {
            self.bump();
            let mut args = Vec::new();
            if !self.at(&TokenKind::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(TokenKind::RParen)?;
            let end = self.expect(TokenKind::Semicolon)?.span;
            return Ok(Stmt::Call {
                function: name,
                args,
                span: start.merge(end),
            });
        }
        if self.at(&TokenKind::LBracket) {
            self.bump();
            let mut indices = Vec::new();
            loop {
                indices.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RBracket)?;
            self.expect(TokenKind::Assign)?;
            let value = self.expr()?;
            let end = self.expect(TokenKind::Semicolon)?.span;
            return Ok(Stmt::Store {
                array: name,
                indices,
                value,
                span: start.merge(end),
            });
        }
        self.expect(TokenKind::Assign)?;
        // Array allocations are recognised syntactically by their callee name.
        if let TokenKind::Ident(callee) = self.peek_kind().clone() {
            if matches!(callee.as_str(), "array" | "matrix" | "tensor")
                && *self.peek2_kind() == TokenKind::LParen
            {
                self.bump(); // callee
                self.bump(); // (
                let mut dims = Vec::new();
                loop {
                    dims.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semicolon)?.span;
                let expected = match callee.as_str() {
                    "array" => 1,
                    "matrix" => 2,
                    _ => 3,
                };
                if dims.len() != expected {
                    return Err(CompileError::parse(
                        format!(
                            "`{callee}` takes {expected} dimension argument(s), found {}",
                            dims.len()
                        ),
                        start,
                    ));
                }
                return Ok(Stmt::Alloc {
                    name,
                    dims,
                    span: start.merge(end),
                });
            }
        }
        let value = self.expr()?;
        let end = self.expect(TokenKind::Semicolon)?.span;
        Ok(Stmt::Let {
            name,
            value,
            span: start.merge(end),
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.expect(TokenKind::For)?.span;
        let (var, _) = self.expect_ident()?;
        self.expect(TokenKind::Assign)?;
        let from = self.expr()?;
        let descending = if self.eat(&TokenKind::To) {
            false
        } else if self.eat(&TokenKind::Downto) {
            true
        } else {
            return Err(CompileError::parse(
                format!(
                    "expected `to` or `downto`, found {}",
                    self.peek_kind().describe()
                ),
                self.peek().span,
            ));
        };
        let to = self.expr()?;
        let body = self.block()?;
        Ok(Stmt::For {
            var,
            from,
            to,
            descending,
            body,
            span: start,
        })
    }

    fn if_stmt(&mut self) -> Result<Stmt, CompileError> {
        let start = self.expect(TokenKind::If)?.span;
        let cond = self.expr()?;
        let then_body = self.block()?;
        let else_body = if self.eat(&TokenKind::Else) {
            if self.at(&TokenKind::If) {
                // `else if` chains desugar into a nested if statement.
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_body,
            else_body,
            span: start,
        })
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, CompileError> {
        if self.at(&TokenKind::If) {
            // Conditional expression: `if c then a else b`.
            let start = self.bump().span;
            let cond = self.expr()?;
            self.expect(TokenKind::Then)?;
            let then_value = self.expr()?;
            self.expect(TokenKind::Else)?;
            let else_value = self.expr()?;
            let span = start.merge(else_value.span());
            return Ok(Expr::Select {
                cond: Box::new(cond),
                then_value: Box::new(then_value),
                else_value: Box::new(else_value),
                span,
            });
        }
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::Or) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::Or,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.not_expr()?;
        while self.at(&TokenKind::And) {
            self.bump();
            let rhs = self.not_expr()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op: BinOp::And,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, CompileError> {
        if self.at(&TokenKind::Not) {
            let start = self.bump().span;
            let operand = self.not_expr()?;
            let span = start.merge(operand.span());
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
                span,
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.additive()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Ne => Some(BinOp::Ne),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.additive()?;
            let span = lhs.span().merge(rhs.span());
            Ok(Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            })
        } else {
            Ok(lhs)
        }
    }

    fn additive(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.multiplicative()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, CompileError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span().merge(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        if self.at(&TokenKind::Minus) {
            let start = self.bump().span;
            let operand = self.unary()?;
            let span = start.merge(operand.span());
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
                span,
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let token = self.peek().clone();
        match token.kind {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::Int(v, token.span))
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(Expr::Float(v, token.span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool(true, token.span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool(false, token.span))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.at(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                    }
                    let end = self.expect(TokenKind::RParen)?.span;
                    Ok(Expr::Call {
                        function: name,
                        args,
                        span: token.span.merge(end),
                    })
                } else if self.at(&TokenKind::LBracket) {
                    self.bump();
                    let mut indices = Vec::new();
                    loop {
                        indices.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    let end = self.expect(TokenKind::RBracket)?.span;
                    Ok(Expr::Index {
                        array: name,
                        indices,
                        span: token.span.merge(end),
                    })
                } else {
                    Ok(Expr::Var(name, token.span))
                }
            }
            other => Err(CompileError::parse(
                format!("expected an expression, found {}", other.describe()),
                token.span,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_example() {
        // The running example from §3 of the paper (zero-based here).
        let src = r#"
            def main() {
                a = matrix(50, 10);
                for i = 0 to 49 {
                    for j = 0 to 9 {
                        a[i, j] = f(i, j);
                    }
                }
                return a;
            }
            def f(i, j) {
                return i * 10 + j;
            }
        "#;
        let program = parse(src).unwrap();
        assert_eq!(program.functions.len(), 2);
        let main = program.function("main").unwrap();
        assert_eq!(main.body.len(), 3);
        assert!(matches!(&main.body[0], Stmt::Alloc { dims, .. } if dims.len() == 2));
        assert!(matches!(
            &main.body[1],
            Stmt::For {
                descending: false,
                ..
            }
        ));
    }

    #[test]
    fn parses_descending_loops() {
        let src = "def main() { for i = 9 downto 0 { x = i; } return 0; }";
        let p = parse(src).unwrap();
        match &p.function("main").unwrap().body[0] {
            Stmt::For { descending, .. } => assert!(descending),
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn operator_precedence_is_conventional() {
        let src = "def main() { x = 1 + 2 * 3; return x; }";
        let p = parse(src).unwrap();
        match &p.function("main").unwrap().body[0] {
            Stmt::Let { value, .. } => match value {
                Expr::Binary {
                    op: BinOp::Add,
                    rhs,
                    ..
                } => {
                    assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
                }
                other => panic!("expected +, got {other:?}"),
            },
            other => panic!("expected let, got {other:?}"),
        }
    }

    #[test]
    fn parses_if_statement_and_expression() {
        let src = r#"
            def main(n) {
                y = if n > 0 then 1 else 2;
                if y == 1 {
                    z = 3;
                } else if y == 2 {
                    z = 4;
                } else {
                    z = 5;
                }
                return z;
            }
        "#;
        let p = parse(src).unwrap();
        let body = &p.function("main").unwrap().body;
        assert!(matches!(
            &body[0],
            Stmt::Let {
                value: Expr::Select { .. },
                ..
            }
        ));
        match &body[1] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(&else_body[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn parses_logical_operators_and_unary() {
        let src = "def main(a, b) { x = not (a > 1) and b < 2 or a == b; y = -a; return x; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_tensor_allocations() {
        let src = "def main() { t = tensor(2, 3, 4); t[0, 1, 2] = 5.0; return t; }";
        let p = parse(src).unwrap();
        assert!(
            matches!(&p.function("main").unwrap().body[0], Stmt::Alloc { dims, .. } if dims.len() == 3)
        );
    }

    #[test]
    fn rejects_wrong_allocation_arity() {
        assert!(parse("def main() { a = matrix(3); return a; }").is_err());
        assert!(parse("def main() { a = array(3, 4); return a; }").is_err());
    }

    #[test]
    fn rejects_missing_semicolon_and_brace() {
        assert!(parse("def main() { x = 1 return x; }").is_err());
        assert!(parse("def main() { x = 1;").is_err());
        assert!(parse("def main() { for i = 0 { } }").is_err());
    }

    #[test]
    fn call_with_no_arguments() {
        let p = parse("def main() { x = g(); return x; } def g() { return 1; }").unwrap();
        match &p.function("main").unwrap().body[0] {
            Stmt::Let {
                value: Expr::Call { args, .. },
                ..
            } => assert!(args.is_empty()),
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn let_keyword_is_optional() {
        let a = parse("def main() { let x = 1; return x; }").unwrap();
        let b = parse("def main() { x = 1; return x; }").unwrap();
        // Same structure apart from spans.
        assert_eq!(a.functions.len(), b.functions.len());
        assert!(
            matches!(&a.function("main").unwrap().body[0], Stmt::Let { name, .. } if name == "x")
        );
    }
}
