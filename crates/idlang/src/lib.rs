//! `idlang` — a small Id-Nouveau-like declarative language front end.
//!
//! The PODS paper compiles Id Nouveau programs into dataflow graphs with the
//! MIT compiler. This crate stands in for that front end: it parses a small
//! declarative, single-assignment language featuring exactly the constructs
//! the paper's workloads need — nested counted loops (ascending and
//! descending), I-structure arrays of one to three dimensions, conditionals,
//! function calls, and floating-point math — and lowers it to a structured
//! HIR consumed by the dataflow-graph builder and the SP translator.
//!
//! # Syntax overview
//!
//! ```text
//! def main(n) {
//!     a = matrix(n, n);              # I-structure allocation
//!     for i = 0 to n - 1 {           # ascending counted loop
//!         for j = 0 to n - 1 {
//!             a[i, j] = f(i, j);     # single-assignment element write
//!         }
//!     }
//!     return a;
//! }
//! def f(i, j) { return sqrt(i * 10 + j); }
//! ```
//!
//! Scalars obey single assignment; array elements obey single assignment at
//! run time (enforced by the I-structure memory). Comments run from `#` to
//! the end of the line.
//!
//! # Example
//!
//! ```
//! use pods_idlang::compile;
//!
//! let hir = compile("def main(n) { return n * 2; }")?;
//! assert_eq!(hir.functions.len(), 1);
//! assert_eq!(hir.entry().unwrap().params, vec!["n".to_string()]);
//! # Ok::<(), pods_idlang::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use error::{CompileError, ErrorPhase};
pub use hir::{BinaryOp, HirExpr, HirFunction, HirProgram, HirStmt, UnaryOp};

/// Compiles source text all the way to the HIR: lex, parse, semantic checks,
/// and lowering.
///
/// # Errors
///
/// Returns the first error from any phase.
///
/// # Example
///
/// ```
/// let hir = pods_idlang::compile("def main() { return 42; }")?;
/// assert!(hir.entry().is_some());
/// # Ok::<(), pods_idlang::CompileError>(())
/// ```
pub fn compile(source: &str) -> Result<hir::HirProgram, CompileError> {
    let ast = parser::parse(source)?;
    sema::check(&ast)?;
    hir::lower(&ast)
}

/// Parses and checks source text, returning *all* diagnostics instead of just
/// the first (useful for tooling and tests).
///
/// The result is `Ok(hir)` when there are no errors, otherwise `Err(errors)`.
pub fn compile_with_diagnostics(source: &str) -> Result<hir::HirProgram, Vec<CompileError>> {
    let ast = parser::parse(source).map_err(|e| vec![e])?;
    let errors = sema::analyze(&ast);
    if !errors.is_empty() {
        return Err(errors);
    }
    hir::lower(&ast).map_err(|e| vec![e])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_pipeline_succeeds_on_valid_source() {
        let hir = compile("def main() { a = array(3); a[0] = 1.5; return a; }").unwrap();
        assert_eq!(hir.functions.len(), 1);
    }

    #[test]
    fn compile_pipeline_reports_errors_from_each_phase() {
        assert_eq!(
            compile("def main() { x = $; }").unwrap_err().phase,
            ErrorPhase::Lex
        );
        assert_eq!(
            compile("def main() { x = ; }").unwrap_err().phase,
            ErrorPhase::Parse
        );
        assert_eq!(
            compile("def main() { return y; }").unwrap_err().phase,
            ErrorPhase::Sema
        );
    }

    #[test]
    fn diagnostics_collects_multiple_errors() {
        let errs = compile_with_diagnostics("def main() { x = y; z = w; return q; }").unwrap_err();
        assert_eq!(errs.len(), 3);
    }
}
