//! Tokens and source spans for the `idlang` front end.

/// A half-open byte range into the source text, used for error reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line number of the first character.
    pub line: u32,
}

impl Span {
    /// Creates a new span.
    pub fn new(start: usize, end: usize, line: u32) -> Self {
        Span { start, end, line }
    }

    /// Merges two spans into one covering both.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

impl std::fmt::Display for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}", self.line)
    }
}

/// The kinds of tokens produced by the lexer.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword candidate.
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// `def`
    Def,
    /// `for`
    For,
    /// `to`
    To,
    /// `downto`
    Downto,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `return`
    Return,
    /// `let`
    Let,
    /// `true`
    True,
    /// `false`
    False,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(name) => format!("identifier `{name}`"),
            TokenKind::Int(v) => format!("integer `{v}`"),
            TokenKind::Float(v) => format!("float `{v}`"),
            TokenKind::Def => "`def`".into(),
            TokenKind::For => "`for`".into(),
            TokenKind::To => "`to`".into(),
            TokenKind::Downto => "`downto`".into(),
            TokenKind::If => "`if`".into(),
            TokenKind::Then => "`then`".into(),
            TokenKind::Else => "`else`".into(),
            TokenKind::Return => "`return`".into(),
            TokenKind::Let => "`let`".into(),
            TokenKind::True => "`true`".into(),
            TokenKind::False => "`false`".into(),
            TokenKind::And => "`and`".into(),
            TokenKind::Or => "`or`".into(),
            TokenKind::Not => "`not`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Assign => "`=`".into(),
            TokenKind::Eq => "`==`".into(),
            TokenKind::Ne => "`!=`".into(),
            TokenKind::Lt => "`<`".into(),
            TokenKind::Le => "`<=`".into(),
            TokenKind::Gt => "`>`".into(),
            TokenKind::Ge => "`>=`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Percent => "`%`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind (and literal payload if any).
    pub kind: TokenKind,
    /// Where the token occurred in the source.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(0, 4, 1);
        let b = Span::new(10, 12, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 0);
        assert_eq!(m.end, 12);
        assert_eq!(m.line, 1);
        assert_eq!(m.to_string(), "line 1");
    }

    #[test]
    fn describe_is_nonempty_for_all_kinds() {
        let kinds = vec![
            TokenKind::Ident("x".into()),
            TokenKind::Int(1),
            TokenKind::Float(1.5),
            TokenKind::Def,
            TokenKind::Eof,
            TokenKind::Le,
        ];
        for k in kinds {
            assert!(!k.describe().is_empty());
        }
    }
}
