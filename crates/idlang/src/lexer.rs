//! Hand-written lexer for `idlang`.

use crate::error::CompileError;
use crate::token::{Span, Token, TokenKind};

/// Converts source text into a vector of tokens terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`CompileError`] on unknown characters or malformed numeric
/// literals.
pub fn tokenize(source: &str) -> Result<Vec<Token>, CompileError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if let Some(b'\n') = c {
            self.line += 1;
        }
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start, self.pos, line),
        });
    }

    fn run(mut self) -> Result<Vec<Token>, CompileError> {
        while let Some(c) = self.peek() {
            let start = self.pos;
            let line = self.line;
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'#' => {
                    // Comment to end of line.
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                b'(' => self.single(TokenKind::LParen),
                b')' => self.single(TokenKind::RParen),
                b'{' => self.single(TokenKind::LBrace),
                b'}' => self.single(TokenKind::RBrace),
                b'[' => self.single(TokenKind::LBracket),
                b']' => self.single(TokenKind::RBracket),
                b',' => self.single(TokenKind::Comma),
                b';' => self.single(TokenKind::Semicolon),
                b'+' => self.single(TokenKind::Plus),
                b'-' => self.single(TokenKind::Minus),
                b'*' => self.single(TokenKind::Star),
                b'/' => self.single(TokenKind::Slash),
                b'%' => self.single(TokenKind::Percent),
                b'=' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Eq, start, line);
                    } else {
                        self.push(TokenKind::Assign, start, line);
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Ne, start, line);
                    } else {
                        return Err(CompileError::lex(
                            "expected `!=`, found lone `!` (use `not` for negation)",
                            Span::new(start, self.pos, line),
                        ));
                    }
                }
                b'<' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Le, start, line);
                    } else {
                        self.push(TokenKind::Lt, start, line);
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(TokenKind::Ge, start, line);
                    } else {
                        self.push(TokenKind::Gt, start, line);
                    }
                }
                b'0'..=b'9' => self.number(start, line)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(start, line),
                other => {
                    return Err(CompileError::lex(
                        format!("unexpected character `{}`", other as char),
                        Span::new(start, start + 1, line),
                    ));
                }
            }
        }
        let end = self.pos;
        let line = self.line;
        self.push(TokenKind::Eof, end, line);
        Ok(self.tokens)
    }

    fn single(&mut self, kind: TokenKind) {
        let start = self.pos;
        let line = self.line;
        self.bump();
        self.push(kind, start, line);
    }

    fn number(&mut self, start: usize, line: u32) -> Result<(), CompileError> {
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' if !is_float && self.peek2().is_some_and(|d| d.is_ascii_digit()) => {
                    is_float = true;
                    self.bump();
                }
                b'e' | b'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        let span = Span::new(start, self.pos, line);
        if is_float {
            let value: f64 = text.parse().map_err(|_| {
                CompileError::lex(format!("malformed float literal `{text}`"), span)
            })?;
            self.push(TokenKind::Float(value), start, line);
        } else {
            let value: i64 = text.parse().map_err(|_| {
                CompileError::lex(format!("malformed integer literal `{text}`"), span)
            })?;
            self.push(TokenKind::Int(value), start, line);
        }
        Ok(())
    }

    fn ident(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii ident");
        let kind = match text {
            "def" => TokenKind::Def,
            "for" => TokenKind::For,
            "to" => TokenKind::To,
            "downto" => TokenKind::Downto,
            "if" => TokenKind::If,
            "then" => TokenKind::Then,
            "else" => TokenKind::Else,
            "return" => TokenKind::Return,
            "let" => TokenKind::Let,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            _ => TokenKind::Ident(text.to_string()),
        };
        self.push(kind, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        assert_eq!(
            kinds("x = 42;"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(42),
                TokenKind::Semicolon,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_floats_and_exponents() {
        assert_eq!(
            kinds("1.5 2e3 7.25e-2"),
            vec![
                TokenKind::Float(1.5),
                TokenKind::Float(2000.0),
                TokenKind::Float(0.0725),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn keywords_are_distinguished_from_identifiers() {
        assert_eq!(
            kinds("for fortress downto down"),
            vec![
                TokenKind::For,
                TokenKind::Ident("fortress".into()),
                TokenKind::Downto,
                TokenKind::Ident("down".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a # this is a comment\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("< <= > >= == !="),
            vec![
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = tokenize("a\nb\n  c").unwrap();
        assert_eq!(tokens[0].span.line, 1);
        assert_eq!(tokens[1].span.line, 2);
        assert_eq!(tokens[2].span.line, 3);
    }

    #[test]
    fn rejects_unknown_characters() {
        assert!(tokenize("a @ b").is_err());
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn member_access_dot_without_digit_is_not_a_float() {
        // `1.x` lexes as Int(1) then an error on `.`? We treat a dot not
        // followed by a digit as an unknown character.
        assert!(tokenize("1.x").is_err());
    }
}
