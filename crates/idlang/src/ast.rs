//! Abstract syntax tree produced by the parser.
//!
//! The AST mirrors the surface syntax and carries source spans for error
//! reporting. Semantic analysis validates it and the lowering pass converts
//! it into the span-free [`crate::hir`] consumed by the rest of the pipeline.

use crate::token::Span;

/// A parsed program: a list of function definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The function definitions in source order.
    pub functions: Vec<FunctionDef>,
}

impl Program {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&FunctionDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A function definition: `def name(params) { body }`.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    /// The function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// The function body.
    pub body: Vec<Stmt>,
    /// Span of the `def` keyword and name.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar binding: `x = expr;` or `let x = expr;`.
    Let {
        /// Bound name.
        name: String,
        /// Bound value.
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// Array allocation: `a = array(n);`, `a = matrix(n, m);`,
    /// `a = tensor(n, m, k);`.
    Alloc {
        /// Array name.
        name: String,
        /// Dimension extents (one, two, or three expressions).
        dims: Vec<Expr>,
        /// Statement span.
        span: Span,
    },
    /// I-structure element write: `a[i, j] = expr;`.
    Store {
        /// Array name.
        array: String,
        /// Element indices.
        indices: Vec<Expr>,
        /// Value to store.
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// Counted loop: `for i = lo to hi { ... }` (or `downto`).
    For {
        /// Loop index variable.
        var: String,
        /// Initial index value.
        from: Expr,
        /// Final index value (inclusive).
        to: Expr,
        /// `true` for `downto` loops.
        descending: bool,
        /// Loop body.
        body: Vec<Stmt>,
        /// Statement span.
        span: Span,
    },
    /// Conditional statement: `if cond { ... } else { ... }`.
    If {
        /// Condition expression.
        cond: Expr,
        /// Statements executed when the condition holds.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise (possibly empty).
        else_body: Vec<Stmt>,
        /// Statement span.
        span: Span,
    },
    /// Function result: `return expr;`.
    Return {
        /// The returned value.
        value: Expr,
        /// Statement span.
        span: Span,
    },
    /// A function call executed for effect: `fill(a, n);`.
    Call {
        /// Callee name.
        function: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Statement span.
        span: Span,
    },
}

impl Stmt {
    /// The source span of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Alloc { span, .. }
            | Stmt::Store { span, .. }
            | Stmt::For { span, .. }
            | Stmt::If { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Call { span, .. } => *span,
        }
    }
}

/// Binary operators of the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

/// Unary operators of the surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Floating-point literal.
    Float(f64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Variable reference.
    Var(String, Span),
    /// Array element read: `a[i, j]`.
    Index {
        /// Array name.
        array: String,
        /// Element indices.
        indices: Vec<Expr>,
        /// Expression span.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Box<Expr>,
        /// Expression span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Expression span.
        span: Span,
    },
    /// Function or builtin call: `f(a, b)`.
    Call {
        /// Callee name.
        function: String,
        /// Argument expressions.
        args: Vec<Expr>,
        /// Expression span.
        span: Span,
    },
    /// Conditional expression: `if c then a else b`.
    Select {
        /// Condition.
        cond: Box<Expr>,
        /// Value when the condition holds.
        then_value: Box<Expr>,
        /// Value otherwise.
        else_value: Box<Expr>,
        /// Expression span.
        span: Span,
    },
}

impl Expr {
    /// The source span of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, span)
            | Expr::Float(_, span)
            | Expr::Bool(_, span)
            | Expr::Var(_, span) => *span,
            Expr::Index { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Call { span, .. }
            | Expr::Select { span, .. } => *span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_reachable_for_all_nodes() {
        let s = Span::new(0, 1, 1);
        let e = Expr::Binary {
            op: BinOp::Add,
            lhs: Box::new(Expr::Int(1, s)),
            rhs: Box::new(Expr::Var("x".into(), s)),
            span: s,
        };
        assert_eq!(e.span(), s);
        let st = Stmt::Return {
            value: e,
            span: Span::new(2, 3, 4),
        };
        assert_eq!(st.span().line, 4);
    }

    #[test]
    fn program_function_lookup() {
        let p = Program {
            functions: vec![FunctionDef {
                name: "main".into(),
                params: vec![],
                body: vec![],
                span: Span::default(),
            }],
        };
        assert!(p.function("main").is_some());
        assert!(p.function("other").is_none());
    }
}
