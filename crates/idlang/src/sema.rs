//! Semantic analysis for `idlang`.
//!
//! The checks reflect the declarative, single-assignment nature of the
//! language (paper §2):
//!
//! * every variable must be defined before use,
//! * a scalar name may be bound at most once in a scope (single assignment),
//! * loop variables and parameters cannot be re-bound,
//! * array element writes must target allocated arrays (or array parameters)
//!   with the correct number of indices,
//! * called functions must exist with matching arity (built-ins are checked
//!   during lowering).
//!
//! Note that *element-level* single assignment (writing the same array
//! element twice) is a run-time property enforced by the I-structure memory;
//! the static checks here only cover what is decidable from the program text.

use crate::ast::{Expr, FunctionDef, Program, Stmt};
use crate::error::CompileError;
use crate::hir::is_builtin;
use crate::token::Span;
use std::collections::HashMap;

/// What a name refers to inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symbol {
    /// A function parameter (may carry a scalar or an array reference).
    Param,
    /// A scalar bound by a `let`.
    Scalar,
    /// An array allocated in this function, with its dimensionality.
    Array(usize),
    /// A loop index variable currently in scope.
    LoopVar,
}

/// Checks a parsed program; returns the list of all semantic errors found.
///
/// An empty list means the program is valid.
pub fn analyze(program: &Program) -> Vec<CompileError> {
    let mut errors = Vec::new();
    let mut signatures: HashMap<&str, usize> = HashMap::new();
    for f in &program.functions {
        if signatures.insert(&f.name, f.params.len()).is_some() {
            errors.push(CompileError::sema(
                format!("function `{}` is defined more than once", f.name),
                Some(f.span),
            ));
        }
        if is_builtin(&f.name) {
            errors.push(CompileError::sema(
                format!("function `{}` shadows a builtin", f.name),
                Some(f.span),
            ));
        }
    }
    for f in &program.functions {
        check_function(f, &signatures, &mut errors);
    }
    errors
}

/// Checks a parsed program and fails on the first error.
///
/// # Errors
///
/// Returns the first semantic error when the program is invalid.
pub fn check(program: &Program) -> Result<(), CompileError> {
    match analyze(program).into_iter().next() {
        Some(err) => Err(err),
        None => Ok(()),
    }
}

struct Checker<'a> {
    signatures: &'a HashMap<&'a str, usize>,
    errors: &'a mut Vec<CompileError>,
}

fn check_function(
    f: &FunctionDef,
    signatures: &HashMap<&str, usize>,
    errors: &mut Vec<CompileError>,
) {
    let mut scope: HashMap<String, Symbol> = HashMap::new();
    for p in &f.params {
        if scope.insert(p.clone(), Symbol::Param).is_some() {
            errors.push(CompileError::sema(
                format!("parameter `{p}` of `{}` is repeated", f.name),
                Some(f.span),
            ));
        }
    }
    let mut checker = Checker { signatures, errors };
    checker.check_block(&f.body, &mut scope);
}

impl Checker<'_> {
    fn check_block(&mut self, stmts: &[Stmt], scope: &mut HashMap<String, Symbol>) {
        for stmt in stmts {
            self.check_stmt(stmt, scope);
        }
    }

    fn bind(&mut self, name: &str, sym: Symbol, span: Span, scope: &mut HashMap<String, Symbol>) {
        match scope.get(name) {
            Some(Symbol::Param) => self.errors.push(CompileError::sema(
                format!("`{name}` re-binds a function parameter (single assignment)"),
                Some(span),
            )),
            Some(Symbol::LoopVar) => self.errors.push(CompileError::sema(
                format!("`{name}` re-binds a loop index variable (single assignment)"),
                Some(span),
            )),
            Some(_) => self.errors.push(CompileError::sema(
                format!("`{name}` is bound more than once (single assignment)"),
                Some(span),
            )),
            None => {
                scope.insert(name.to_string(), sym);
            }
        }
    }

    fn check_stmt(&mut self, stmt: &Stmt, scope: &mut HashMap<String, Symbol>) {
        match stmt {
            Stmt::Let { name, value, span } => {
                self.check_expr(value, scope);
                self.bind(name, Symbol::Scalar, *span, scope);
            }
            Stmt::Alloc { name, dims, span } => {
                for d in dims {
                    self.check_expr(d, scope);
                }
                self.bind(name, Symbol::Array(dims.len()), *span, scope);
            }
            Stmt::Store {
                array,
                indices,
                value,
                span,
            } => {
                for idx in indices {
                    self.check_expr(idx, scope);
                }
                self.check_expr(value, scope);
                match scope.get(array) {
                    None => self.errors.push(CompileError::sema(
                        format!("array `{array}` is not defined"),
                        Some(*span),
                    )),
                    Some(Symbol::Scalar) | Some(Symbol::LoopVar) => {
                        self.errors.push(CompileError::sema(
                            format!("`{array}` is not an array and cannot be indexed"),
                            Some(*span),
                        ))
                    }
                    Some(Symbol::Array(ndims)) => {
                        if *ndims != indices.len() {
                            self.errors.push(CompileError::sema(
                                format!(
                                    "array `{array}` has {ndims} dimension(s) but is written with {} indices",
                                    indices.len()
                                ),
                                Some(*span),
                            ));
                        }
                    }
                    Some(Symbol::Param) => {
                        // Arrays received as parameters have unknown rank; the
                        // run-time bounds check covers them.
                    }
                }
            }
            Stmt::For {
                var,
                from,
                to,
                body,
                span,
                ..
            } => {
                self.check_expr(from, scope);
                self.check_expr(to, scope);
                if scope.contains_key(var) {
                    self.errors.push(CompileError::sema(
                        format!("loop variable `{var}` shadows an existing binding"),
                        Some(*span),
                    ));
                }
                let mut inner = scope.clone();
                inner.insert(var.clone(), Symbol::LoopVar);
                self.check_block(body, &mut inner);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.check_expr(cond, scope);
                let mut then_scope = scope.clone();
                self.check_block(then_body, &mut then_scope);
                let mut else_scope = scope.clone();
                self.check_block(else_body, &mut else_scope);
                // Names bound in either branch become visible afterwards so
                // that `if c { z = 1; } else { z = 2; } return z;` works.
                for (name, sym) in then_scope {
                    scope.entry(name).or_insert(sym);
                }
                for (name, sym) in else_scope {
                    scope.entry(name).or_insert(sym);
                }
            }
            Stmt::Return { value, .. } => self.check_expr(value, scope),
            Stmt::Call {
                function,
                args,
                span,
            } => {
                for a in args {
                    self.check_expr(a, scope);
                }
                match self.signatures.get(function.as_str()) {
                    None => self.errors.push(CompileError::sema(
                        format!("function `{function}` is not defined"),
                        Some(*span),
                    )),
                    Some(&arity) if arity != args.len() => {
                        self.errors.push(CompileError::sema(
                            format!(
                                "function `{function}` takes {arity} argument(s), found {}",
                                args.len()
                            ),
                            Some(*span),
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
    }

    fn check_expr(&mut self, expr: &Expr, scope: &HashMap<String, Symbol>) {
        match expr {
            Expr::Int(..) | Expr::Float(..) | Expr::Bool(..) => {}
            Expr::Var(name, span) => {
                if !scope.contains_key(name) {
                    self.errors.push(CompileError::sema(
                        format!("variable `{name}` is not defined"),
                        Some(*span),
                    ));
                }
            }
            Expr::Index {
                array,
                indices,
                span,
            } => {
                for idx in indices {
                    self.check_expr(idx, scope);
                }
                match scope.get(array) {
                    None => self.errors.push(CompileError::sema(
                        format!("array `{array}` is not defined"),
                        Some(*span),
                    )),
                    Some(Symbol::Scalar) | Some(Symbol::LoopVar) => {
                        self.errors.push(CompileError::sema(
                            format!("`{array}` is not an array and cannot be indexed"),
                            Some(*span),
                        ))
                    }
                    Some(Symbol::Array(ndims)) if *ndims != indices.len() => {
                        self.errors.push(CompileError::sema(
                            format!(
                                "array `{array}` has {ndims} dimension(s) but is read with {} indices",
                                indices.len()
                            ),
                            Some(*span),
                        ));
                    }
                    _ => {}
                }
            }
            Expr::Unary { operand, .. } => self.check_expr(operand, scope),
            Expr::Binary { lhs, rhs, .. } => {
                self.check_expr(lhs, scope);
                self.check_expr(rhs, scope);
            }
            Expr::Call {
                function,
                args,
                span,
            } => {
                for a in args {
                    self.check_expr(a, scope);
                }
                if is_builtin(function) {
                    return;
                }
                match self.signatures.get(function.as_str()) {
                    None => self.errors.push(CompileError::sema(
                        format!("function `{function}` is not defined"),
                        Some(*span),
                    )),
                    Some(&arity) if arity != args.len() => {
                        self.errors.push(CompileError::sema(
                            format!(
                                "function `{function}` takes {arity} argument(s), found {}",
                                args.len()
                            ),
                            Some(*span),
                        ));
                    }
                    Some(_) => {}
                }
            }
            Expr::Select {
                cond,
                then_value,
                else_value,
                ..
            } => {
                self.check_expr(cond, scope);
                self.check_expr(then_value, scope);
                self.check_expr(else_value, scope);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn errors_of(src: &str) -> Vec<String> {
        analyze(&parse(src).unwrap())
            .into_iter()
            .map(|e| e.message)
            .collect()
    }

    #[test]
    fn accepts_valid_programs() {
        let src = r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 {
                        a[i, j] = work(i, j);
                    }
                }
                return a;
            }
            def work(i, j) {
                s = i + j;
                return if s > 10 then sqrt(s) else s;
            }
        "#;
        assert!(errors_of(src).is_empty());
        assert!(check(&parse(src).unwrap()).is_ok());
    }

    #[test]
    fn rejects_undefined_variables_and_functions() {
        let errs = errors_of("def main() { x = y + 1; return g(x); }");
        assert!(errs.iter().any(|m| m.contains("`y` is not defined")));
        assert!(errs.iter().any(|m| m.contains("`g` is not defined")));
    }

    #[test]
    fn rejects_double_binding() {
        let errs = errors_of("def main() { x = 1; x = 2; return x; }");
        assert!(errs.iter().any(|m| m.contains("bound more than once")));
    }

    #[test]
    fn rejects_rebinding_params_and_loop_vars() {
        let errs = errors_of("def main(n) { n = 2; return n; }");
        assert!(errs
            .iter()
            .any(|m| m.contains("re-binds a function parameter")));
        let errs = errors_of("def main() { for i = 0 to 3 { i = 5; } return 0; }");
        assert!(errs.iter().any(|m| m.contains("re-binds a loop index")));
        let errs = errors_of("def main(i) { for i = 0 to 3 { x = i; } return 0; }");
        assert!(errs
            .iter()
            .any(|m| m.contains("shadows an existing binding")));
    }

    #[test]
    fn branch_bindings_are_visible_after_the_if() {
        let src = "def main(c) { if c > 0 { z = 1; } else { z = 2; } return z; }";
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn rejects_indexing_mismatches() {
        let errs = errors_of("def main() { a = matrix(2, 2); a[1] = 0; return a[0, 0, 0]; }");
        assert!(errs.iter().any(|m| m.contains("written with 1 indices")));
        assert!(errs.iter().any(|m| m.contains("read with 3 indices")));
        let errs = errors_of("def main() { x = 1; x[0] = 2; return x; }");
        assert!(errs.iter().any(|m| m.contains("cannot be indexed")));
    }

    #[test]
    fn array_parameters_are_indexable() {
        let src = r#"
            def main() {
                a = array(8);
                fill(a, 8);
                return a;
            }
            def fill(a, n) {
                for i = 0 to n - 1 { a[i] = i; }
                return 0;
            }
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn rejects_duplicate_and_builtin_function_names() {
        let errs = errors_of("def f() { return 1; } def f() { return 2; }");
        assert!(errs.iter().any(|m| m.contains("defined more than once")));
        let errs = errors_of("def sqrt(x) { return x; }");
        assert!(errs.iter().any(|m| m.contains("shadows a builtin")));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let errs = errors_of("def main() { return f(1); } def f(a, b) { return a + b; }");
        assert!(errs.iter().any(|m| m.contains("takes 2 argument(s)")));
    }

    #[test]
    fn repeated_parameters_are_rejected() {
        let errs = errors_of("def f(a, a) { return a; }");
        assert!(errs.iter().any(|m| m.contains("repeated")));
    }
}
