//! The high-level intermediate representation (HIR) and the AST → HIR
//! lowering pass.
//!
//! The HIR is the structured, span-free program form consumed by the rest of
//! the PODS pipeline: the dataflow-graph builder, the SP translator, and the
//! baseline executors. Lowering desugars built-in math calls (`sqrt`, `min`,
//! `pow`, ...) into dedicated operators so that downstream consumers never
//! have to special-case callee names.

use crate::ast;
use crate::error::CompileError;

/// Binary operators available in the HIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Logical conjunction.
    And,
    /// Logical disjunction.
    Or,
    /// Minimum of two values (also used by Range Filters).
    Min,
    /// Maximum of two values (also used by Range Filters).
    Max,
    /// Exponentiation (`pow(base, exponent)`).
    Pow,
}

impl BinaryOp {
    /// Returns `true` for comparison operators producing booleans.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// Returns `true` for logical operators over booleans.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }
}

impl std::fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "and",
            BinaryOp::Or => "or",
            BinaryOp::Min => "min",
            BinaryOp::Max => "max",
            BinaryOp::Pow => "pow",
        };
        write!(f, "{s}")
    }
}

/// Unary operators available in the HIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
    /// Square root.
    Sqrt,
    /// Absolute value.
    Abs,
    /// Natural exponential.
    Exp,
    /// Natural logarithm.
    Ln,
    /// Floor (largest integer not above the argument).
    Floor,
    /// Ceiling (smallest integer not below the argument).
    Ceil,
    /// Sine.
    Sin,
    /// Cosine.
    Cos,
}

impl std::fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Not => "not",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Abs => "abs",
            UnaryOp::Exp => "exp",
            UnaryOp::Ln => "ln",
            UnaryOp::Floor => "floor",
            UnaryOp::Ceil => "ceil",
            UnaryOp::Sin => "sin",
            UnaryOp::Cos => "cos",
        };
        write!(f, "{s}")
    }
}

/// Names of binary builtins recognised by the lowering pass.
pub const BINARY_BUILTINS: &[(&str, BinaryOp)] = &[
    ("min", BinaryOp::Min),
    ("max", BinaryOp::Max),
    ("pow", BinaryOp::Pow),
];

/// Names of unary builtins recognised by the lowering pass.
pub const UNARY_BUILTINS: &[(&str, UnaryOp)] = &[
    ("sqrt", UnaryOp::Sqrt),
    ("abs", UnaryOp::Abs),
    ("exp", UnaryOp::Exp),
    ("ln", UnaryOp::Ln),
    ("floor", UnaryOp::Floor),
    ("ceil", UnaryOp::Ceil),
    ("sin", UnaryOp::Sin),
    ("cos", UnaryOp::Cos),
];

/// Returns `true` when `name` is a built-in function name.
pub fn is_builtin(name: &str) -> bool {
    BINARY_BUILTINS.iter().any(|(n, _)| *n == name)
        || UNARY_BUILTINS.iter().any(|(n, _)| *n == name)
}

/// A lowered program.
#[derive(Debug, Clone, PartialEq)]
pub struct HirProgram {
    /// Lowered functions in source order.
    pub functions: Vec<HirFunction>,
}

impl HirProgram {
    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&HirFunction> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// The entry function (`main`) if present.
    pub fn entry(&self) -> Option<&HirFunction> {
        self.function("main")
    }
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq)]
pub struct HirFunction {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Function body.
    pub body: Vec<HirStmt>,
}

/// A lowered statement.
#[derive(Debug, Clone, PartialEq)]
pub enum HirStmt {
    /// Scalar binding.
    Let {
        /// Bound name.
        name: String,
        /// Bound value.
        value: HirExpr,
    },
    /// I-structure array allocation.
    Alloc {
        /// Array name.
        name: String,
        /// Dimension extents.
        dims: Vec<HirExpr>,
    },
    /// I-structure element write.
    Store {
        /// Array name.
        array: String,
        /// Element indices.
        indices: Vec<HirExpr>,
        /// Stored value.
        value: HirExpr,
    },
    /// Counted loop (inclusive bounds).
    For {
        /// Loop variable.
        var: String,
        /// Initial index.
        from: HirExpr,
        /// Final index (inclusive).
        to: HirExpr,
        /// `true` for descending loops.
        descending: bool,
        /// Loop body.
        body: Vec<HirStmt>,
    },
    /// Conditional statement.
    If {
        /// Condition.
        cond: HirExpr,
        /// Statements when the condition holds.
        then_body: Vec<HirStmt>,
        /// Statements otherwise.
        else_body: Vec<HirStmt>,
    },
    /// Function result.
    Return {
        /// The returned value.
        value: HirExpr,
    },
    /// A user-function call executed for effect (its result is discarded).
    Call {
        /// Callee name.
        function: String,
        /// Arguments.
        args: Vec<HirExpr>,
    },
}

/// A lowered expression.
#[derive(Debug, Clone, PartialEq)]
pub enum HirExpr {
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
    /// Variable reference.
    Var(String),
    /// Array element read.
    Load {
        /// Array name.
        array: String,
        /// Element indices.
        indices: Vec<HirExpr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        operand: Box<HirExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<HirExpr>,
        /// Right operand.
        rhs: Box<HirExpr>,
    },
    /// User-function call.
    Call {
        /// Callee name.
        function: String,
        /// Arguments.
        args: Vec<HirExpr>,
    },
    /// Conditional expression.
    Select {
        /// Condition.
        cond: Box<HirExpr>,
        /// Value when the condition holds.
        then_value: Box<HirExpr>,
        /// Value otherwise.
        else_value: Box<HirExpr>,
    },
}

impl HirExpr {
    /// Collects the names of variables referenced by this expression.
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            HirExpr::Int(_) | HirExpr::Float(_) | HirExpr::Bool(_) => {}
            HirExpr::Var(name) => {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
            HirExpr::Load { array, indices } => {
                if !out.contains(array) {
                    out.push(array.clone());
                }
                for idx in indices {
                    idx.free_vars(out);
                }
            }
            HirExpr::Unary { operand, .. } => operand.free_vars(out),
            HirExpr::Binary { lhs, rhs, .. } => {
                lhs.free_vars(out);
                rhs.free_vars(out);
            }
            HirExpr::Call { args, .. } => {
                for a in args {
                    a.free_vars(out);
                }
            }
            HirExpr::Select {
                cond,
                then_value,
                else_value,
            } => {
                cond.free_vars(out);
                then_value.free_vars(out);
                else_value.free_vars(out);
            }
        }
    }
}

/// Lowers a parsed and semantically valid AST into the HIR.
///
/// # Errors
///
/// Returns an error when a built-in is called with the wrong number of
/// arguments (other semantic errors are caught earlier by
/// [`crate::sema::check`]).
pub fn lower(program: &ast::Program) -> Result<HirProgram, CompileError> {
    let functions = program
        .functions
        .iter()
        .map(lower_function)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(HirProgram { functions })
}

fn lower_function(f: &ast::FunctionDef) -> Result<HirFunction, CompileError> {
    Ok(HirFunction {
        name: f.name.clone(),
        params: f.params.clone(),
        body: lower_block(&f.body)?,
    })
}

fn lower_block(stmts: &[ast::Stmt]) -> Result<Vec<HirStmt>, CompileError> {
    stmts.iter().map(lower_stmt).collect()
}

fn lower_stmt(stmt: &ast::Stmt) -> Result<HirStmt, CompileError> {
    Ok(match stmt {
        ast::Stmt::Let { name, value, .. } => HirStmt::Let {
            name: name.clone(),
            value: lower_expr(value)?,
        },
        ast::Stmt::Alloc { name, dims, .. } => HirStmt::Alloc {
            name: name.clone(),
            dims: dims.iter().map(lower_expr).collect::<Result<_, _>>()?,
        },
        ast::Stmt::Store {
            array,
            indices,
            value,
            ..
        } => HirStmt::Store {
            array: array.clone(),
            indices: indices.iter().map(lower_expr).collect::<Result<_, _>>()?,
            value: lower_expr(value)?,
        },
        ast::Stmt::For {
            var,
            from,
            to,
            descending,
            body,
            ..
        } => HirStmt::For {
            var: var.clone(),
            from: lower_expr(from)?,
            to: lower_expr(to)?,
            descending: *descending,
            body: lower_block(body)?,
        },
        ast::Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => HirStmt::If {
            cond: lower_expr(cond)?,
            then_body: lower_block(then_body)?,
            else_body: lower_block(else_body)?,
        },
        ast::Stmt::Return { value, .. } => HirStmt::Return {
            value: lower_expr(value)?,
        },
        ast::Stmt::Call { function, args, .. } => HirStmt::Call {
            function: function.clone(),
            args: args.iter().map(lower_expr).collect::<Result<_, _>>()?,
        },
    })
}

fn lower_binop(op: ast::BinOp) -> BinaryOp {
    match op {
        ast::BinOp::Add => BinaryOp::Add,
        ast::BinOp::Sub => BinaryOp::Sub,
        ast::BinOp::Mul => BinaryOp::Mul,
        ast::BinOp::Div => BinaryOp::Div,
        ast::BinOp::Rem => BinaryOp::Rem,
        ast::BinOp::Eq => BinaryOp::Eq,
        ast::BinOp::Ne => BinaryOp::Ne,
        ast::BinOp::Lt => BinaryOp::Lt,
        ast::BinOp::Le => BinaryOp::Le,
        ast::BinOp::Gt => BinaryOp::Gt,
        ast::BinOp::Ge => BinaryOp::Ge,
        ast::BinOp::And => BinaryOp::And,
        ast::BinOp::Or => BinaryOp::Or,
    }
}

fn lower_expr(expr: &ast::Expr) -> Result<HirExpr, CompileError> {
    Ok(match expr {
        ast::Expr::Int(v, _) => HirExpr::Int(*v),
        ast::Expr::Float(v, _) => HirExpr::Float(*v),
        ast::Expr::Bool(v, _) => HirExpr::Bool(*v),
        ast::Expr::Var(name, _) => HirExpr::Var(name.clone()),
        ast::Expr::Index { array, indices, .. } => HirExpr::Load {
            array: array.clone(),
            indices: indices.iter().map(lower_expr).collect::<Result<_, _>>()?,
        },
        ast::Expr::Unary { op, operand, .. } => HirExpr::Unary {
            op: match op {
                ast::UnOp::Neg => UnaryOp::Neg,
                ast::UnOp::Not => UnaryOp::Not,
            },
            operand: Box::new(lower_expr(operand)?),
        },
        ast::Expr::Binary { op, lhs, rhs, .. } => HirExpr::Binary {
            op: lower_binop(*op),
            lhs: Box::new(lower_expr(lhs)?),
            rhs: Box::new(lower_expr(rhs)?),
        },
        ast::Expr::Call {
            function,
            args,
            span,
        } => {
            if let Some((_, op)) = UNARY_BUILTINS.iter().find(|(n, _)| n == function) {
                if args.len() != 1 {
                    return Err(CompileError::sema(
                        format!(
                            "builtin `{function}` takes 1 argument, found {}",
                            args.len()
                        ),
                        Some(*span),
                    ));
                }
                HirExpr::Unary {
                    op: *op,
                    operand: Box::new(lower_expr(&args[0])?),
                }
            } else if let Some((_, op)) = BINARY_BUILTINS.iter().find(|(n, _)| n == function) {
                if args.len() != 2 {
                    return Err(CompileError::sema(
                        format!(
                            "builtin `{function}` takes 2 arguments, found {}",
                            args.len()
                        ),
                        Some(*span),
                    ));
                }
                HirExpr::Binary {
                    op: *op,
                    lhs: Box::new(lower_expr(&args[0])?),
                    rhs: Box::new(lower_expr(&args[1])?),
                }
            } else {
                HirExpr::Call {
                    function: function.clone(),
                    args: args.iter().map(lower_expr).collect::<Result<_, _>>()?,
                }
            }
        }
        ast::Expr::Select {
            cond,
            then_value,
            else_value,
            ..
        } => HirExpr::Select {
            cond: Box::new(lower_expr(cond)?),
            then_value: Box::new(lower_expr(then_value)?),
            else_value: Box::new(lower_expr(else_value)?),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn lower_src(src: &str) -> HirProgram {
        lower(&parse(src).unwrap()).unwrap()
    }

    #[test]
    fn builtins_become_operators() {
        let hir = lower_src("def main(x) { a = sqrt(x); b = min(x, 2); return pow(a, b); }");
        let body = &hir.function("main").unwrap().body;
        assert!(matches!(
            &body[0],
            HirStmt::Let {
                value: HirExpr::Unary {
                    op: UnaryOp::Sqrt,
                    ..
                },
                ..
            }
        ));
        assert!(matches!(
            &body[1],
            HirStmt::Let {
                value: HirExpr::Binary {
                    op: BinaryOp::Min,
                    ..
                },
                ..
            }
        ));
        assert!(matches!(
            &body[2],
            HirStmt::Return {
                value: HirExpr::Binary {
                    op: BinaryOp::Pow,
                    ..
                }
            }
        ));
    }

    #[test]
    fn builtin_arity_is_checked() {
        let ast = parse("def main(x) { return sqrt(x, x); }").unwrap();
        assert!(lower(&ast).is_err());
        let ast = parse("def main(x) { return min(x); }").unwrap();
        assert!(lower(&ast).is_err());
    }

    #[test]
    fn user_calls_are_preserved() {
        let hir = lower_src("def main(x) { return f(x, 1); } def f(a, b) { return a + b; }");
        assert!(matches!(
            &hir.function("main").unwrap().body[0],
            HirStmt::Return { value: HirExpr::Call { function, args } }
                if function == "f" && args.len() == 2
        ));
        assert!(hir.entry().is_some());
    }

    #[test]
    fn free_vars_are_collected_once() {
        let hir = lower_src("def main(a, i) { return a[i, i] + i; }");
        match &hir.function("main").unwrap().body[0] {
            HirStmt::Return { value } => {
                let mut vars = Vec::new();
                value.free_vars(&mut vars);
                assert_eq!(vars, vec!["a".to_string(), "i".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn loops_and_stores_lower_structurally() {
        let hir =
            lower_src("def main() { a = array(4); for i = 0 to 3 { a[i] = i * 2; } return a; }");
        let body = &hir.function("main").unwrap().body;
        assert!(matches!(&body[0], HirStmt::Alloc { dims, .. } if dims.len() == 1));
        match &body[1] {
            HirStmt::For {
                body, descending, ..
            } => {
                assert!(!descending);
                assert!(matches!(&body[0], HirStmt::Store { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn operator_helpers() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert!(BinaryOp::And.is_logical());
        assert!(is_builtin("sqrt"));
        assert!(is_builtin("max"));
        assert!(!is_builtin("f"));
        assert_eq!(BinaryOp::Add.to_string(), "+");
        assert_eq!(UnaryOp::Sqrt.to_string(), "sqrt");
    }
}
