//! The PODS Partitioner: distributing allocate, `LD`, and Range Filters.
//!
//! This crate implements §4 of the paper. Given the SP templates produced by
//! the translator and the loop analysis produced by `pods-dataflow`, it
//! rewrites the program so that execution follows the data distribution
//! (*Data-Distributed Execution*):
//!
//! 1. every array allocation becomes a **distributing allocate** (the array
//!    is spread row-major, page by page, over all PEs and every PE builds the
//!    same header),
//! 2. for every loop nest, the **for-loop distribution algorithm** of §4.2.4
//!    selects the outermost level without a loop-carried dependency; the `L`
//!    operator that enters that level becomes a **distributing `LD`**, so an
//!    instance of the level is spawned on every PE, and
//! 3. a **Range Filter** is inserted into the distributed level: the loop
//!    bounds are replaced by `max(init, start_of_responsibility)` /
//!    `min(limit, end_of_responsibility)` computed from the header of the
//!    array the loop writes (Figure 5). Under the first-element-ownership
//!    rule the resulting index subranges are disjoint across PEs, and only
//!    one RF is used per nest regardless of nesting depth (§4.2.3).
//!
//! # Example
//!
//! ```
//! use pods_partition::{partition, PartitionConfig};
//!
//! let hir = pods_idlang::compile(
//!     "def main(n) { a = matrix(n, n);
//!        for i = 0 to n - 1 { for j = 0 to n - 1 { a[i, j] = i + j; } }
//!        return a; }",
//! ).unwrap();
//! let loops = pods_dataflow::analyze_loops(&hir);
//! let mut program = pods_sp::translate(&hir).unwrap();
//! let report = partition(&mut program, &loops, &PartitionConfig::default());
//! assert_eq!(report.distributed_loops().count(), 1); // the i-loop
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pods_dataflow::{LoopInfo, LoopKey};
use pods_sp::{chunk_loop_spawns, Instr, LoopMeta, Operand, SpId, SpKind, SpProgram, SpTemplate};

pub use pods_sp::{ChunkPolicy, ChunkSummary};

/// Configuration of the partitioning pass, mostly useful for ablation
/// studies (every switch defaults to the paper's behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionConfig {
    /// Convert array allocations into distributing allocates.
    pub distribute_allocations: bool,
    /// Distribute loop levels (insert `LD` operators).
    pub distribute_loops: bool,
    /// Insert Range Filters into distributed loops. Disabling this while
    /// keeping `distribute_loops` makes every PE execute every iteration —
    /// the degenerate configuration the RF exists to avoid; it is exposed
    /// only so the ablation benchmark can quantify the filter's value, and
    /// it breaks run-time single assignment for real workloads.
    pub insert_range_filters: bool,
    /// Distribute a loop even when a loop-carried dependency was detected
    /// (ablation of the LCD heuristic; determinism is preserved by the
    /// I-structure memory, only performance changes).
    pub ignore_lcd: bool,
    /// Grain-size control: group this many consecutive inner-loop
    /// iterations into one SP instance (see
    /// [`pods_sp::chunk_loop_spawns`]). `Fixed(1)` — the default — leaves
    /// the program untouched; `Auto` sizes the chunk from the loop body.
    /// Applied after distribution, so Range-Filter responsibility
    /// partitioning stays exact under chunking.
    pub chunk: ChunkPolicy,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            distribute_allocations: true,
            distribute_loops: true,
            insert_range_filters: true,
            ignore_lcd: false,
            chunk: ChunkPolicy::Fixed(1),
        }
    }
}

impl PartitionConfig {
    /// A configuration that leaves the program entirely sequential (no
    /// distribution at all); used for single-PE baselines.
    pub fn sequential() -> Self {
        PartitionConfig {
            distribute_allocations: false,
            distribute_loops: false,
            insert_range_filters: false,
            ignore_lcd: false,
            chunk: ChunkPolicy::Fixed(1),
        }
    }
}

/// Why a loop level was or was not distributed.
#[derive(Debug, Clone, PartialEq)]
pub enum LoopDecision {
    /// The level was distributed: `LD` inserted in the parent and a Range
    /// Filter wired to the given array/dimension.
    Distributed {
        /// The array whose header drives the Range Filter.
        array: String,
        /// The filtered dimension of the index space.
        dim: usize,
    },
    /// The level has a loop-carried dependency; it stays centralized and the
    /// algorithm descends into its children (§4.2.3).
    CentralizedLcd,
    /// The level's written arrays escape into a function call, so the
    /// analysis cannot prove independence; it stays centralized.
    CentralizedEscape,
    /// The level writes no array indexed by its own variable, so there is no
    /// header to drive a Range Filter; it stays centralized.
    NoDistributionTarget,
    /// The level is nested inside a distributed level and therefore runs
    /// locally on whichever PE executes its parent iteration.
    LocalUnderDistributed {
        /// Ordinal of the distributed ancestor.
        ancestor: usize,
    },
    /// Loop distribution was disabled by configuration.
    Disabled,
}

/// One entry of the partition report.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopReport {
    /// Which loop the entry describes.
    pub key: LoopKey,
    /// The decision taken for that loop.
    pub decision: LoopDecision,
}

/// The result of running the partitioner: one decision per loop plus counts
/// of rewritten instructions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartitionReport {
    /// Per-loop decisions.
    pub loops: Vec<LoopReport>,
    /// Number of `ArrayAlloc` instructions converted to distributing form.
    pub distributed_allocations: usize,
    /// Number of `Spawn` instructions converted to `LD`.
    pub distributed_spawns: usize,
    /// Number of Range Filters inserted.
    pub range_filters: usize,
    /// Number of loop spawn sites rewritten by grain-size control.
    pub chunked_spawns: usize,
    /// The largest chunk size applied (0 when nothing was chunked).
    pub chunk_size: usize,
    /// Number of templates the specialization pass gave at least one
    /// super-op (0 when specialization is disabled).
    pub specialized_templates: usize,
    /// Number of immediate operands fused in place by specialization.
    pub fused_consts: usize,
    /// Total super-ops across all template plans.
    pub super_ops: usize,
}

impl PartitionReport {
    /// Iterates over the loops that were distributed.
    pub fn distributed_loops(&self) -> impl Iterator<Item = &LoopReport> {
        self.loops
            .iter()
            .filter(|l| matches!(l.decision, LoopDecision::Distributed { .. }))
    }

    /// Finds the decision for a given loop.
    pub fn decision_for(&self, function: &str, ordinal: usize) -> Option<&LoopDecision> {
        self.loops
            .iter()
            .find(|l| l.key.function == function && l.key.ordinal == ordinal)
            .map(|l| &l.decision)
    }
}

/// Runs the partitioner over an SP program, rewriting it in place.
pub fn partition(
    program: &mut SpProgram,
    loops: &[LoopInfo],
    config: &PartitionConfig,
) -> PartitionReport {
    partition_with_chunk_boost(program, loops, config, 1)
}

/// [`partition`] with a multiplier applied to auto-sized chunks: the
/// adaptive grain-control loop re-partitions a program with `boost` 2, 4, …
/// to coarsen the grain the auto heuristic picked, without changing the
/// configured [`PartitionConfig::chunk`] policy (so prepared-handle
/// compatibility checks still compare the *policy*, not the tuned size).
/// `boost` has no effect on `Fixed` policies.
pub fn partition_with_chunk_boost(
    program: &mut SpProgram,
    loops: &[LoopInfo],
    config: &PartitionConfig,
    boost: usize,
) -> PartitionReport {
    let mut report = partition_unchunked(program, loops, config);
    // Chunking runs after distribution so the chunk driver circulates the
    // Range-Filtered (per-PE) bounds, never the raw ones.
    let summary = chunk_loop_spawns(program, config.chunk, boost.max(1));
    report.chunked_spawns = summary.sites;
    report.chunk_size = if summary.sites == 0 {
        0
    } else {
        summary.max_chunk
    };
    report
}

/// The distribution passes (§4 of the paper), without grain-size control.
fn partition_unchunked(
    program: &mut SpProgram,
    loops: &[LoopInfo],
    config: &PartitionConfig,
) -> PartitionReport {
    let mut report = PartitionReport::default();

    if config.distribute_allocations {
        for template in program.templates_mut() {
            for instr in &mut template.code {
                if let Instr::ArrayAlloc { distributed, .. } = instr {
                    if !*distributed {
                        *distributed = true;
                        report.distributed_allocations += 1;
                    }
                }
            }
        }
    }

    if !config.distribute_loops {
        for info in loops {
            report.loops.push(LoopReport {
                key: info.key.clone(),
                decision: LoopDecision::Disabled,
            });
        }
        return report;
    }

    // Walk each function's loop forest: distribute the outermost level that
    // qualifies; below a distributed level everything stays local; above it
    // (LCD levels) everything stays centralized.
    let decisions = decide(loops, config);
    for (info, decision) in loops.iter().zip(decisions.iter()) {
        let mut decision = decision.clone();
        if let LoopDecision::Distributed { array, dim } = &decision {
            let applied =
                apply_distribution(program, loops, info, array, *dim, config, &mut report);
            if !applied {
                // The template cannot be filtered safely (e.g. the written
                // array does not flow into the loop as a parameter); leave
                // the loop local rather than risk duplicated iterations.
                decision = LoopDecision::NoDistributionTarget;
            }
        }
        report.loops.push(LoopReport {
            key: info.key.clone(),
            decision,
        });
    }
    report
}

/// Chooses a decision for every loop (in the same order as `loops`).
fn decide(loops: &[LoopInfo], config: &PartitionConfig) -> Vec<LoopDecision> {
    let mut decisions: Vec<Option<LoopDecision>> = vec![None; loops.len()];
    // Process loops grouped by function, from outermost depth inwards, so a
    // parent's decision exists before its children are examined.
    let mut order: Vec<usize> = (0..loops.len()).collect();
    order.sort_by_key(|&i| {
        (
            loops[i].key.function.clone(),
            loops[i].depth,
            loops[i].key.ordinal,
        )
    });
    for idx in order {
        let info = &loops[idx];
        // If an ancestor was distributed, this level stays local.
        if let Some(ancestor) = distributed_ancestor(loops, &decisions, info) {
            decisions[idx] = Some(LoopDecision::LocalUnderDistributed { ancestor });
            continue;
        }
        let decision = if info.has_lcd && !config.ignore_lcd {
            LoopDecision::CentralizedLcd
        } else if info.escapes_to_call {
            LoopDecision::CentralizedEscape
        } else {
            match info.distribution_target() {
                // Filtering an inner dimension requires the enclosing loop's
                // index (Figure 5); without an enclosing loop the subranges
                // could not be made disjoint, so the level stays local.
                Some(target)
                    if target.var_dim == Some(0)
                        || (target.var_dim == Some(1) && info.parent.is_some()) =>
                {
                    LoopDecision::Distributed {
                        array: target.array.clone(),
                        dim: target.var_dim.expect("distribution target has a dim"),
                    }
                }
                _ => LoopDecision::NoDistributionTarget,
            }
        };
        decisions[idx] = Some(decision);
    }
    decisions.into_iter().map(|d| d.expect("decided")).collect()
}

/// Finds the ordinal of a distributed ancestor of `info`, if any.
fn distributed_ancestor(
    loops: &[LoopInfo],
    decisions: &[Option<LoopDecision>],
    info: &LoopInfo,
) -> Option<usize> {
    let mut parent = info.parent;
    while let Some(ordinal) = parent {
        let (idx, parent_info) = loops
            .iter()
            .enumerate()
            .find(|(_, l)| l.key.function == info.key.function && l.key.ordinal == ordinal)?;
        match decisions[idx] {
            Some(LoopDecision::Distributed { .. })
            | Some(LoopDecision::LocalUnderDistributed { .. }) => {
                return Some(ordinal);
            }
            _ => {}
        }
        parent = parent_info.parent;
    }
    None
}

/// Applies the rewriting for one distributed loop: `L` → `LD` in the parent
/// and a Range Filter prologue in the loop's own template. Returns `false`
/// (leaving the program untouched) when the loop cannot be filtered safely.
fn apply_distribution(
    program: &mut SpProgram,
    loops: &[LoopInfo],
    info: &LoopInfo,
    array: &str,
    dim: usize,
    config: &PartitionConfig,
    report: &mut PartitionReport,
) -> bool {
    let Some(loop_template_id) = program
        .loop_template(&info.key.function, info.key.ordinal)
        .map(|t| t.id)
    else {
        return false;
    };

    let parent_var = info.parent.and_then(|ordinal| {
        loops
            .iter()
            .find(|l| l.key.function == info.key.function && l.key.ordinal == ordinal)
            .map(|l| l.var.clone())
    });

    // Capability check before touching anything: the written array must be a
    // parameter of the loop template, and an inner-dimension filter needs the
    // enclosing index as a parameter too. Replicating the loop without a
    // working Range Filter would duplicate iterations.
    if config.insert_range_filters {
        let template = &program.templates()[loop_template_id.index()];
        if template.loop_meta.is_none() || template.param_slot(array).is_none() {
            return false;
        }
        if dim > 0 {
            let has_outer = parent_var
                .as_deref()
                .and_then(|v| template.param_slot(v))
                .is_some();
            if !has_outer {
                return false;
            }
        }
    }

    // 1. Convert the parent's Spawn of this loop into the LD form.
    if let Some(parent_id) = parent_template_id(program, info) {
        let parent = &mut program.templates_mut()[parent_id.index()];
        for instr in &mut parent.code {
            if let Instr::Spawn {
                target,
                distributed,
                ..
            } = instr
            {
                if *target == loop_template_id && !*distributed {
                    *distributed = true;
                    report.distributed_spawns += 1;
                }
            }
        }
    }

    // 2. Insert the Range Filter into the loop template.
    if !config.insert_range_filters {
        return true;
    }
    let template = &mut program.templates_mut()[loop_template_id.index()];
    if insert_range_filter(template, array, dim, parent_var.as_deref(), info.descending) {
        report.range_filters += 1;
    }
    true
}

/// The template containing the `Spawn` of the given loop: the parent loop's
/// template, or the function body template for outermost loops.
fn parent_template_id(program: &SpProgram, info: &LoopInfo) -> Option<SpId> {
    match info.parent {
        Some(parent_ordinal) => program
            .loop_template(&info.key.function, parent_ordinal)
            .map(|t| t.id),
        None => program.function(&info.key.function),
    }
}

/// Rewrites a loop template so that its bounds pass through Range-Filter
/// operators consulting the header of `array`. Returns `false` when the
/// template lacks the metadata or parameters required (in which case it is
/// left untouched).
fn insert_range_filter(
    template: &mut SpTemplate,
    array: &str,
    dim: usize,
    parent_var: Option<&str>,
    descending: bool,
) -> bool {
    let Some(meta) = template.loop_meta else {
        return false;
    };
    let Some(array_slot) = template.param_slot(array) else {
        // The written array must flow into the loop as a parameter; if it
        // does not (e.g. it is written through a call), distribution is not
        // safe and we skip the filter.
        return false;
    };
    // The outer index is required to narrow an inner dimension; fall back to
    // filtering without it (full ranges) when it is not available.
    let outer = if dim > 0 {
        parent_var
            .and_then(|v| template.param_slot(v))
            .map(Operand::Slot)
    } else {
        None
    };

    let base = slot_base_name(template);
    let rf_lo = template.add_slot(format!("{base}__rf_lo"));
    let rf_hi = template.add_slot(format!("{base}__rf_hi"));

    // Ascending loops: index starts at max(init, range_start) and runs to
    // min(limit, range_end). Descending loops swap the roles (§4.2.2).
    let (init_rf, limit_rf) = if descending {
        (
            Instr::RangeHi {
                dst: rf_lo,
                array: Operand::Slot(array_slot),
                dim,
                default: Operand::Slot(meta.init_param_slot),
                outer,
            },
            Instr::RangeLo {
                dst: rf_hi,
                array: Operand::Slot(array_slot),
                dim,
                default: Operand::Slot(meta.limit_param_slot),
                outer,
            },
        )
    } else {
        (
            Instr::RangeLo {
                dst: rf_lo,
                array: Operand::Slot(array_slot),
                dim,
                default: Operand::Slot(meta.init_param_slot),
                outer,
            },
            Instr::RangeHi {
                dst: rf_hi,
                array: Operand::Slot(array_slot),
                dim,
                default: Operand::Slot(meta.limit_param_slot),
                outer,
            },
        )
    };
    template.insert_prologue(vec![init_rf, limit_rf]);

    // Re-read the (shifted) metadata and point the initialisation moves at
    // the filtered bounds.
    let meta: LoopMeta = template.loop_meta.expect("meta survives prologue");
    if let Instr::Move { src, .. } = &mut template.code[meta.init_instr] {
        *src = Operand::Slot(rf_lo);
    }
    if let Instr::Move { src, .. } = &mut template.code[meta.limit_init_instr] {
        *src = Operand::Slot(rf_hi);
    }
    true
}

fn slot_base_name(template: &SpTemplate) -> String {
    match &template.kind {
        SpKind::Loop { var, .. } => var.clone(),
        SpKind::Function { name } => name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pods_dataflow::analyze_loops;
    use pods_sp::translate;

    const PAPER_EXAMPLE: &str = r#"
        def main() {
            a = matrix(64, 64);
            for i = 0 to 63 {
                for j = 0 to 63 {
                    a[i, j] = i * 64 + j;
                }
            }
            return a;
        }
    "#;

    fn partitioned(src: &str, config: &PartitionConfig) -> (SpProgram, PartitionReport) {
        let hir = pods_idlang::compile(src).unwrap();
        let loops = analyze_loops(&hir);
        let mut program = translate(&hir).unwrap();
        let report = partition(&mut program, &loops, config);
        (program, report)
    }

    #[test]
    fn outer_parallel_loop_is_distributed_with_a_range_filter() {
        let (program, report) = partitioned(PAPER_EXAMPLE, &PartitionConfig::default());
        assert!(program.validate().is_empty(), "{:?}", program.validate());
        assert_eq!(report.distributed_spawns, 1);
        assert_eq!(report.range_filters, 1);
        assert!(report.distributed_allocations >= 1);
        assert!(matches!(
            report.decision_for("main", 0),
            Some(LoopDecision::Distributed { dim: 0, .. })
        ));
        assert!(matches!(
            report.decision_for("main", 1),
            Some(LoopDecision::LocalUnderDistributed { ancestor: 0 })
        ));

        // The main template's spawn of the i-loop is now an LD.
        let main = program.template(program.entry());
        assert!(main.code.iter().any(|i| matches!(
            i,
            Instr::Spawn {
                distributed: true,
                ..
            }
        )));
        // The i-loop starts with the Range-Filter bound operators.
        let i_loop = program.loop_template("main", 0).unwrap();
        assert!(matches!(i_loop.code[0], Instr::RangeLo { dim: 0, .. }));
        assert!(matches!(i_loop.code[1], Instr::RangeHi { dim: 0, .. }));
        // The j-loop is untouched (no RF, spawned locally).
        let j_loop = program.loop_template("main", 1).unwrap();
        assert!(!j_loop
            .code
            .iter()
            .any(|i| matches!(i, Instr::RangeLo { .. } | Instr::RangeHi { .. })));
    }

    #[test]
    fn lcd_level_stays_centralized_and_inner_level_distributes() {
        let src = r#"
            def main(n, b) {
                a = matrix(n, n);
                for j = 0 to n - 1 { a[0, j] = b[0, j]; }
                for i = 1 to n - 1 {
                    for j = 0 to n - 1 {
                        a[i, j] = a[i - 1, j] + b[i, j];
                    }
                }
                return a;
            }
        "#;
        let (program, report) = partitioned(src, &PartitionConfig::default());
        assert!(program.validate().is_empty());
        // Loop 1 is the i-sweep with the LCD, loop 2 the inner j-loop.
        assert!(matches!(
            report.decision_for("main", 1),
            Some(LoopDecision::CentralizedLcd)
        ));
        assert!(matches!(
            report.decision_for("main", 2),
            Some(LoopDecision::Distributed { dim: 1, .. })
        ));
        // The inner loop's RF filters dimension 1 and receives the outer
        // index.
        let inner = program.loop_template("main", 2).unwrap();
        assert!(matches!(
            inner.code[0],
            Instr::RangeLo {
                dim: 1,
                outer: Some(_),
                ..
            }
        ));
        // The LD is inside the i-loop template (the parent), not in main.
        let i_loop = program.loop_template("main", 1).unwrap();
        assert!(i_loop.code.iter().any(|i| matches!(
            i,
            Instr::Spawn {
                distributed: true,
                ..
            }
        )));
    }

    #[test]
    fn descending_distributed_loop_swaps_the_filter_operators() {
        let src = r#"
            def main(n, b) {
                a = array(n);
                for i = n - 1 downto 0 { a[i] = b[i] * 2.0; }
                return a;
            }
        "#;
        let (program, report) = partitioned(src, &PartitionConfig::default());
        assert_eq!(report.range_filters, 1);
        let t = program.loop_template("main", 0).unwrap();
        // For a descending loop the initial bound goes through RangeHi (min)
        // and the final bound through RangeLo (max).
        assert!(matches!(t.code[0], Instr::RangeHi { .. }));
        assert!(matches!(t.code[1], Instr::RangeLo { .. }));
        assert!(program.validate().is_empty());
    }

    #[test]
    fn sequential_config_disables_everything() {
        let (program, report) = partitioned(PAPER_EXAMPLE, &PartitionConfig::sequential());
        assert_eq!(report.distributed_allocations, 0);
        assert_eq!(report.distributed_spawns, 0);
        assert_eq!(report.range_filters, 0);
        assert!(report
            .loops
            .iter()
            .all(|l| l.decision == LoopDecision::Disabled));
        assert!(!program
            .templates()
            .iter()
            .flat_map(|t| &t.code)
            .any(|i| matches!(
                i,
                Instr::Spawn {
                    distributed: true,
                    ..
                } | Instr::ArrayAlloc {
                    distributed: true,
                    ..
                }
            )));
    }

    #[test]
    fn ignore_lcd_ablation_distributes_the_sweep_level() {
        let src = r#"
            def main(n, b) {
                a = array(n);
                a[0] = b[0];
                for i = 1 to n - 1 { a[i] = a[i - 1] + b[i]; }
                return a;
            }
        "#;
        let config = PartitionConfig {
            ignore_lcd: true,
            ..PartitionConfig::default()
        };
        let (_, report) = partitioned(src, &config);
        assert!(matches!(
            report.decision_for("main", 0),
            Some(LoopDecision::Distributed { .. })
        ));
        let (_, default_report) = partitioned(src, &PartitionConfig::default());
        assert!(matches!(
            default_report.decision_for("main", 0),
            Some(LoopDecision::CentralizedLcd)
        ));
    }

    #[test]
    fn loops_without_array_writes_are_not_distributed() {
        let src = r#"
            def main(n) {
                total = 0;
                for i = 0 to n - 1 { t = i * 2; }
                return total;
            }
        "#;
        let (_, report) = partitioned(src, &PartitionConfig::default());
        assert!(matches!(
            report.decision_for("main", 0),
            Some(LoopDecision::NoDistributionTarget)
        ));
    }

    #[test]
    fn escaping_arrays_keep_the_loop_centralized() {
        let src = r#"
            def main(n) {
                a = array(n);
                for i = 0 to n - 1 { a[i] = i; note(a, i); }
                return a;
            }
            def note(arr, i) { return arr[i]; }
        "#;
        let (_, report) = partitioned(src, &PartitionConfig::default());
        assert!(matches!(
            report.decision_for("main", 0),
            Some(LoopDecision::CentralizedEscape)
        ));
    }

    #[test]
    fn chunking_composes_with_distribution_and_with_its_absence() {
        // Default (chunk = Fixed(1)) must leave the program byte-identical.
        let (unchunked, baseline) = partitioned(PAPER_EXAMPLE, &PartitionConfig::default());
        assert_eq!(baseline.chunked_spawns, 0);
        assert_eq!(baseline.chunk_size, 0);

        // A fixed chunk rewrites the nest's inner spawn site on top of the
        // usual distribution decisions.
        let config = PartitionConfig {
            chunk: ChunkPolicy::Fixed(4),
            ..PartitionConfig::default()
        };
        let (program, report) = partitioned(PAPER_EXAMPLE, &config);
        assert!(program.validate().is_empty(), "{:?}", program.validate());
        assert_eq!(report.chunked_spawns, 1);
        assert_eq!(report.chunk_size, 4);
        assert_eq!(report.distributed_spawns, baseline.distributed_spawns);
        assert_eq!(report.range_filters, baseline.range_filters);
        assert_ne!(program.fingerprint(), unchunked.fingerprint());
        // The chunk driver lives in the *inner* (j) template.
        let j_loop = program.loop_template("main", 1).unwrap();
        assert!(j_loop.chunk_meta.is_some());

        // Chunking also applies when distribution is disabled entirely
        // (the early-return path).
        let seq = PartitionConfig {
            chunk: ChunkPolicy::Fixed(4),
            ..PartitionConfig::sequential()
        };
        let (program, report) = partitioned(PAPER_EXAMPLE, &seq);
        assert!(program.validate().is_empty());
        assert_eq!(report.chunked_spawns, 1);
        assert_eq!(report.distributed_spawns, 0);
    }

    #[test]
    fn chunk_boost_coarsens_auto_grain_without_touching_fixed() {
        let auto = PartitionConfig {
            chunk: ChunkPolicy::Auto,
            ..PartitionConfig::default()
        };
        let hir = pods_idlang::compile(PAPER_EXAMPLE).unwrap();
        let loops = analyze_loops(&hir);
        let mut base = translate(&hir).unwrap();
        let base_report = partition_with_chunk_boost(&mut base, &loops, &auto, 1);
        let mut boosted = translate(&hir).unwrap();
        let boosted_report = partition_with_chunk_boost(&mut boosted, &loops, &auto, 2);
        assert!(base_report.chunk_size >= 1);
        assert_eq!(boosted_report.chunk_size, base_report.chunk_size * 2);

        let fixed = PartitionConfig {
            chunk: ChunkPolicy::Fixed(4),
            ..PartitionConfig::default()
        };
        let mut fixed_boosted = translate(&hir).unwrap();
        let fixed_report = partition_with_chunk_boost(&mut fixed_boosted, &loops, &fixed, 8);
        assert_eq!(fixed_report.chunk_size, 4, "boost must not scale Fixed");
    }

    #[test]
    fn report_helpers() {
        let (_, report) = partitioned(PAPER_EXAMPLE, &PartitionConfig::default());
        assert_eq!(report.distributed_loops().count(), 1);
        assert!(report.decision_for("main", 99).is_none());
    }
}
