//! Comparators for the PODS reproduction.
//!
//! Two baselines accompany the PODS simulator, mirroring the paper's
//! evaluation:
//!
//! * [`run_sequential`] — a control-driven sequential interpreter of the same
//!   `idlang` programs with an iPSC/2-style cost model but none of the PODS
//!   run-time machinery. It stands in for the "most efficient sequential
//!   version written in a conventional language" of the §5.3.4 efficiency
//!   comparison, doubles as a correctness reference for the machine
//!   simulator, and profiles every top-level loop nest.
//! * [`PrModel`] — a bulk-synchronous, statically-scheduled SPMD cost model
//!   standing in for the Pingali & Rogers compiled-Id system (the "P&R"
//!   curve of Figure 10), driven by the sequential profile and the loop
//!   analysis.
//!
//! ```
//! use pods_baseline::{run_sequential, PrModel};
//! use pods_istructure::Value;
//! use pods_machine::TimingModel;
//!
//! let hir = pods_idlang::compile(pods_workloads::FILL).unwrap();
//! let seq = run_sequential(&hir, &[Value::Int(16)], &TimingModel::default()).unwrap();
//! let pr = PrModel::default().estimate(&seq, 8);
//! assert!(pr.speedup >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interp;
mod pr;

pub use interp::{
    run_sequential, run_sequential_bounded, BaselineArray, BaselineError, NestProfile,
    SequentialRun,
};
pub use pr::{PrModel, PrPoint};
