//! A Pingali & Rogers–style static-compilation comparator (the "P&R" curve
//! of Figure 10).
//!
//! The paper compares PODS against the approach of Pingali and Rogers
//! [PIN90, ROG89]: compile Id into C, schedule processes statically onto the
//! nodes, and execute in a completely control-driven manner. Reimplementing
//! that compiler is out of scope; instead this module models its execution
//! time with a bulk-synchronous SPMD cost model driven by measurements of
//! the *same* program taken by the sequential interpreter:
//!
//! * every top-level loop nest that PODS' analysis finds parallelizable is
//!   divided evenly over the PEs (static block scheduling of the iteration
//!   space),
//! * nests with loop-carried dependencies run serially on one PE,
//! * each parallel nest pays a boundary-exchange communication cost: the
//!   fraction of its element reads that falls on another PE's block under a
//!   row-block distribution is charged one (batched) token per element —
//!   the static system has no I-structure page cache, so there is no page
//!   amortisation — plus a barrier (log₂ P rounds of small messages) at the
//!   end of the nest, reflecting its lock-step, control-driven execution,
//! * straight-line code between nests stays serial.
//!
//! The model deliberately gives the static approach its best case on large
//! parallel nests (perfect load balance, no scheduling overhead inside a
//! nest), which is also how it behaves in the paper: competitive below 16
//! PEs on the large mesh, falling behind PODS as the machine grows.

use crate::interp::SequentialRun;
use pods_machine::TimingModel;

/// One point of the modelled P&R execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Number of PEs.
    pub pes: usize,
    /// Modelled elapsed time in microseconds.
    pub elapsed_us: f64,
    /// Speed-up relative to the sequential run the model was derived from.
    pub speedup: f64,
}

/// Parameters of the static-compilation model.
#[derive(Debug, Clone, PartialEq)]
pub struct PrModel {
    /// Timing constants (message costs).
    pub timing: TimingModel,
    /// Fraction of a parallel nest's element reads that cross a block
    /// boundary per PE pair (2 halo rows of an `n x n` block distribution
    /// is roughly `2 / (n / P)` of the reads; the model uses the measured
    /// read counts, so this factor only encodes the halo width).
    pub halo_rows: f64,
}

impl Default for PrModel {
    fn default() -> Self {
        PrModel {
            timing: TimingModel::default(),
            halo_rows: 2.0,
        }
    }
}

impl PrModel {
    /// Models the execution of the profiled program on `pes` PEs.
    pub fn estimate(&self, seq: &SequentialRun, pes: usize) -> PrPoint {
        let pes = pes.max(1);
        let mut total = seq.serial_us;
        for nest in &seq.nests {
            if nest.parallelizable && pes > 1 {
                let compute = nest.time_us / pes as f64;
                // Approximate the block height from the write count (the
                // iteration space of the nest): an n x n nest writes ~n^2
                // elements, so a block holds ~n/P rows of ~n elements.
                let n = (nest.element_writes.max(1) as f64).sqrt();
                let rows_per_pe = (n / pes as f64).max(1.0);
                let remote_fraction = (self.halo_rows / rows_per_pe).min(1.0);
                let remote_elements = nest.element_reads as f64 * remote_fraction / pes as f64;
                let comm = remote_elements * self.timing.token_route;
                let barrier = (pes as f64).log2().ceil() * self.timing.small_message;
                total += compute + comm + barrier;
            } else {
                total += nest.time_us;
            }
        }
        PrPoint {
            pes,
            elapsed_us: total,
            speedup: if total > 0.0 {
                seq.elapsed_us / total
            } else {
                0.0
            },
        }
    }

    /// Models a whole sweep of PE counts.
    pub fn sweep(&self, seq: &SequentialRun, pe_counts: &[usize]) -> Vec<PrPoint> {
        pe_counts.iter().map(|&p| self.estimate(seq, p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::run_sequential;
    use pods_istructure::Value;

    fn profile(src: &str, n: i64) -> SequentialRun {
        run_sequential(
            &pods_idlang::compile(src).unwrap(),
            &[Value::Int(n)],
            &TimingModel::default(),
        )
        .unwrap()
    }

    #[test]
    fn parallel_nests_speed_up_and_serial_nests_do_not() {
        let model = PrModel::default();
        let fill = profile(pods_workloads::FILL, 64);
        let p1 = model.estimate(&fill, 1);
        let p8 = model.estimate(&fill, 8);
        assert!(p8.elapsed_us < p1.elapsed_us);
        assert!(p8.speedup > 3.0, "got {}", p8.speedup);

        let rec = profile(pods_workloads::RECURRENCE, 512);
        let r8 = model.estimate(&rec, 8);
        assert!(
            r8.speedup < 2.0,
            "a recurrence should barely speed up, got {}",
            r8.speedup
        );
    }

    #[test]
    fn speedup_saturates_as_communication_grows() {
        let model = PrModel::default();
        let fill = profile(pods_workloads::FILL, 32);
        let sweep = model.sweep(&fill, &[1, 2, 4, 8, 16, 32]);
        assert_eq!(sweep.len(), 6);
        // Efficiency (speedup per PE) must decline with machine size.
        let eff_small = sweep[1].speedup / 2.0;
        let eff_large = sweep[5].speedup / 32.0;
        assert!(eff_large < eff_small);
    }
}
