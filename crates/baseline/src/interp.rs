//! A sequential, control-driven interpreter of the `idlang` HIR with a cost
//! model — the stand-in for the "most efficient sequential version (written
//! in a conventional language)" of §5.3.4 of the paper.
//!
//! The interpreter executes the program in ordinary program order with none
//! of the PODS machinery: no Subcompact Processes, no presence bits, no
//! split-phase accesses, no context switches, no Array Manager indirection.
//! Costs are charged from the same iPSC/2 instruction timing table the
//! simulator uses, plus simple address arithmetic for array accesses, so the
//! comparison against the 1-PE PODS run isolates the overhead of the
//! parallel run-time system exactly as the paper's efficiency comparison
//! does.
//!
//! Besides the §5.3.4 baseline, the interpreter plays two further roles:
//!
//! * it produces reference array contents used by the integration tests to
//!   validate the machine simulator end to end, and
//! * it profiles every top-level loop nest (time, element reads/writes),
//!   which the [`crate::pr`] module combines with the loop analysis to model
//!   the Pingali & Rogers static-compilation comparator of Figure 10.

use pods_dataflow::{analyze_loops, LoopInfo, LoopKey};
use pods_idlang::{BinaryOp, HirExpr, HirFunction, HirProgram, HirStmt, UnaryOp};
use pods_istructure::{ArrayId, ArrayShape, Value};
use pods_machine::{eval_binary, eval_unary, TimingModel};
use std::collections::HashMap;

/// Errors produced by the sequential interpreter.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineError {
    /// A run-time failure of the interpreted program (missing `main`,
    /// reads of never-written elements, out-of-bounds accesses,
    /// single-assignment violations, …).
    Runtime(String),
    /// The statement budget of [`run_sequential_bounded`] was exhausted
    /// (carries the configured limit).
    StepLimit(u64),
}

impl BaselineError {
    /// The error raised when [`run_sequential_bounded`]'s statement budget
    /// is exhausted.
    pub fn step_limit(limit: u64) -> BaselineError {
        BaselineError::StepLimit(limit)
    }

    /// Whether this error is the statement-budget exhaustion of
    /// [`run_sequential_bounded`] (so callers can map it onto their own
    /// event-limit vocabulary).
    pub fn is_step_limit(&self) -> bool {
        matches!(self, BaselineError::StepLimit(_))
    }
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Runtime(msg) => write!(f, "baseline error: {msg}"),
            BaselineError::StepLimit(limit) => {
                write!(f, "baseline error: statement limit exceeded: {limit}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// Profile of one top-level loop nest, accumulated over every dynamic
/// execution of that nest.
#[derive(Debug, Clone, PartialEq)]
pub struct NestProfile {
    /// The outermost loop of the nest.
    pub key: LoopKey,
    /// Total time spent inside the nest (microseconds).
    pub time_us: f64,
    /// Array element reads performed inside the nest.
    pub element_reads: u64,
    /// Array element writes performed inside the nest.
    pub element_writes: u64,
    /// `true` when PODS would distribute this nest (no loop-carried
    /// dependency at the outermost level and a usable distribution target).
    pub parallelizable: bool,
}

/// A final array produced by the sequential run.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineArray {
    /// Source-level name.
    pub name: String,
    /// Shape of the array.
    pub shape: ArrayShape,
    /// Element values (row-major); `None` if never written.
    pub values: Vec<Option<Value>>,
}

impl BaselineArray {
    /// The whole array as `f64`s, `default` substituted for unwritten
    /// elements.
    pub fn to_f64(&self, default: f64) -> Vec<f64> {
        self.values
            .iter()
            .map(|v| v.and_then(|v| v.as_f64()).unwrap_or(default))
            .collect()
    }
}

/// The result of a sequential baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct SequentialRun {
    /// Modelled sequential execution time in microseconds.
    pub elapsed_us: f64,
    /// The value returned by `main`.
    pub return_value: Option<Value>,
    /// Final array contents, in allocation order.
    pub arrays: Vec<BaselineArray>,
    /// Per-top-level-loop-nest profile.
    pub nests: Vec<NestProfile>,
    /// Time spent outside any loop nest (straight-line code and calls).
    pub serial_us: f64,
}

impl SequentialRun {
    /// Elapsed time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_us / 1.0e6
    }

    /// The last-allocated array with the given name.
    pub fn array(&self, name: &str) -> Option<&BaselineArray> {
        self.arrays.iter().rev().find(|a| a.name == name)
    }
}

/// Runs `main` of the program sequentially with the given arguments.
///
/// # Errors
///
/// Returns a [`BaselineError`] on missing `main`, argument mismatch, reads
/// of never-written elements, out-of-bounds accesses, or single-assignment
/// violations.
pub fn run_sequential(
    hir: &HirProgram,
    args: &[Value],
    timing: &TimingModel,
) -> Result<SequentialRun, BaselineError> {
    run_sequential_bounded(hir, args, timing, 0)
}

/// [`run_sequential`] with a safety budget: the run aborts with
/// [`BaselineError::step_limit`] after `max_steps` interpreted statements
/// (0 = unlimited). This is the sequential analogue of the simulator's
/// event limit and the native engine's task limit, so runaway programs are
/// caught on every engine.
///
/// # Errors
///
/// Everything [`run_sequential`] reports, plus the step-limit error.
pub fn run_sequential_bounded(
    hir: &HirProgram,
    args: &[Value],
    timing: &TimingModel,
    max_steps: u64,
) -> Result<SequentialRun, BaselineError> {
    let loops = analyze_loops(hir);
    let mut interp = Interp {
        hir,
        timing,
        loops: &loops,
        arrays: Vec::new(),
        time: 0.0,
        nests: HashMap::new(),
        nest_stack: Vec::new(),
        serial_us: 0.0,
        depth: 0,
        steps: 0,
        max_steps,
    };
    let entry = hir
        .entry()
        .ok_or_else(|| BaselineError::Runtime("program has no `main` function".into()))?;
    if entry.params.len() != args.len() {
        return Err(BaselineError::Runtime(format!(
            "`main` takes {} argument(s), {} supplied",
            entry.params.len(),
            args.len()
        )));
    }
    let return_value = interp.call(entry, args.to_vec())?;

    let mut nests: Vec<NestProfile> = interp.nests.into_values().collect();
    nests.sort_by(|a, b| {
        (a.key.function.clone(), a.key.ordinal).cmp(&(b.key.function.clone(), b.key.ordinal))
    });
    let nest_time: f64 = nests.iter().map(|n| n.time_us).sum();
    interp.serial_us = (interp.time - nest_time).max(0.0);
    Ok(SequentialRun {
        elapsed_us: interp.time,
        return_value,
        arrays: interp
            .arrays
            .into_iter()
            .map(|a| BaselineArray {
                name: a.name,
                shape: a.shape,
                values: a.values,
            })
            .collect(),
        nests,
        serial_us: interp.serial_us,
    })
}

struct ArrayState {
    name: String,
    shape: ArrayShape,
    values: Vec<Option<Value>>,
}

struct Interp<'a> {
    hir: &'a HirProgram,
    timing: &'a TimingModel,
    loops: &'a [LoopInfo],
    arrays: Vec<ArrayState>,
    time: f64,
    nests: HashMap<(String, usize), NestProfile>,
    /// Stack of top-level nests currently being executed (function name,
    /// ordinal, entry time).
    nest_stack: Vec<(String, usize, f64)>,
    serial_us: f64,
    depth: usize,
    /// Statements interpreted so far (the unit the step budget counts).
    steps: u64,
    /// 0 = unlimited; otherwise abort once `steps` exceeds this budget.
    max_steps: u64,
}

enum Flow {
    Normal,
    Return(Value),
}

impl<'a> Interp<'a> {
    fn charge(&mut self, us: f64) {
        self.time += us;
    }

    fn current_nest(&mut self) -> Option<&mut NestProfile> {
        let (function, ordinal, _) = self.nest_stack.last()?.clone();
        self.nests.get_mut(&(function, ordinal))
    }

    fn call(
        &mut self,
        function: &HirFunction,
        args: Vec<Value>,
    ) -> Result<Option<Value>, BaselineError> {
        if self.depth > 256 {
            return Err(BaselineError::Runtime("call depth exceeded".into()));
        }
        self.depth += 1;
        // Call overhead: argument moves plus the call/return pair.
        self.charge(
            2.0 * self.timing.context_switch + args.len() as f64 * self.timing.memory_write,
        );
        let mut env: HashMap<String, Value> = HashMap::new();
        for (p, v) in function.params.iter().zip(args) {
            env.insert(p.clone(), v);
        }
        let flow = self.exec_block(&function.name, &function.body, &mut env)?;
        self.depth -= 1;
        Ok(match flow {
            Flow::Return(v) => Some(v),
            Flow::Normal => None,
        })
    }

    fn function(&self, name: &str) -> Result<&'a HirFunction, BaselineError> {
        self.hir
            .function(name)
            .ok_or_else(|| BaselineError::Runtime(format!("unknown function `{name}`")))
    }

    fn exec_block(
        &mut self,
        function: &str,
        stmts: &[HirStmt],
        env: &mut HashMap<String, Value>,
    ) -> Result<Flow, BaselineError> {
        let mut loop_ordinal_iter = OrdinalTracker::new(self.loops, function);
        for stmt in stmts {
            match self.exec_stmt(function, stmt, env, &mut loop_ordinal_iter)? {
                Flow::Normal => {}
                Flow::Return(v) => return Ok(Flow::Return(v)),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &mut self,
        function: &str,
        stmt: &HirStmt,
        env: &mut HashMap<String, Value>,
        ordinals: &mut OrdinalTracker,
    ) -> Result<Flow, BaselineError> {
        self.steps += 1;
        if self.max_steps > 0 && self.steps > self.max_steps {
            return Err(BaselineError::step_limit(self.max_steps));
        }
        match stmt {
            HirStmt::Let { name, value } => {
                let v = self.eval(function, value, env)?;
                self.charge(self.timing.memory_write);
                env.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            HirStmt::Alloc { name, dims } => {
                let mut extents = Vec::new();
                for d in dims {
                    let v = self.eval(function, d, env)?;
                    let n = v.as_i64().filter(|&n| n > 0).ok_or_else(|| {
                        BaselineError::Runtime(format!("bad dimension for `{name}`"))
                    })?;
                    extents.push(n as usize);
                }
                let shape = ArrayShape::new(extents);
                // malloc-style allocation cost.
                self.charge(self.timing.array_allocate);
                let id = ArrayId(self.arrays.len());
                self.arrays.push(ArrayState {
                    name: name.clone(),
                    shape: shape.clone(),
                    values: vec![None; shape.len()],
                });
                env.insert(name.clone(), Value::ArrayRef(id));
                Ok(Flow::Normal)
            }
            HirStmt::Store {
                array,
                indices,
                value,
            } => {
                let v = self.eval(function, value, env)?;
                let offset = self.element_offset(function, array, indices, env)?;
                let id = self.array_id(array, env)?;
                self.charge(self.timing.memory_write);
                if let Some(nest) = self.current_nest() {
                    nest.element_writes += 1;
                }
                let cell = &mut self.arrays[id.index()].values[offset];
                if cell.is_some() {
                    return Err(BaselineError::Runtime(format!(
                        "single-assignment violation on `{array}`"
                    )));
                }
                *cell = Some(v);
                Ok(Flow::Normal)
            }
            HirStmt::For {
                var,
                from,
                to,
                descending,
                body,
            } => {
                let ordinal = ordinals.next_for_this_loop();
                let is_top_level = self
                    .loops
                    .iter()
                    .find(|l| l.key.function == function && l.key.ordinal == ordinal)
                    .map(|l| l.depth == 0)
                    .unwrap_or(false);
                if is_top_level {
                    let parallelizable = self
                        .loops
                        .iter()
                        .find(|l| l.key.function == function && l.key.ordinal == ordinal)
                        .map(|l| l.is_distributable())
                        .unwrap_or(false);
                    self.nests
                        .entry((function.to_string(), ordinal))
                        .or_insert_with(|| NestProfile {
                            key: LoopKey {
                                function: function.to_string(),
                                ordinal,
                            },
                            time_us: 0.0,
                            element_reads: 0,
                            element_writes: 0,
                            parallelizable,
                        });
                    self.nest_stack
                        .push((function.to_string(), ordinal, self.time));
                }

                let from_v = self
                    .eval(function, from, env)?
                    .as_i64()
                    .ok_or_else(|| BaselineError::Runtime("non-integer loop bound".into()))?;
                let to_v = self
                    .eval(function, to, env)?
                    .as_i64()
                    .ok_or_else(|| BaselineError::Runtime("non-integer loop bound".into()))?;
                let mut i = from_v;
                loop {
                    let done = if *descending { i < to_v } else { i > to_v };
                    // Loop control: compare, branch, increment.
                    self.charge(3.0 * self.timing.int_alu);
                    if done {
                        break;
                    }
                    env.insert(var.clone(), Value::Int(i));
                    let mut inner_ordinals = OrdinalTracker::at(ordinals.next_counter);
                    for stmt in body {
                        match self.exec_stmt(function, stmt, env, &mut inner_ordinals)? {
                            Flow::Normal => {}
                            Flow::Return(v) => return Ok(Flow::Return(v)),
                        }
                    }
                    ordinals.next_counter = inner_ordinals.next_counter;
                    i += if *descending { -1 } else { 1 };
                }
                env.remove(var);

                if is_top_level {
                    if let Some((f, o, start)) = self.nest_stack.pop() {
                        let elapsed = self.time - start;
                        if let Some(nest) = self.nests.get_mut(&(f, o)) {
                            nest.time_us += elapsed;
                        }
                    }
                }
                Ok(Flow::Normal)
            }
            HirStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let c = self
                    .eval(function, cond, env)?
                    .as_bool()
                    .ok_or_else(|| BaselineError::Runtime("non-boolean condition".into()))?;
                self.charge(self.timing.int_alu);
                // Preorder loop numbering: the then-branch loops come first,
                // then the else-branch loops, regardless of which branch is
                // taken.
                let then_start = ordinals.next_counter;
                let else_start = then_start + OrdinalTracker::count_loops(then_body);
                let after = else_start + OrdinalTracker::count_loops(else_body);
                let (body, start) = if c {
                    (then_body, then_start)
                } else {
                    (else_body, else_start)
                };
                let mut env2 = env.clone();
                let mut inner = OrdinalTracker::at(start);
                let mut flow = Flow::Normal;
                for stmt in body {
                    match self.exec_stmt(function, stmt, &mut env2, &mut inner)? {
                        Flow::Normal => {}
                        Flow::Return(v) => {
                            flow = Flow::Return(v);
                            break;
                        }
                    }
                }
                ordinals.next_counter = after;
                for (k, v) in env2 {
                    env.entry(k).or_insert(v);
                }
                Ok(flow)
            }
            HirStmt::Return { value } => {
                let v = self.eval(function, value, env)?;
                Ok(Flow::Return(v))
            }
            HirStmt::Call {
                function: callee,
                args,
            } => {
                let mut arg_values = Vec::new();
                for a in args {
                    arg_values.push(self.eval(function, a, env)?);
                }
                let f = self.function(callee)?;
                self.call(f, arg_values)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn array_id(&self, name: &str, env: &HashMap<String, Value>) -> Result<ArrayId, BaselineError> {
        match env.get(name) {
            Some(Value::ArrayRef(id)) => Ok(*id),
            _ => Err(BaselineError::Runtime(format!("`{name}` is not an array"))),
        }
    }

    fn element_offset(
        &mut self,
        function: &str,
        array: &str,
        indices: &[HirExpr],
        env: &mut HashMap<String, Value>,
    ) -> Result<usize, BaselineError> {
        let mut idx = Vec::new();
        for e in indices {
            let v = self.eval(function, e, env)?;
            idx.push(v.as_i64().unwrap_or(-1));
        }
        let id = self.array_id(array, env)?;
        // Address arithmetic: one multiply and add per dimension.
        self.charge(indices.len() as f64 * (self.timing.int_mul + self.timing.int_alu));
        self.arrays[id.index()]
            .shape
            .offset_of(&idx)
            .ok_or_else(|| {
                BaselineError::Runtime(format!(
                    "index {idx:?} out of bounds for `{array}` ({})",
                    self.arrays[id.index()].shape
                ))
            })
    }

    fn eval(
        &mut self,
        function: &str,
        expr: &HirExpr,
        env: &mut HashMap<String, Value>,
    ) -> Result<Value, BaselineError> {
        Ok(match expr {
            HirExpr::Int(v) => Value::Int(*v),
            HirExpr::Float(v) => Value::Float(*v),
            HirExpr::Bool(v) => Value::Bool(*v),
            HirExpr::Var(name) => *env
                .get(name)
                .ok_or_else(|| BaselineError::Runtime(format!("unknown variable `{name}`")))?,
            HirExpr::Load { array, indices } => {
                let offset = self.element_offset(function, array, indices, env)?;
                let id = self.array_id(array, env)?;
                self.charge(self.timing.memory_read);
                if let Some(nest) = self.current_nest() {
                    nest.element_reads += 1;
                }
                self.arrays[id.index()].values[offset].ok_or_else(|| {
                    BaselineError::Runtime(format!(
                        "element {offset} of `{array}` read before being written"
                    ))
                })?
            }
            HirExpr::Unary { op, operand } => {
                let v = self.eval(function, operand, env)?;
                self.charge(
                    self.timing
                        .unary_op(*op, v.is_float() || float_producing(*op)),
                );
                eval_unary(*op, v).map_err(|e| BaselineError::Runtime(e.to_string()))?
            }
            HirExpr::Binary { op, lhs, rhs } => {
                let a = self.eval(function, lhs, env)?;
                let b = self.eval(function, rhs, env)?;
                self.charge(self.timing.binary_op(*op, a.is_float() || b.is_float()));
                eval_binary(*op, a, b).map_err(|e| BaselineError::Runtime(e.to_string()))?
            }
            HirExpr::Call {
                function: callee,
                args,
            } => {
                let mut arg_values = Vec::new();
                for a in args {
                    arg_values.push(self.eval(function, a, env)?);
                }
                let f = self.function(callee)?;
                self.call(f, arg_values)?.ok_or_else(|| {
                    BaselineError::Runtime(format!("`{callee}` returned no value"))
                })?
            }
            HirExpr::Select {
                cond,
                then_value,
                else_value,
            } => {
                let c = self
                    .eval(function, cond, env)?
                    .as_bool()
                    .ok_or_else(|| BaselineError::Runtime("non-boolean condition".into()))?;
                self.charge(self.timing.int_alu);
                if c {
                    self.eval(function, then_value, env)?
                } else {
                    self.eval(function, else_value, env)?
                }
            }
        })
    }
}

/// Whether a unary operator produces a float regardless of its operand type
/// (used only for cost estimation).
fn float_producing(op: UnaryOp) -> bool {
    matches!(
        op,
        UnaryOp::Sqrt | UnaryOp::Exp | UnaryOp::Ln | UnaryOp::Sin | UnaryOp::Cos
    )
}

/// Tracks preorder loop ordinals during interpretation so that profiles can
/// be matched with the static loop analysis (which numbers loops the same
/// way).
struct OrdinalTracker {
    next_counter: usize,
}

impl OrdinalTracker {
    fn new(_loops: &[LoopInfo], _function: &str) -> Self {
        OrdinalTracker { next_counter: 0 }
    }

    fn at(counter: usize) -> Self {
        OrdinalTracker {
            next_counter: counter,
        }
    }

    fn next_for_this_loop(&mut self) -> usize {
        let o = self.next_counter;
        self.next_counter += 1;
        o
    }

    /// Number of loops (recursively) contained in a statement list,
    /// matching the preorder numbering of the loop analysis.
    fn count_loops(stmts: &[HirStmt]) -> usize {
        stmts
            .iter()
            .map(|s| match s {
                HirStmt::For { body, .. } => 1 + OrdinalTracker::count_loops(body),
                HirStmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    OrdinalTracker::count_loops(then_body) + OrdinalTracker::count_loops(else_body)
                }
                _ => 0,
            })
            .sum()
    }
}

/// A check against the cost-free semantics: binary ops over ints never charge
/// float times. (Used by unit tests.)
#[allow(dead_code)]
fn int_op_cost(timing: &TimingModel) -> f64 {
    timing.binary_op(BinaryOp::Add, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pods_idlang::compile;

    fn run(src: &str, args: &[Value]) -> SequentialRun {
        run_sequential(&compile(src).unwrap(), args, &TimingModel::default()).unwrap()
    }

    #[test]
    fn scalar_arithmetic_and_calls() {
        let r = run(
            "def main(n) { x = twice(n) + 1; return x; } def twice(v) { return v * 2; }",
            &[Value::Int(10)],
        );
        assert_eq!(r.return_value, Some(Value::Int(21)));
        assert!(r.elapsed_us > 0.0);
    }

    #[test]
    fn loops_fill_arrays_and_profiles_are_recorded() {
        let r = run(
            r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 { a[i, j] = i * n + j; }
                }
                return a;
            }
            "#,
            &[Value::Int(8)],
        );
        let a = r.array("a").unwrap();
        assert_eq!(a.values.iter().filter(|v| v.is_some()).count(), 64);
        assert_eq!(a.to_f64(-1.0)[10], 10.0);
        assert_eq!(r.nests.len(), 1);
        let nest = &r.nests[0];
        assert_eq!(nest.element_writes, 64);
        assert!(nest.parallelizable);
        assert!(nest.time_us > 0.0);
        assert!(r.serial_us >= 0.0);
    }

    #[test]
    fn conditionals_and_descending_loops() {
        let r = run(
            r#"
            def main(n) {
                a = array(n);
                for i = n - 1 downto 0 {
                    a[i] = if i % 2 == 0 then i else 0 - i;
                }
                return a[2];
            }
            "#,
            &[Value::Int(6)],
        );
        assert_eq!(r.return_value, Some(Value::Int(2)));
    }

    #[test]
    fn errors_are_reported() {
        let hir = compile("def main(n) { a = array(n); return a[0]; }").unwrap();
        let err = run_sequential(&hir, &[Value::Int(3)], &TimingModel::default()).unwrap_err();
        assert!(err.to_string().contains("read before"));

        let hir = compile("def main(n) { a = array(n); a[0] = 1; a[0] = 2; return 0; }").unwrap();
        assert!(run_sequential(&hir, &[Value::Int(3)], &TimingModel::default()).is_err());

        let hir = compile("def main(n) { return n; }").unwrap();
        assert!(run_sequential(&hir, &[], &TimingModel::default()).is_err());
    }

    #[test]
    fn step_budget_aborts_runaway_runs() {
        let hir =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i; } return a; }")
                .unwrap();
        let err = run_sequential_bounded(&hir, &[Value::Int(100)], &TimingModel::default(), 5)
            .unwrap_err();
        assert!(err.is_step_limit(), "{err}");
        assert_eq!(err, BaselineError::step_limit(5));
        // An unrelated error is not mistaken for the budget.
        let hir = compile("def main(n) { a = array(n); return a[0]; }").unwrap();
        let other = run_sequential_bounded(&hir, &[Value::Int(3)], &TimingModel::default(), 1000)
            .unwrap_err();
        assert!(!other.is_step_limit());
        // Budget 0 means unlimited.
        let hir = compile("def main(n) { return n; }").unwrap();
        assert!(run_sequential_bounded(&hir, &[Value::Int(1)], &TimingModel::default(), 0).is_ok());
    }

    #[test]
    fn recurrence_nest_is_marked_serial() {
        let r = run(pods_workloads::RECURRENCE, &[Value::Int(32)]);
        assert_eq!(r.nests.len(), 2);
        assert!(r.nests[0].parallelizable);
        assert!(!r.nests[1].parallelizable);
    }

    #[test]
    fn float_ops_cost_more_than_int_ops() {
        let t = TimingModel::default();
        assert!(t.binary_op(BinaryOp::Add, true) > int_op_cost(&t));
    }
}
