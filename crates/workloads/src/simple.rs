//! The SIMPLE hydrodynamics / heat-conduction benchmark (paper §5.2).
//!
//! SIMPLE (Crowley et al., LLNL UCID-17715) simulates the behaviour of a
//! fluid in a sphere with a Lagrangian formulation. The paper's evaluation
//! runs an Id version of SIMPLE on 16x16, 32x32, and 64x64 meshes. This is a
//! structurally faithful `idlang` rendering of one time step:
//!
//! * `init_state` — mesh and state initialisation (parallel),
//! * `velocity_position` — acceleration from pressure/viscosity gradients,
//!   velocity and position update; no loop-carried dependencies, "runs in
//!   parallel very well",
//! * `hydrodynamics` — cell geometry, density, artificial viscosity, energy
//!   and pressure update; "basically one big nested loop",
//! * `conduction` — heat conduction via a forward (ascending) and a backward
//!   (descending) row sweep in which every element is recalculated twice from
//!   its neighbours; the sweeps carry dependencies across rows, which is what
//!   makes iteration-level parallelism challenging (the columns within a row
//!   remain independent and are what PODS distributes),
//! * boundary routines and a per-row checksum.
//!
//! The physics constants are simplified, but the loop nesting, sweep
//! directions, array access patterns (neighbour reads, row recurrences), and
//! floating-point operation mix follow the original routine structure.

/// The SIMPLE benchmark source. `main(n)` runs one time step on an `n x n`
/// mesh and returns a per-row checksum vector.
pub const SIMPLE: &str = r#"
# SIMPLE: Lagrangian hydrodynamics + heat conduction, one time step.

def main(n) {
    # State at the beginning of the step.
    x = matrix(n, n);
    y = matrix(n, n);
    u = matrix(n, n);
    v = matrix(n, n);
    rho = matrix(n, n);
    e = matrix(n, n);
    p = matrix(n, n);
    q = matrix(n, n);
    theta = matrix(n, n);
    init_state(x, y, u, v, rho, e, p, q, theta, n);

    # Phase 1: velocity and position update.
    un = matrix(n, n);
    vn = matrix(n, n);
    xn = matrix(n, n);
    yn = matrix(n, n);
    velocity_position(u, v, x, y, p, q, un, vn, xn, yn, n);

    # Phase 2: hydrodynamics (density, viscosity, energy, pressure).
    rhon = matrix(n, n);
    qn = matrix(n, n);
    pn = matrix(n, n);
    en = matrix(n, n);
    hydrodynamics(rho, e, p, un, vn, xn, yn, rhon, qn, pn, en, n);

    # Phase 3: heat conduction (forward + backward sweeps).
    theta_half = matrix(n, n);
    thetan = matrix(n, n);
    conduction(theta, en, rhon, theta_half, thetan, n);

    # Per-row checksum so callers can validate the run cheaply.
    s = array(n);
    checksum(thetan, pn, un, s, n);
    return s;
}

def init_state(x, y, u, v, rho, e, p, q, theta, n) {
    for i = 0 to n - 1 {
        for j = 0 to n - 1 {
            # Polar-ish Lagrangian mesh: radius grows with i, angle with j.
            r = 1.0 + i * 0.05;
            ang = j * 0.01;
            x[i, j] = r * cos(ang);
            y[i, j] = r * sin(ang);
            u[i, j] = 0.0;
            v[i, j] = 0.0;
            rho[i, j] = 1.4 + 0.01 * i;
            e[i, j] = 1.0 + 0.005 * (i + j);
            p[i, j] = 0.4 * rho[i, j] * e[i, j];
            q[i, j] = 0.0;
            theta[i, j] = 300.0 + sqrt(e[i, j]) * 10.0 + 0.5 * j;
        }
    }
    return 0;
}

# Phase 1: accelerations from pressure/viscosity gradients, then velocity and
# position integration. Interior cells only; boundaries copy the old state.
def velocity_position(u, v, x, y, p, q, un, vn, xn, yn, n) {
    dt = 0.01;
    for i = 1 to n - 2 {
        for j = 1 to n - 2 {
            # Pressure + viscosity gradients across the cell corners, scaled
            # by the local cell geometry (finite-difference Lagrangian form).
            dxj = x[i, j + 1] - x[i, j - 1];
            dyj = y[i, j + 1] - y[i, j - 1];
            dxi = x[i + 1, j] - x[i - 1, j];
            dyi = y[i + 1, j] - y[i - 1, j];
            metric = sqrt(dxj * dxj + dyj * dyj) * sqrt(dxi * dxi + dyi * dyi) + 0.0001;
            # Corner-area weights of the Lagrangian control volume.
            w1 = sqrt(abs(dxj * dyi - dxi * dyj) + 0.0001);
            w2 = pow(metric, 0.5);
            gradp_x = (p[i, j + 1] - p[i, j - 1] + q[i, j + 1] - q[i, j - 1]) * 0.5 * w1 / w2;
            gradp_y = (p[i + 1, j] - p[i - 1, j] + q[i + 1, j] - q[i - 1, j]) * 0.5 * w1 / w2;
            ax = 0.0 - gradp_x / metric;
            ay = 0.0 - gradp_y / metric;
            un[i, j] = u[i, j] + dt * ax;
            vn[i, j] = v[i, j] + dt * ay;
            xn[i, j] = x[i, j] + dt * un[i, j];
            yn[i, j] = y[i, j] + dt * vn[i, j];
        }
    }
    boundary_copy(u, un, n);
    boundary_copy(v, vn, n);
    boundary_copy(x, xn, n);
    boundary_copy(y, yn, n);
    return 0;
}

# Copies the boundary frame of `old` into `new`.
def boundary_copy(old, new, n) {
    for i = 1 to n - 2 {
        new[i, 0] = old[i, 0];
        new[i, n - 1] = old[i, n - 1];
    }
    for j = 0 to n - 1 {
        copy_row_edges(old, new, j, n);
    }
    return 0;
}

def copy_row_edges(old, new, j, n) {
    new[0, j] = old[0, j];
    new[n - 1, j] = old[n - 1, j];
    return 0;
}

# Phase 2: one large nested loop updating density, artificial viscosity,
# energy, and pressure from the new geometry.
def hydrodynamics(rho, e, p, un, vn, xn, yn, rhon, qn, pn, en, n) {
    gamma = 1.4;
    dt = 0.01;
    for i = 1 to n - 2 {
        for j = 1 to n - 2 {
            # Cell area from the new corner coordinates (cross product),
            # density from mass conservation, artificial viscosity from the
            # compression rate, energy from the work term, and pressure from
            # a gamma-law equation of state with a sound-speed term.
            area = abs((xn[i, j + 1] - xn[i, j - 1]) * (yn[i + 1, j] - yn[i - 1, j])
                     - (xn[i + 1, j] - xn[i - 1, j]) * (yn[i, j + 1] - yn[i, j - 1])) * 0.25
                 + 1.0;
            rhon[i, j] = rho[i, j] * (2.0 - area) + 0.001;
            du = un[i, j + 1] - un[i, j - 1];
            dv = vn[i + 1, j] - vn[i - 1, j];
            cmpr = du + dv;
            # Sound speed and artificial viscosity (von Neumann-Richtmyer
            # form with a linear term).
            csound = sqrt(gamma * abs(p[i, j]) / rhon[i, j]);
            qn[i, j] = if cmpr < 0.0
                       then 0.5 * rhon[i, j] * (cmpr * cmpr + csound * abs(cmpr))
                       else 0.0;
            # Two-step energy update (predict with the old pressure, correct
            # with the gamma-law equation-of-state pressure of the
            # prediction), as in the original iterative energy solve.
            epred = e[i, j] - (p[i, j] + qn[i, j]) * cmpr * dt / rhon[i, j];
            ppred = (gamma - 1.0) * pow(rhon[i, j], gamma) * epred
                  / pow(abs(rho[i, j]) + 0.001, gamma - 1.0);
            en[i, j] = e[i, j] - (0.5 * (p[i, j] + ppred) + qn[i, j]) * cmpr * dt / rhon[i, j];
            pn[i, j] = (gamma - 1.0) * rhon[i, j] * en[i, j]
                     + 0.01 * sqrt(abs(en[i, j]) + 1.0);
        }
    }
    hydro_boundary(rho, e, p, rhon, qn, pn, en, n);
    return 0;
}

# Boundary cells keep the old state (and zero viscosity).
def hydro_boundary(rho, e, p, rhon, qn, pn, en, n) {
    for i = 1 to n - 2 {
        rhon[i, 0] = rho[i, 0];
        rhon[i, n - 1] = rho[i, n - 1];
        qn[i, 0] = 0.0;
        qn[i, n - 1] = 0.0;
        en[i, 0] = e[i, 0];
        en[i, n - 1] = e[i, n - 1];
        pn[i, 0] = p[i, 0];
        pn[i, n - 1] = p[i, n - 1];
    }
    for j = 0 to n - 1 {
        hydro_row_edges(rho, e, p, rhon, qn, pn, en, j, n);
    }
    return 0;
}

def hydro_row_edges(rho, e, p, rhon, qn, pn, en, j, n) {
    rhon[0, j] = rho[0, j];
    rhon[n - 1, j] = rho[n - 1, j];
    qn[0, j] = 0.0;
    qn[n - 1, j] = 0.0;
    en[0, j] = e[0, j];
    en[n - 1, j] = e[n - 1, j];
    pn[0, j] = p[0, j];
    pn[n - 1, j] = p[n - 1, j];
    return 0;
}

# Phase 3: heat conduction. Two ADI-style sweep phases in which every
# element is recalculated twice, based on its neighbours:
#
#   1. a forward sweep *along each row* (ascending recurrence in j): rows are
#      independent, so PODS distributes them; the recurrence within a row is
#      the loop-carried dependency and stays local to the owning PE;
#   2. a backward sweep *along each column* (descending recurrence in i).
#      To keep the recurrence local under the row-major distribution, the
#      intermediate field is first transposed (a fully parallel but
#      communication-heavy redistribution), swept row-wise on the transposed
#      array, and transposed back.
#
# The conductivity coefficients depend non-linearly on energy and density
# (sqrt terms), as in the original SIMPLE conduction routine.
def conduction(theta, en, rhon, theta_half, thetan, n) {
    # Forward sweep along rows: theta_half[i, j] <- f(theta, theta_half[i, j-1]).
    # The conductivity follows the classical kappa ~ theta^(5/2) law.
    for i = 0 to n - 1 {
        theta_half[i, 0] = theta[i, 0];
        for j = 1 to n - 1 {
            kappa = 0.001 * pow(abs(theta[i, j]) * 0.01, 2.5) / (abs(en[i, j]) + 1.0);
            cc = 0.2 + kappa;
            theta_half[i, j] = (theta[i, j] + cc * theta_half[i, j - 1]) / (1.0 + cc);
        }
    }

    # Redistribute: transpose the intermediate temperature field.
    ttrans = matrix(n, n);
    for i = 0 to n - 1 {
        for j = 0 to n - 1 {
            ttrans[i, j] = theta_half[j, i];
        }
    }

    # Backward sweep along the original columns = along the rows of the
    # transposed field (descending recurrence).
    tswept = matrix(n, n);
    for i = 0 to n - 1 {
        tswept[i, n - 1] = ttrans[i, n - 1];
        for j = n - 2 downto 0 {
            kappa2 = 0.001 * pow(abs(ttrans[i, j]) * 0.01, 2.5);
            cd = 0.2 + kappa2 / (sqrt(abs(rhon[j, i])) + 1.0);
            tswept[i, j] = (ttrans[i, j] + cd * tswept[i, j + 1]) / (1.0 + cd);
        }
    }

    # Transpose back into the final temperature field.
    for i = 0 to n - 1 {
        for j = 0 to n - 1 {
            thetan[i, j] = tswept[j, i];
        }
    }
    return 0;
}

# A cheap per-row signature of the final state.
def checksum(thetan, pn, un, s, n) {
    for i = 0 to n - 1 {
        s[i] = thetan[i, 0] + thetan[i, n - 1] + pn[i, 1] + un[i, 1];
    }
    return 0;
}
"#;

/// The mesh sizes evaluated in the paper (Figures 9 and 10).
pub const PAPER_MESH_SIZES: [usize; 3] = [16, 32, 64];

/// The PE counts evaluated in the paper (Figures 8-10).
pub const PAPER_PE_COUNTS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// The speed-ups reported by the paper at 32 PEs for each mesh size, used by
/// `EXPERIMENTS.md` and the benchmark harness for side-by-side reporting.
pub const PAPER_SPEEDUP_AT_32: [(usize, f64); 3] = [(16, 8.1), (32, 12.4), (64, 18.9)];

#[cfg(test)]
mod tests {
    use super::*;
    use pods_idlang::compile;

    #[test]
    fn simple_compiles_and_has_the_expected_routine_set() {
        let hir = compile(SIMPLE).unwrap();
        for routine in [
            "main",
            "init_state",
            "velocity_position",
            "hydrodynamics",
            "conduction",
            "boundary_copy",
            "checksum",
        ] {
            assert!(hir.function(routine).is_some(), "missing routine {routine}");
        }
    }

    #[test]
    fn conduction_recurrences_are_carried_but_row_level_is_parallel() {
        let hir = compile(SIMPLE).unwrap();
        let loops = pods_dataflow::analyze_loops(&hir);
        let conduction: Vec<_> = loops
            .iter()
            .filter(|l| l.key.function == "conduction")
            .collect();
        // forward (i, j), transpose (i, j), backward (i, j), transpose (i, j).
        assert_eq!(conduction.len(), 8);
        // Every outer (row) level is parallel and distributable.
        for outer in conduction.iter().filter(|l| l.depth == 0) {
            assert!(
                !outer.has_lcd,
                "row level of {} should be parallel",
                outer.key
            );
            assert!(outer.is_distributable());
        }
        // The in-row sweep recurrences (ascending and descending) are
        // loop-carried; the transpose inner loops are not.
        let carried: Vec<_> = conduction.iter().filter(|l| l.has_lcd).collect();
        assert_eq!(carried.len(), 2, "one forward and one backward recurrence");
        assert!(carried.iter().any(|l| l.descending));
        assert!(carried.iter().any(|l| !l.descending));
    }

    #[test]
    fn velocity_position_and_hydrodynamics_are_parallel() {
        let hir = compile(SIMPLE).unwrap();
        let loops = pods_dataflow::analyze_loops(&hir);
        for routine in ["velocity_position", "hydrodynamics", "init_state"] {
            let outer = loops
                .iter()
                .find(|l| l.key.function == routine && l.depth == 0 && l.var == "i")
                .unwrap_or_else(|| panic!("no outer loop in {routine}"));
            assert!(!outer.has_lcd, "{routine} outer loop should be parallel");
            assert!(
                outer.is_distributable(),
                "{routine} outer loop should be distributable"
            );
        }
    }

    #[test]
    fn paper_reference_constants() {
        assert_eq!(PAPER_MESH_SIZES, [16, 32, 64]);
        assert_eq!(PAPER_PE_COUNTS.len(), 6);
        assert_eq!(PAPER_SPEEDUP_AT_32[2], (64, 18.9));
    }
}
