//! Benchmark workloads for the PODS reproduction, written in `idlang`.
//!
//! The centrepiece is a structurally faithful version of **SIMPLE**, the
//! Lawrence Livermore hydrodynamics / heat-conduction benchmark the paper
//! evaluates (§5.2): three major routines over an `n x n` Lagrangian mesh —
//! `velocity_position` (fully parallel), `hydrodynamics` (one large nested
//! loop), and `conduction` (forward and backward sweeps whose loop-carried
//! dependencies make iteration-level parallelism hard) — plus initialisation
//! and boundary code. Physical fidelity is not the point; what matters for
//! the reproduction is the loop-nest structure, the sweep directions, the
//! neighbour access patterns, and the floating-point operation mix, which
//! are preserved.
//!
//! The crate also provides smaller workloads used by the examples, tests,
//! and micro-benchmarks: dense matrix multiply, a 2-D stencil relaxation,
//! the paper's §3 running example, and a trivially parallel "fill" kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod simple;

/// The running example from §3 of the paper: fill a `50 x 10` matrix by
/// calling a function for every element.
pub const PAPER_EXAMPLE: &str = r#"
def main() {
    a = matrix(50, 10);
    for i = 0 to 49 {
        for j = 0 to 9 {
            a[i, j] = f(i, j);
        }
    }
    return a;
}
def f(i, j) {
    return i * 10 + j;
}
"#;

/// Embarrassingly parallel fill of an `n x n` matrix (used by quick tests
/// and as the simplest possible scaling workload).
pub const FILL: &str = r#"
def main(n) {
    a = matrix(n, n);
    for i = 0 to n - 1 {
        for j = 0 to n - 1 {
            a[i, j] = sqrt(i * 1.0) + j * 0.5;
        }
    }
    return a;
}
"#;

/// Dense matrix multiply `c = a * b` on `n x n` matrices.
///
/// The inner-product reduction is expressed with a prefix-sum I-structure
/// (`partial`), the idiomatic single-assignment rendering of an
/// accumulation: the `k` level carries a dependency and stays local, while
/// the `i` level distributes over the PEs.
pub const MATMUL: &str = r#"
def main(n) {
    a = matrix(n, n);
    b = matrix(n, n);
    for i = 0 to n - 1 {
        for j = 0 to n - 1 {
            a[i, j] = (i + 2 * j) * 0.25;
            b[i, j] = (i - j) * 0.5;
        }
    }
    partial = tensor(n, n, n + 1);
    c = matrix(n, n);
    for i = 0 to n - 1 {
        for j = 0 to n - 1 {
            partial[i, j, 0] = 0.0;
            for k = 0 to n - 1 {
                partial[i, j, k + 1] = partial[i, j, k] + a[i, k] * b[k, j];
            }
            c[i, j] = partial[i, j, n];
        }
    }
    return c;
}
"#;

/// One Jacobi-style relaxation step of a 2-D five-point stencil: `next`
/// averages the four neighbours of `grid`. Fully parallel, neighbour reads
/// cross PE boundaries at segment edges.
pub const STENCIL: &str = r#"
def main(n) {
    grid = matrix(n, n);
    for i = 0 to n - 1 {
        for j = 0 to n - 1 {
            grid[i, j] = if i == 0 or j == 0 or i == n - 1 or j == n - 1
                         then 100.0 else 0.0;
        }
    }
    next = matrix(n, n);
    for i = 1 to n - 2 {
        for j = 1 to n - 2 {
            next[i, j] = (grid[i - 1, j] + grid[i + 1, j]
                        + grid[i, j - 1] + grid[i, j + 1]) * 0.25;
        }
    }
    for i = 1 to n - 2 {
        next[i, 0] = grid[i, 0];
        next[i, n - 1] = grid[i, n - 1];
    }
    for j = 0 to n - 1 {
        edge_rows(grid, next, j, n);
    }
    return next;
}
def edge_rows(grid, next, j, n) {
    next[0, j] = grid[0, j];
    next[n - 1, j] = grid[n - 1, j];
    return 0;
}
"#;

/// A first-order linear recurrence (prefix computation). The single loop
/// carries a dependency, so PODS keeps it centralized — used by tests and
/// the ablation benchmarks.
pub const RECURRENCE: &str = r#"
def main(n) {
    src = array(n);
    for i = 0 to n - 1 { src[i] = i * 0.5 + 1.0; }
    acc = array(n);
    acc[0] = src[0];
    for i = 1 to n - 1 {
        acc[i] = acc[i - 1] * 0.99 + src[i];
    }
    return acc;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use pods_idlang::compile;

    #[test]
    fn all_workloads_compile() {
        for (name, src) in [
            ("paper", PAPER_EXAMPLE),
            ("fill", FILL),
            ("matmul", MATMUL),
            ("stencil", STENCIL),
            ("recurrence", RECURRENCE),
            ("simple", simple::SIMPLE),
        ] {
            compile(src).unwrap_or_else(|e| panic!("workload `{name}` failed to compile: {e}"));
        }
    }

    #[test]
    fn paper_example_has_one_loop_nest_of_depth_two() {
        let hir = compile(PAPER_EXAMPLE).unwrap();
        let loops = pods_dataflow::analyze_loops(&hir);
        assert_eq!(loops.len(), 2);
        assert!(loops.iter().all(|l| !l.has_lcd));
    }

    #[test]
    fn matmul_reduction_is_carried_and_outer_loop_is_parallel() {
        let hir = compile(MATMUL).unwrap();
        let loops = pods_dataflow::analyze_loops(&hir);
        // init(i, j) and compute(i, j, k).
        assert_eq!(loops.len(), 5);
        let compute_outer = &loops[2];
        assert_eq!(compute_outer.var, "i");
        assert!(!compute_outer.has_lcd);
        assert!(compute_outer.is_distributable());
    }

    #[test]
    fn recurrence_loop_is_detected_as_carried() {
        let hir = compile(RECURRENCE).unwrap();
        let loops = pods_dataflow::analyze_loops(&hir);
        assert_eq!(loops.len(), 2);
        assert!(!loops[0].has_lcd, "the fill loop is parallel");
        assert!(loops[1].has_lcd, "the prefix loop carries a dependency");
    }
}
