//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate provides the small subset of the proptest API the workspace's
//! property tests use: the `proptest!` macro over functions whose arguments
//! are drawn from range / vector / string strategies, plus `prop_assert!`
//! and `prop_assert_eq!`. Instead of proptest's shrinking test runner, each
//! property is checked against a fixed number of cases drawn from a
//! deterministic per-test RNG (seeded from the test name), so failures are
//! reproducible across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The deterministic test runner: RNG and case-count configuration.
pub mod test_runner {
    /// Number of random cases generated per property.
    pub const NUM_CASES: usize = 48;

    /// A small deterministic xorshift64* RNG.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test name (stable across runs).
        pub fn from_name(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: seed | 1 }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values for one property argument.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            })*
        };
    }
    int_range_strategy!(usize, u64, u32, i64, i32);

    /// String literals act as regex strategies in proptest; the shim ignores
    /// the pattern and produces arbitrary short strings over a mixed
    /// alphabet, which is what the workspace's "never panics on arbitrary
    /// input" property needs.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            const ALPHABET: &[char] = &[
                'a', 'z', 'A', 'Z', '0', '9', ' ', '\n', '\t', '(', ')', '{', '}', '[', ']', '+',
                '-', '*', '/', '=', ';', ',', '.', '"', '\'', '#', '$', '%', '&', '!', '?', '<',
                '>', '|', '^', '~', '\\', '_', ':', '@', 'é', 'λ', '∀', '中', '🦀',
            ];
            let len = rng.below(40) as usize;
            (0..len)
                .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
                .collect()
        }
    }

    /// Strategy for vectors of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Vectors whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each function's arguments are drawn from the
/// given strategies for a fixed number of deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..$crate::test_runner::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..500 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..6).generate(&mut rng);
            assert!((-5..6).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let mut rng = TestRng::from_name("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(1usize..12, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| (1..12).contains(&x)));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let a: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("x");
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        /// The macro itself works end to end.
        #[test]
        fn macro_generates_cases(a in 0usize..10, b in 0usize..10) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
