//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment of this repository has no access to crates.io, so
//! this crate provides the small subset of the Criterion API the workspace's
//! benches use — `Criterion`, `Bencher`, `BenchmarkGroup`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — with
//! a simple wall-clock measurement loop instead of Criterion's statistical
//! machinery. Timings are printed in Criterion's familiar one-line format so
//! existing tooling that greps bench output keeps working.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Target measurement time per benchmark. Kept short: this shim exists to
/// produce indicative numbers offline, not publication-grade statistics.
/// Setting `PODS_BENCH_QUICK` (any value) shrinks it further, for CI smoke
/// runs that only need the benches to execute, not to measure well.
fn target() -> Duration {
    if std::env::var_os("PODS_BENCH_QUICK").is_some() {
        Duration::from_millis(25)
    } else {
        Duration::from_millis(300)
    }
}
/// Upper bound on timed iterations per benchmark.
const MAX_ITERS: u64 = 1000;

/// The measurement context handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean wall-clock time per iteration of the last `iter` call, in
    /// nanoseconds.
    pub mean_ns: f64,
}

impl Bencher {
    /// Times the closure: one warm-up call, then as many timed iterations as
    /// fit in the target measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed();
        let iters = if once.is_zero() {
            MAX_ITERS
        } else {
            (target().as_nanos() / once.as_nanos().max(1)).clamp(1, MAX_ITERS as u128) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn report(id: &str, mean_ns: f64) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "µs")
    } else {
        (mean_ns, "ns")
    };
    println!("{id:<40} time: [{value:.3} {unit}]");
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark named after a function name plus a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// A benchmark identified by its parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Runs one parameterised benchmark of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), b.mean_ns);
        self
    }

    /// Runs one unparameterised benchmark of the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), b.mean_ns);
        self
    }

    /// Ends the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(id, b.mean_ns);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("fill", 8).id, "fill/8");
        assert_eq!(BenchmarkId::from_parameter("cache_on").id, "cache_on");
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion;
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, &x| b.iter(|| x + 1));
        g.finish();
    }
}
