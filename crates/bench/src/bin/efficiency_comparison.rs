//! §5.3.4 of the paper: efficiency of the parallel system on a single PE
//! compared with a conventional sequential execution of the same program
//! (the paper measured 1.72 s for PODS vs 0.9 s for compiled C on a 32x32
//! conduction problem, i.e. roughly a factor of two).
//!
//! Both runs go through the engine layer: the parallel system is the
//! engine named by `PODS_ENGINE` (default: the machine simulator) on one
//! PE, the conventional baseline is the sequential oracle engine. The two
//! sides are always compared on the same clock: modelled iPSC/2 time when
//! the selected engine models one, host wall-clock otherwise (the native
//! engine has no modelled clock, so comparing it against the oracle's
//! modelled 1988 microseconds would be meaningless).

use pods::{report, RunOptions, Value};

fn main() {
    let n: i64 = 32;
    let engine = pods_bench::engine_kind();
    let program = pods_bench::compile_simple();
    let outcome = program
        .run_on(engine.name(), &[Value::Int(n)], &RunOptions::with_pes(1))
        .expect("PODS single-PE run");

    let seq = program
        .run_on("seq", &[Value::Int(n)], &RunOptions::default())
        .expect("sequential baseline");

    let (clock, parallel_us, baseline_us) = match outcome.modelled_us {
        Some(us) => ("modelled time", us, seq.elapsed_us()),
        None => ("host wall-clock", outcome.wall_us, seq.wall_us),
    };

    println!("Efficiency comparison (SIMPLE {n}x{n}, one time step, engine {engine}, {clock})");
    println!(
        "{}",
        report::efficiency_comparison(
            &format!("PODS ({engine}) on 1 PE"),
            parallel_us,
            "sequential (conventional) baseline",
            baseline_us,
        )
    );
    println!();
    println!("paper: 1.72 s vs 0.9 s (~1.9x) for the 32x32 conduction problem;");
    println!("the parallel system should be within a small factor of the sequential code.");
}
