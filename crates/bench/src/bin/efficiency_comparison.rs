//! §5.3.4 of the paper: efficiency of the parallel system on a single PE
//! compared with a conventional sequential execution of the same program
//! (the paper measured 1.72 s for PODS vs 0.9 s for compiled C on a 32x32
//! conduction problem, i.e. roughly a factor of two).

use pods::{report, RunOptions, Value};
use pods_baseline::run_sequential;
use pods_machine::TimingModel;

fn main() {
    let n: i64 = 32;
    let program = pods_bench::compile_simple();
    let outcome = program
        .run(&[Value::Int(n)], &RunOptions::with_pes(1))
        .expect("PODS single-PE run");

    let hir = pods_idlang::compile(pods_workloads::simple::SIMPLE).expect("compile");
    let seq = run_sequential(&hir, &[Value::Int(n)], &TimingModel::default())
        .expect("sequential baseline");

    println!("Efficiency comparison (SIMPLE {n}x{n}, one time step)");
    println!(
        "{}",
        report::efficiency_comparison(
            "PODS on 1 PE",
            outcome.elapsed_us(),
            "sequential (conventional) baseline",
            seq.elapsed_us,
        )
    );
    println!();
    println!("paper: 1.72 s vs 0.9 s (~1.9x) for the 32x32 conduction problem;");
    println!("the parallel system should be within a small factor of the sequential code.");
}
