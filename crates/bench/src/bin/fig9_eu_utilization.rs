//! Figure 9 of the paper: Execution-Unit utilization for SIMPLE at 16x16,
//! 32x32, and 64x64 as the number of PEs grows.

use pods::Unit;

fn main() {
    let program = pods_bench::compile_simple();
    let sizes = pods_bench::mesh_sizes();
    let pes = pods_bench::pe_counts();
    println!("Figure 9: Execution-Unit utilization for SIMPLE");
    print!("{:>5}", "PEs");
    for n in &sizes {
        print!(" | {:>9}", format!("{n}x{n}"));
    }
    println!();
    let mut rows = vec![vec![0.0f64; sizes.len()]; pes.len()];
    for (col, &n) in sizes.iter().enumerate() {
        for (row, &p) in pes.iter().enumerate() {
            let outcome = pods_bench::run_simple(&program, n, p);
            rows[row][col] = outcome.result.stats.utilization(Unit::Execution);
        }
    }
    for (row, &p) in pes.iter().enumerate() {
        print!("{p:>5}");
        for util in &rows[row] {
            print!(" | {:>8.1}%", util * 100.0);
        }
        println!();
    }
    println!();
    println!("paper shape: utilization falls as PEs are added and rises with the problem size.");
}
