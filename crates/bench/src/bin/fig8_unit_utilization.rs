//! Figure 8 of the paper: average utilization of each functional unit
//! (EU, MU, MM, AM, RU) for SIMPLE 16x16 as the number of PEs grows.

use pods::report;

fn main() {
    let program = pods_bench::compile_simple();
    let n = 16;
    println!("Figure 8: functional-unit utilization, SIMPLE {n}x{n}");
    println!("{}", report::utilization_header());
    for pes in pods_bench::pe_counts() {
        let outcome = pods_bench::run_simple(&program, n, pes);
        println!("{}", report::utilization_row(pes, &outcome.result.stats));
    }
    println!();
    println!("paper shape: the Execution Unit dominates every other unit at all machine sizes,");
    println!("so no specialised hardware support is needed for the supporting units.");
}
