//! Figure 10 of the paper: speed-up of SIMPLE versus the number of PEs for
//! the three mesh sizes, with the Pingali & Rogers static-compilation
//! comparator for the 64x64 mesh and the linear-speedup reference.

use pods::{report, RunOptions, Value};
use pods_baseline::{run_sequential, PrModel};
use pods_machine::TimingModel;

fn main() {
    let program = pods_bench::compile_simple();
    let pes = pods_bench::pe_counts();
    let sizes = pods_bench::mesh_sizes();
    // PODS_ENGINE=native reports real hardware-thread speed-up through the
    // same sweep code path; the default reports simulated-PE speed-up.
    let engine = pods_bench::engine_kind();

    for &n in &sizes {
        let points = pods::speedup_sweep_on(
            engine.name(),
            &program,
            &[Value::Int(n as i64)],
            &pes,
            &RunOptions::default(),
        )
        .expect("sweep");
        println!(
            "{}",
            report::speedup_table(&format!("SIMPLE {n}x{n} (PODS, engine {engine})"), &points)
        );
    }

    // The P&R comparator on the largest mesh, derived from the sequential
    // profile of the same program (see pods-baseline::PrModel).
    if let Some(&n) = sizes.last() {
        let hir = pods_idlang::compile(pods_workloads::simple::SIMPLE).expect("compile");
        let seq = run_sequential(&hir, &[Value::Int(n as i64)], &TimingModel::default())
            .expect("sequential profile");
        let model = PrModel::default();
        println!("SIMPLE {n}x{n} (Pingali & Rogers static-compilation model)");
        println!("{:>4} | {:>14} | {:>8}", "PEs", "elapsed (ms)", "speedup");
        for p in model.sweep(&seq, &pes) {
            println!(
                "{:>4} | {:>14.3} | {:>8.2}",
                p.pes,
                p.elapsed_us / 1000.0,
                p.speedup
            );
        }
        println!();
    }

    println!("linear reference: speedup = number of PEs");
    println!("paper reference points at 32 PEs: 16x16 = 8.1, 32x32 = 12.4, 64x64 = 18.9 (PODS)");
}
