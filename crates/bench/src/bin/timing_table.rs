//! Reprints the iPSC/2 instruction-timing table of §5.1 as configured in the
//! simulator (an input table, reproduced for completeness).

use pods::TimingModel;

fn main() {
    let t = TimingModel::default();
    println!("iPSC/2 instruction execution times used by the simulator (microseconds)");
    println!("{:<34} {:>10}", "operation", "time");
    let rows: Vec<(&str, f64)> = vec![
        ("integer add / subtract / compare", t.int_alu),
        ("bitwise / logical", t.logical),
        ("integer multiply / divide (est.)", t.int_mul),
        ("floating point negate", t.float_neg),
        ("floating point compare", t.float_cmp),
        ("floating point power", t.float_pow),
        ("floating point abs", t.float_abs),
        ("floating point square root", t.float_sqrt),
        ("floating point multiply", t.float_mul),
        ("floating point division", t.float_div),
        ("floating point addition", t.float_add),
        ("floating point subtraction", t.float_sub),
        ("transcendental (est.)", t.float_transcendental),
        ("fast context switch", t.context_switch),
        ("local array read (EU)", t.local_array_access),
        ("matching unit per token", t.matching_unit),
        ("memory manager list op", t.memory_manager_op),
        ("batched token routing", t.token_route),
        ("short message (<=100 B)", t.small_message),
        ("network hop (x2.5)", t.network_hop),
        ("array allocation (AM)", t.array_allocate),
    ];
    for (name, us) in rows {
        println!("{name:<34} {us:>10.3}");
    }
}
