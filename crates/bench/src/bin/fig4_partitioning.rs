//! Figure 4 / Figure 6 of the paper: page partitioning of a 6 x 256 array
//! over 4 PEs and the index-space ownership under the first-element rule.

use pods_istructure::{ArrayHeader, ArrayId, ArrayShape, Partitioning, PeId};

fn main() {
    let shape = ArrayShape::matrix(6, 256);
    let part = Partitioning::new(shape.len(), 32, 4);
    let header = ArrayHeader::new(ArrayId(0), "a", shape, part);

    println!("Figure 4: 6 x 256 array, 32-element pages, 4 PEs");
    println!(
        "{:>4} | {:>12} | {:>16} | {:>14}",
        "PE", "pages", "elements", "touched rows"
    );
    for pe in 0..4 {
        let seg = header.partitioning().segment_of(PeId(pe));
        println!(
            "{:>4} | {:>5}..{:<5} | {:>7}..{:<7} | {}",
            pe + 1,
            seg.page_range().start,
            seg.page_range().end,
            seg.element_range().start,
            seg.element_range().end,
            header.touched_rows(PeId(pe)),
        );
    }
    println!();
    println!("Figure 6: index-space ownership (first-element rule)");
    println!("{:>4} | {:>14}", "PE", "owned rows");
    for pe in 0..4 {
        println!("{:>4} | {}", pe + 1, header.owned_rows(PeId(pe)));
    }
    println!();
    println!("paper: PE1 computes rows 0-1, PE2 row 2, PE3 rows 3-4, PE4 row 5");
}
