//! Shared helpers for the figure-regeneration binaries and Criterion
//! benchmarks of the PODS reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation section; see `DESIGN.md` for the experiment index and
//! `EXPERIMENTS.md` for recorded paper-vs-measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pods::{CompiledProgram, EngineKind, EngineOutcome, RunOptions, Value};

/// Mesh sizes used by the SIMPLE experiments. Honours the
/// `PODS_MESH_SIZES` environment variable (comma-separated) so slow machines
/// can run reduced sweeps, and defaults to the paper's 16/32/64.
pub fn mesh_sizes() -> Vec<usize> {
    match std::env::var("PODS_MESH_SIZES") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&n: &usize| n >= 4)
            .collect(),
        Err(_) => pods_workloads::simple::PAPER_MESH_SIZES.to_vec(),
    }
}

/// PE counts used by the sweeps (the paper's 1, 2, 4, 8, 16, 32).
pub fn pe_counts() -> Vec<usize> {
    match std::env::var("PODS_PE_COUNTS") {
        Ok(s) => s
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .filter(|&n: &usize| n >= 1)
            .collect(),
        Err(_) => pods_workloads::simple::PAPER_PE_COUNTS.to_vec(),
    }
}

/// Compiles the SIMPLE benchmark once.
///
/// # Panics
///
/// Panics if the bundled source fails to compile (a build-time invariant).
pub fn compile_simple() -> CompiledProgram {
    pods::compile(pods_workloads::simple::SIMPLE).expect("SIMPLE compiles")
}

/// Runs SIMPLE on the given mesh size and PE count with paper-default
/// options.
///
/// # Panics
///
/// Panics if the simulation fails; the harness treats that as a fatal
/// reproduction error.
pub fn run_simple(program: &CompiledProgram, n: usize, pes: usize) -> pods::RunOutcome {
    program
        .run(&[Value::Int(n as i64)], &RunOptions::with_pes(pes))
        .unwrap_or_else(|e| panic!("SIMPLE {n}x{n} on {pes} PEs failed: {e}"))
}

/// The engine the harness binaries should use, from the `PODS_ENGINE`
/// environment variable (default: the machine simulator). This lets every
/// figure binary re-run its experiment on the native thread-pool engine
/// (`PODS_ENGINE=native`) without code changes.
///
/// Parsing is centralised in [`pods::EngineKind::from_env`]; an unknown
/// value aborts loudly instead of silently falling back to the simulator.
///
/// # Panics
///
/// Panics when `PODS_ENGINE` is set to a name no engine answers to.
pub fn engine_kind() -> EngineKind {
    EngineKind::from_env().unwrap_or_else(|e| panic!("{e}"))
}

/// Runs SIMPLE on the named engine.
///
/// # Panics
///
/// Panics if the run fails; the harness treats that as a fatal reproduction
/// error.
pub fn run_simple_on(
    engine: &str,
    program: &CompiledProgram,
    n: usize,
    pes: usize,
) -> EngineOutcome {
    program
        .run_on(engine, &[Value::Int(n as i64)], &RunOptions::with_pes(pes))
        .unwrap_or_else(|e| panic!("SIMPLE {n}x{n} on {pes} PEs (engine {engine}) failed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        // The environment is not set during tests, so the defaults apply.
        if std::env::var("PODS_MESH_SIZES").is_err() {
            assert_eq!(mesh_sizes(), vec![16, 32, 64]);
        }
        if std::env::var("PODS_PE_COUNTS").is_err() {
            assert_eq!(pe_counts(), vec![1, 2, 4, 8, 16, 32]);
        }
    }

    #[test]
    fn simple_compiles_and_runs_small() {
        let program = compile_simple();
        let outcome = run_simple(&program, 8, 2);
        assert!(outcome.result.array("s").unwrap().is_complete());
    }

    #[test]
    fn engine_selection_defaults_to_the_simulator() {
        if std::env::var("PODS_ENGINE").is_err() {
            assert_eq!(engine_kind(), EngineKind::Sim);
        }
        let program = compile_simple();
        let outcome = run_simple_on("native", &program, 8, 2);
        assert!(outcome.array("s").unwrap().is_complete());
    }
}
