//! Engine comparison: SimEngine vs NativeParallelEngine wall-clock on the
//! FILL and SIMPLE workloads at 1/2/4/8 workers, through the shared
//! `Engine` trait — plus the `runtime_reuse` group, which measures the
//! amortisation win of a persistent `pods::Runtime` (one warm worker pool
//! across N back-to-back runs) over N cold `run_on` calls (a fresh pool
//! spawned and joined per run).
//!
//! Besides the Criterion timings, the bench writes a machine-readable
//! snapshot to `BENCH_engines.json` at the repository root (override with
//! the `PODS_BENCH_OUT` environment variable): per-configuration mean
//! wall-clock microseconds (reused from the shim's measurement loop) plus
//! the host parallelism, so runs on different
//! machines can be compared honestly. Note that the *sim* engine's
//! wall-clock is the cost of simulating N PEs (it grows with N), while the
//! *native* engine's wall-clock is real execution on N threads (it shrinks
//! with N up to the host's core count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pods::{EngineKind, RunOptions, Runtime, Value};

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ENGINES: [&str; 2] = ["sim", "native"];

fn bench_engines(c: &mut Criterion) {
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut rows = String::new();

    for (workload, source, n) in [
        ("fill", pods_workloads::FILL, 64i64),
        ("simple", pods_workloads::simple::SIMPLE, 16i64),
    ] {
        let program = pods::compile(source).expect("workload compiles");
        let mut group = c.benchmark_group(format!("{workload}_{n}"));
        for engine in ENGINES {
            for workers in WORKER_COUNTS {
                // The offline criterion shim exposes the measured mean, so
                // the snapshot reuses the bench measurement instead of
                // timing every configuration a second time.
                let mut mean_us = 0.0;
                group.bench_with_input(
                    BenchmarkId::new(engine, workers),
                    &workers,
                    |b, &workers| {
                        b.iter(|| {
                            program
                                .run_on(engine, &[Value::Int(n)], &RunOptions::with_pes(workers))
                                .expect("bench run")
                        });
                        mean_us = b.mean_ns / 1e3;
                    },
                );
                if !rows.is_empty() {
                    rows.push_str(",\n");
                }
                rows.push_str(&format!(
                    "    {{\"workload\": \"{workload}\", \"n\": {n}, \"engine\": \"{engine}\", \
                     \"workers\": {workers}, \"mean_wall_us\": {mean_us:.1}}}"
                ));
            }
        }
        group.finish();
    }

    // runtime_reuse: N back-to-back native runs of one workload, warm
    // (one persistent Runtime, pool reused) vs cold (one run_on call per
    // run, each spawning and joining its own pool). Reported per run so
    // the numbers are comparable with the engine points above.
    const REUSE_RUNS: usize = 8;
    let reuse_workers = host_parallelism.clamp(2, 4);
    let (workload, n) = ("fill", 48i64);
    let program = pods::compile(pods_workloads::FILL).expect("workload compiles");
    let mut group = c.benchmark_group(format!("runtime_reuse_{workload}_{n}"));
    for mode in ["warm-runtime", "cold-run_on"] {
        let mut mean_us = 0.0;
        group.bench_with_input(
            BenchmarkId::new(mode, reuse_workers),
            &reuse_workers,
            |b, &workers| {
                match mode {
                    "warm-runtime" => {
                        let runtime = Runtime::builder(EngineKind::Native)
                            .workers(workers)
                            .build();
                        b.iter(|| {
                            for _ in 0..REUSE_RUNS {
                                runtime.run(&program, &[Value::Int(n)]).expect("bench run");
                            }
                        });
                    }
                    _ => {
                        let opts = RunOptions::with_pes(workers);
                        b.iter(|| {
                            for _ in 0..REUSE_RUNS {
                                program
                                    .run_on("native", &[Value::Int(n)], &opts)
                                    .expect("bench run");
                            }
                        });
                    }
                }
                mean_us = b.mean_ns / 1e3 / REUSE_RUNS as f64;
            },
        );
        rows.push_str(&format!(
            ",\n    {{\"workload\": \"{workload}\", \"n\": {n}, \"engine\": \"{mode}\", \
             \"workers\": {reuse_workers}, \"mean_wall_us\": {mean_us:.1}}}"
        ));
    }
    group.finish();

    let out = format!(
        "{{\n  \"bench\": \"engines\",\n  \"host_parallelism\": {host_parallelism},\n  \
         \"points\": [\n{rows}\n  ]\n}}\n"
    );
    let path = std::env::var("PODS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_engines.json", env!("CARGO_MANIFEST_DIR")));
    match std::fs::write(&path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
