//! Engine comparison: SimEngine vs NativeParallelEngine wall-clock on the
//! FILL and SIMPLE workloads at 1/2/4/8 workers, through the shared
//! `Engine` trait — plus three warm-path groups:
//!
//! * `runtime_reuse` — a persistent `pods::Runtime` (one warm worker pool
//!   across N back-to-back runs) vs N cold `run_on` calls (a fresh pool
//!   spawned and joined per run);
//! * `prepared_reuse` — warm runs submitting a `PreparedProgram` handle
//!   (clone/partition/read-slot tables amortised to one `prepare`) vs warm
//!   runs on a cache-disabled runtime that re-prepares every submission
//!   (the pre-cache warm path);
//! * `delivery_batch` — warm runs with batched wake-up delivery (16
//!   wake-ups per scheduler transaction) vs unbatched (one transaction per
//!   wake-up) on a read-heavy gather, with the per-job wake-up/flush
//!   counters recorded alongside the timings (the lock-traffic reduction is
//!   core-count-independent, unlike the wall-clock);
//! * `async_vs_native` — the two pooled schedulers head to head on a
//!   suspension-heavy gather and a carried recurrence: parked-instance
//!   scheduling (native) vs futures-style task suspension (async), with
//!   each run's suspension/resumption/steal counters recorded so the
//!   scheduling overhead the paper's evaluation is about is visible even
//!   where a single-core host hides the wall-clock difference;
//! * `grain_size` — warm native runs of fill and gather at small sizes
//!   (n = 8 .. 64) sweeping the chunk grain (1, 2, 8, auto): the
//!   per-instance spawn/park overhead that grain-1 execution pays per
//!   inner iteration is paid once per chunk instead, with the measured
//!   instance counts recorded next to the wall-clock. Gather's producer
//!   loop has no eligible chunk site, so it doubles as the no-regression
//!   control;
//! * `specialization` — warm prepared runs with the prepare-time
//!   specialization pass on vs off (super-op dispatch vs the plain
//!   interpreter) on a compute-dense polynomial fill plus fill, gather,
//!   and recurrence, with the cold-prepare cost (which includes building
//!   the plans) and per-run super-op counts recorded alongside the
//!   wall-clock.
//!
//! Setting `PODS_CHUNK` (a grain size or `auto`) applies that chunk
//! policy to every non-grain group, so a CI smoke run can execute the
//! whole bench under a chunked configuration.
//!
//! Setting `PODS_BENCH_TRACE` (truthy) additionally re-runs the fill
//! workload on a traced runtime after the measurements and writes the
//! flight recorder's Chrome-trace export to `trace.json` next to the
//! snapshot — load it in `chrome://tracing` or Perfetto to see where a
//! bench run's time goes. The traced run is separate from the measured
//! configurations, so the numbers are never polluted by the recorder.
//!
//! Besides the Criterion timings, the bench writes a machine-readable
//! snapshot to `BENCH_engines.json` at the repository root (override with
//! the `PODS_BENCH_OUT` environment variable): per-configuration mean
//! wall-clock microseconds (reused from the shim's measurement loop) plus
//! the host parallelism, so runs on different
//! machines can be compared honestly. Note that the *sim* engine's
//! wall-clock is the cost of simulating N PEs (it grows with N), while the
//! *native* engine's wall-clock is real execution on N threads (it shrinks
//! with N up to the host's core count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pods::{ChunkPolicy, EngineKind, EngineStats, RunOptions, Runtime, Value};

/// A read-heavy gather with `k` split-phase probe calls: every probe
/// instance parks on an unwritten element, then the producer loop's writes
/// wake all of them from one task — the paper's token-routing-batch
/// scenario rendered as a workload. The sum is right-nested so no add needs
/// a return value until every probe is in flight (an intermediate
/// assignment would serialise the calls).
fn gather_source(k: usize) -> String {
    let mut expr = format!("probe(a, {})", k - 1);
    for i in (0..k - 1).rev() {
        expr = format!("probe(a, {i}) + ({expr})");
    }
    format!(
        "def main(n) {{\n    a = array(n);\n    for i = 0 to n - 1 {{ a[i] = i * 3; }}\n    \
         return {expr};\n}}\ndef probe(a, i) {{ return a[i] + 1; }}\n"
    )
}

/// A compute-dense fill: every element evaluates a degree-6 polynomial by
/// Horner's rule — a straight line of ~12 fusible ALU instructions per
/// store, whose only external inputs are the loop variable and the array
/// ref. This is the shape prepare-time specialization targets: the body
/// collapses into super-ops, so the warm path pays one firing check and
/// zero `Instr` matches where the interpreter pays ~13 of each.
fn poly_source() -> String {
    "def main(n) {
        a = array(n);
        for i = 0 to n - 1 {
            a[i] = (((((i * 3 + 1) * i + 7) * i + 11) * i + 13) * i + 17) * i + 19;
        }
        return a;
    }"
    .to_string()
}

/// A fine-grained fill: `n` rows of just two elements, so each spawned
/// row instance does almost no work and the per-instance overhead (spawn,
/// frame, scheduling) dominates at grain 1 — the scenario the chunk
/// transform exists for. The square `pods_workloads::FILL` hides the
/// effect behind its `n`-iteration row bodies.
fn fine_fill_source() -> String {
    "def main(n) {
        a = matrix(n, 2);
        for i = 0 to n - 1 { for j = 0 to 1 { a[i, j] = i * 3 + j; } }
        return a;
    }"
    .to_string()
}

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const ENGINES: [&str; 2] = ["sim", "native"];

fn bench_engines(c: &mut Criterion) {
    let host_parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    // PODS_CHUNK sweeps every non-grain group under one chunk policy (the
    // grain_size group below sweeps grains itself and ignores this).
    let env_chunk: ChunkPolicy = std::env::var("PODS_CHUNK")
        .map(|s| s.parse().expect("PODS_CHUNK"))
        .unwrap_or(ChunkPolicy::Fixed(1));
    let mut rows = String::new();

    for (workload, source, n) in [
        ("fill", pods_workloads::FILL, 64i64),
        ("simple", pods_workloads::simple::SIMPLE, 16i64),
    ] {
        let program = pods::compile(source).expect("workload compiles");
        let mut group = c.benchmark_group(format!("{workload}_{n}"));
        for engine in ENGINES {
            for workers in WORKER_COUNTS {
                // The offline criterion shim exposes the measured mean, so
                // the snapshot reuses the bench measurement instead of
                // timing every configuration a second time.
                let mut mean_us = 0.0;
                group.bench_with_input(
                    BenchmarkId::new(engine, workers),
                    &workers,
                    |b, &workers| {
                        let mut opts = RunOptions::with_pes(workers);
                        opts.partition.chunk = env_chunk;
                        b.iter(|| {
                            program
                                .run_on(engine, &[Value::Int(n)], &opts)
                                .expect("bench run")
                        });
                        mean_us = b.mean_ns / 1e3;
                    },
                );
                if !rows.is_empty() {
                    rows.push_str(",\n");
                }
                rows.push_str(&format!(
                    "    {{\"workload\": \"{workload}\", \"n\": {n}, \"engine\": \"{engine}\", \
                     \"workers\": {workers}, \"mean_wall_us\": {mean_us:.1}}}"
                ));
            }
        }
        group.finish();
    }

    // runtime_reuse: N back-to-back native runs of one workload, warm
    // (one persistent Runtime, pool reused) vs cold (one run_on call per
    // run, each spawning and joining its own pool). Reported per run so
    // the numbers are comparable with the engine points above.
    const REUSE_RUNS: usize = 8;
    let reuse_workers = host_parallelism.clamp(2, 4);
    let (workload, n) = ("fill", 48i64);
    let program = pods::compile(pods_workloads::FILL).expect("workload compiles");
    let mut group = c.benchmark_group(format!("runtime_reuse_{workload}_{n}"));
    for mode in ["warm-runtime", "cold-run_on"] {
        let mut mean_us = 0.0;
        group.bench_with_input(
            BenchmarkId::new(mode, reuse_workers),
            &reuse_workers,
            |b, &workers| {
                match mode {
                    "warm-runtime" => {
                        let runtime = Runtime::builder(EngineKind::Native)
                            .workers(workers)
                            .chunk_policy(env_chunk)
                            .build();
                        b.iter(|| {
                            for _ in 0..REUSE_RUNS {
                                runtime.run(&program, &[Value::Int(n)]).expect("bench run");
                            }
                        });
                    }
                    _ => {
                        let mut opts = RunOptions::with_pes(workers);
                        opts.partition.chunk = env_chunk;
                        b.iter(|| {
                            for _ in 0..REUSE_RUNS {
                                program
                                    .run_on("native", &[Value::Int(n)], &opts)
                                    .expect("bench run");
                            }
                        });
                    }
                }
                mean_us = b.mean_ns / 1e3 / REUSE_RUNS as f64;
            },
        );
        rows.push_str(&format!(
            ",\n    {{\"workload\": \"{workload}\", \"n\": {n}, \"engine\": \"{mode}\", \
             \"workers\": {reuse_workers}, \"mean_wall_us\": {mean_us:.1}}}"
        ));
    }
    group.finish();

    // prepared_reuse: N warm runs per iteration on one persistent runtime,
    // submitting a PreparedProgram handle (setup amortised to one
    // `prepare`) vs a cache-disabled runtime that re-clones, re-partitions,
    // and rebuilds read-slot tables on every submission — the warm path as
    // it was before the prepared-program cache. Small problem sizes keep
    // per-run setup visible next to execution, mirroring fine-grained
    // iterative jobs.
    const PREP_RUNS: usize = 8;
    for (workload, source, n) in [
        ("fill", pods_workloads::FILL, 8i64),
        ("simple", pods_workloads::simple::SIMPLE, 4),
    ] {
        let program = pods::compile(source).expect("workload compiles");
        let mut group = c.benchmark_group(format!("prepared_reuse_{workload}_{n}"));
        for mode in ["prepared-handle", "reprepare-every-run"] {
            let mut mean_us = 0.0;
            group.bench_with_input(
                BenchmarkId::new(mode, reuse_workers),
                &reuse_workers,
                |b, &workers| {
                    match mode {
                        "prepared-handle" => {
                            let runtime = Runtime::builder(EngineKind::Native)
                                .workers(workers)
                                .chunk_policy(env_chunk)
                                .build();
                            let prepared = runtime.prepare(&program);
                            b.iter(|| {
                                for _ in 0..PREP_RUNS {
                                    runtime.run(&prepared, &[Value::Int(n)]).expect("bench run");
                                }
                            });
                        }
                        _ => {
                            let runtime = Runtime::builder(EngineKind::Native)
                                .workers(workers)
                                .prepared_cache_capacity(0)
                                .chunk_policy(env_chunk)
                                .build();
                            b.iter(|| {
                                for _ in 0..PREP_RUNS {
                                    runtime.run(&program, &[Value::Int(n)]).expect("bench run");
                                }
                            });
                        }
                    }
                    mean_us = b.mean_ns / 1e3 / PREP_RUNS as f64;
                },
            );
            rows.push_str(&format!(
                ",\n    {{\"workload\": \"{workload}\", \"n\": {n}, \"engine\": \"{mode}\", \
                 \"workers\": {reuse_workers}, \"mean_wall_us\": {mean_us:.1}}}"
            ));
        }
        group.finish();
    }

    // delivery_batch: warm prepared runs of the read-heavy gather with
    // unbatched (1) vs batched (16) wake-up delivery. One worker keeps the
    // schedule deterministic (every probe defers before the producer runs).
    // Wall-clock is reported per run; the wake-up/flush counters from one
    // extra run are recorded too, because the scheduler-lock reduction they
    // show is independent of host core count and scheduler noise.
    {
        let (workload, n) = ("gather", 64i64);
        let batch_workers = 1usize;
        let program = pods::compile(&gather_source(n as usize)).expect("workload compiles");
        let mut group = c.benchmark_group(format!("delivery_batch_{workload}_{n}"));
        for batch in [1usize, 16] {
            let runtime = Runtime::builder(EngineKind::Native)
                .workers(batch_workers)
                .delivery_batch(batch)
                .chunk_policy(env_chunk)
                .build();
            let prepared = runtime.prepare(&program);
            let mut mean_us = 0.0;
            group.bench_with_input(
                BenchmarkId::new(format!("batch-{batch}"), batch_workers),
                &batch_workers,
                |b, _| {
                    b.iter(|| {
                        for _ in 0..PREP_RUNS {
                            runtime.run(&prepared, &[Value::Int(n)]).expect("bench run");
                        }
                    });
                    mean_us = b.mean_ns / 1e3 / PREP_RUNS as f64;
                },
            );
            let outcome = runtime.run(&prepared, &[Value::Int(n)]).expect("stats run");
            let EngineStats::Native { stats, .. } = outcome.stats else {
                panic!("native stats expected");
            };
            rows.push_str(&format!(
                ",\n    {{\"workload\": \"{workload}\", \"n\": {n}, \"engine\": \"batch-{batch}\", \
                 \"workers\": {batch_workers}, \"mean_wall_us\": {mean_us:.1}, \
                 \"wakeups\": {}, \"wakeup_flushes\": {}}}",
                stats.wakeups, stats.wakeup_flushes
            ));
        }
        group.finish();
    }

    // async_vs_native: same prepared warm path, two schedulers. The gather
    // workload is suspension-dominated (every probe defers once); the
    // recurrence chains suspensions serially. Suspension/resumption/steal
    // counters come from one extra run per configuration — they are
    // deterministic on one worker and nearly so on several, and unlike the
    // wall-clock they do not need a multi-core host to be meaningful.
    for (workload, source, n) in [
        ("gather", gather_source(64), 64i64),
        ("recurrence", pods_workloads::RECURRENCE.to_string(), 96),
    ] {
        let program = pods::compile(&source).expect("workload compiles");
        let mut group = c.benchmark_group(format!("async_vs_native_{workload}_{n}"));
        for kind in [EngineKind::Native, EngineKind::AsyncCoop] {
            let runtime = Runtime::builder(kind)
                .workers(reuse_workers)
                .chunk_policy(env_chunk)
                .build();
            let prepared = runtime.prepare(&program);
            let mut mean_us = 0.0;
            group.bench_with_input(
                BenchmarkId::new(kind.name(), reuse_workers),
                &reuse_workers,
                |b, _| {
                    b.iter(|| {
                        for _ in 0..PREP_RUNS {
                            runtime.run(&prepared, &[Value::Int(n)]).expect("bench run");
                        }
                    });
                    mean_us = b.mean_ns / 1e3 / PREP_RUNS as f64;
                },
            );
            let outcome = runtime.run(&prepared, &[Value::Int(n)]).expect("stats run");
            // Uniform counter extraction: for the native scheduler a
            // "suspension" is a park and every completed run resumes each
            // parked instance exactly once.
            let (suspensions, resumptions, steals) = match outcome.stats {
                EngineStats::Native { stats, .. } => (stats.parks, stats.parks, stats.steals),
                EngineStats::AsyncCoop { stats, .. } => {
                    (stats.suspensions, stats.resumptions, stats.steals)
                }
                other => panic!("pooled stats expected, got {other:?}"),
            };
            rows.push_str(&format!(
                ",\n    {{\"workload\": \"{workload}\", \"n\": {n}, \"engine\": \"{}\", \
                 \"workers\": {reuse_workers}, \"mean_wall_us\": {mean_us:.1}, \
                 \"suspensions\": {suspensions}, \"resumptions\": {resumptions}, \
                 \"steals\": {steals}}}",
                kind.name()
            ));
        }
        group.finish();
    }

    // grain_size: warm raw runs (the cached preparation is what auto-tuning
    // refines, so warm re-runs under `auto` execute at the tuned grain) of
    // fill and gather at small sizes, sweeping the chunk grain. The win to
    // look for: at grain 1 every inner iteration pays one instance spawn
    // plus its parks; a chunk of c iterations pays that once. Gather's
    // producer loop has no eligible chunk site — it is the control showing
    // the transform costs nothing where it cannot apply. Instance counts
    // from one extra run are recorded next to the wall-clock because the
    // overhead reduction they show is core-count-independent.
    for (workload, source, n) in [
        ("fill", fine_fill_source(), 8i64),
        ("fill", fine_fill_source(), 64),
        ("gather", gather_source(8), 8),
        ("gather", gather_source(64), 64),
    ] {
        let program = pods::compile(&source).expect("workload compiles");
        let mut group = c.benchmark_group(format!("grain_size_{workload}_{n}"));
        for chunk in [
            ChunkPolicy::Fixed(1),
            ChunkPolicy::Fixed(2),
            ChunkPolicy::Fixed(8),
            ChunkPolicy::Auto,
        ] {
            let runtime = Runtime::builder(EngineKind::Native)
                .workers(reuse_workers)
                .chunk_policy(chunk)
                .build();
            // Warm the cache (and, under auto, let the retune settle)
            // before measuring.
            for _ in 0..4 {
                runtime.run(&program, &[Value::Int(n)]).expect("warm-up");
            }
            let mut mean_us = 0.0;
            group.bench_with_input(
                BenchmarkId::new(format!("chunk-{chunk}"), reuse_workers),
                &reuse_workers,
                |b, _| {
                    b.iter(|| {
                        for _ in 0..PREP_RUNS {
                            runtime.run(&program, &[Value::Int(n)]).expect("bench run");
                        }
                    });
                    mean_us = b.mean_ns / 1e3 / PREP_RUNS as f64;
                },
            );
            let outcome = runtime.run(&program, &[Value::Int(n)]).expect("stats run");
            let EngineStats::Native { stats, .. } = outcome.stats else {
                panic!("native stats expected");
            };
            rows.push_str(&format!(
                ",\n    {{\"group\": \"grain_size\", \"workload\": \"{workload}\", \"n\": {n}, \
                 \"engine\": \"native\", \"workers\": {reuse_workers}, \"chunk\": \"{chunk}\", \
                 \"mean_wall_us\": {mean_us:.1}, \"instances\": {}, \
                 \"iterations_per_instance\": {:.2}, \"chunks_autotuned\": {}}}",
                stats.instances_spawned(),
                stats.iterations_per_instance(),
                stats.chunks_autotuned
            ));
        }
        group.finish();
    }

    // service_admission: the job-service layer under load. Two questions:
    // what does a submission cost when it has to flow through the bounded
    // admission queue and the dispatcher thread (vs the pre-service direct
    // pool hand-off, which no longer exists — so the control is the same
    // path with an idle queue), and what does deficit-round-robin fairness
    // cost over single-lane FIFO dispatch. Each iteration submits a burst
    // of jobs and drains it; reported per job.
    {
        const BURST: usize = 32;
        let (workload, n) = ("fill", 16i64);
        let program = pods::compile(pods_workloads::FILL).expect("workload compiles");
        let mut group = c.benchmark_group(format!("service_admission_{workload}_{n}"));
        for mode in ["unbounded", "bounded-64", "fifo-1client", "fair-2clients"] {
            let mut builder = Runtime::builder(EngineKind::Native)
                .workers(reuse_workers)
                .chunk_policy(env_chunk);
            builder = match mode {
                // Admission cost at a bound the burst never trips vs none.
                "unbounded" => builder,
                "bounded-64" => builder.admission_capacity(64),
                // Dispatch cost through one saturated slot: one FIFO lane
                // vs two weighted lanes served deficit-round-robin.
                "fifo-1client" => builder.dispatch_window(1),
                _ => builder
                    .dispatch_window(1)
                    .client_weight(pods::ClientId(1), 2)
                    .client_weight(pods::ClientId(2), 1),
            };
            let runtime = builder.build();
            let prepared = runtime.prepare(&program);
            let mut mean_us = 0.0;
            group.bench_with_input(
                BenchmarkId::new(mode, reuse_workers),
                &reuse_workers,
                |b, _| {
                    b.iter(|| {
                        let handles: Vec<_> = (0..BURST)
                            .map(|i| {
                                if mode == "fair-2clients" {
                                    runtime
                                        .submit_for(
                                            pods::ClientId(1 + (i % 2) as u64),
                                            &prepared,
                                            &[Value::Int(n)],
                                        )
                                        .expect("bench submit")
                                } else {
                                    runtime
                                        .submit(&prepared, &[Value::Int(n)])
                                        .expect("bench submit")
                                }
                            })
                            .collect();
                        for handle in handles {
                            handle.wait().expect("bench job");
                        }
                    });
                    mean_us = b.mean_ns / 1e3 / BURST as f64;
                },
            );
            let m = runtime.metrics();
            rows.push_str(&format!(
                ",\n    {{\"group\": \"service_admission\", \"workload\": \"{workload}\", \
                 \"n\": {n}, \"engine\": \"{mode}\", \"workers\": {reuse_workers}, \
                 \"mean_wall_us\": {mean_us:.1}, \"queue_depth_peak\": {}, \
                 \"p50_latency_us\": {:.1}, \"p99_latency_us\": {:.1}}}",
                m.queue_depth_peak, m.p50_latency_us, m.p99_latency_us
            ));
        }
        group.finish();
    }

    // tracing_overhead: the flight recorder's cost on the warm native path.
    // `off` is a runtime built without a recorder (the default); `on`
    // records every event into the bounded rings and drains them once per
    // iteration. The claim the group keeps honest: `off` is within noise of
    // the pre-recorder runtime (the hooks are one `Option` branch per
    // emission site), and even `on` stays cheap.
    {
        let (workload, n) = ("fill", 48i64);
        let program = pods::compile(pods_workloads::FILL).expect("workload compiles");
        let mut group = c.benchmark_group(format!("tracing_overhead_{workload}_{n}"));
        for mode in ["off", "on"] {
            let mut builder = Runtime::builder(EngineKind::Native)
                .workers(reuse_workers)
                .chunk_policy(env_chunk);
            if mode == "on" {
                builder = builder.trace(pods::TraceConfig::new());
            }
            let runtime = builder.build();
            let prepared = runtime.prepare(&program);
            let mut mean_us = 0.0;
            group.bench_with_input(
                BenchmarkId::new(mode, reuse_workers),
                &reuse_workers,
                |b, _| {
                    b.iter(|| {
                        for _ in 0..PREP_RUNS {
                            runtime.run(&prepared, &[Value::Int(n)]).expect("bench run");
                        }
                        // Drain so the rings never saturate into drop-oldest
                        // churn; an untraced runtime returns an empty trace.
                        runtime.take_trace();
                    });
                    mean_us = b.mean_ns / 1e3 / PREP_RUNS as f64;
                },
            );
            rows.push_str(&format!(
                ",\n    {{\"group\": \"tracing_overhead\", \"workload\": \"{workload}\", \
                 \"n\": {n}, \"engine\": \"trace-{mode}\", \"workers\": {reuse_workers}, \
                 \"mean_wall_us\": {mean_us:.1}}}"
            ));
        }
        group.finish();
    }

    // specialization: the prepare-time specialization pass A/B on the warm
    // native path. Poly is the showcase — a dozen fusible ALU ops per
    // element, so per-instruction dispatch (the thing super-ops remove)
    // dominates its runtime; fill's short store-heavy row bodies are
    // scheduling-bound and show a smaller win; the read-heavy gather is
    // split-phase-dominated (plans cover little, so it doubles as the
    // no-regression control); the carried recurrence sits between. The
    // cold `prepare` cost — which now includes building the plans — is
    // measured separately, and the super-op count from one extra run
    // shows how much of the warm path the plans actually covered.
    // Poly runs at a fixed grain of 16: chunked instances amortise the
    // per-instance spawn/park overhead, so what remains of its runtime is
    // instruction execution — the cost the pass removes. The other three
    // stay on the ambient policy (grain 1 unless PODS_CHUNK says
    // otherwise), measuring the pass under the default configuration.
    for (workload, source, n, chunk) in [
        ("poly", poly_source(), 256i64, ChunkPolicy::Fixed(16)),
        ("fill", pods_workloads::FILL.to_string(), 48, env_chunk),
        ("gather", gather_source(64), 64, env_chunk),
        (
            "recurrence",
            pods_workloads::RECURRENCE.to_string(),
            96,
            env_chunk,
        ),
    ] {
        let program = pods::compile(&source).expect("workload compiles");
        let mut group = c.benchmark_group(format!("specialization_{workload}_{n}"));
        for mode in ["interpreted", "specialized"] {
            let runtime = Runtime::builder(EngineKind::Native)
                .workers(reuse_workers)
                .chunk_policy(chunk)
                .specialize(mode == "specialized")
                .build();
            // Cold-prepare cost (clone + partition + read-slot tables, plus
            // the specialization pass when on), amortised over a few calls.
            const PREPARES: usize = 16;
            let prep_start = std::time::Instant::now();
            for _ in 0..PREPARES - 1 {
                std::hint::black_box(runtime.prepare(&program));
            }
            let prepared = runtime.prepare(&program);
            let prepare_us = prep_start.elapsed().as_secs_f64() * 1e6 / PREPARES as f64;
            let mut mean_us = 0.0;
            group.bench_with_input(
                BenchmarkId::new(mode, reuse_workers),
                &reuse_workers,
                |b, _| {
                    b.iter(|| {
                        for _ in 0..PREP_RUNS {
                            runtime.run(&prepared, &[Value::Int(n)]).expect("bench run");
                        }
                    });
                    mean_us = b.mean_ns / 1e3 / PREP_RUNS as f64;
                },
            );
            let outcome = runtime.run(&prepared, &[Value::Int(n)]).expect("stats run");
            let EngineStats::Native { stats, .. } = outcome.stats else {
                panic!("native stats expected");
            };
            rows.push_str(&format!(
                ",\n    {{\"group\": \"specialization\", \"workload\": \"{workload}\", \
                 \"n\": {n}, \"engine\": \"{mode}\", \"workers\": {reuse_workers}, \
                 \"mean_wall_us\": {mean_us:.1}, \"prepare_us\": {prepare_us:.1}, \
                 \"super_ops\": {}}}",
                stats.super_ops
            ));
        }
        group.finish();
    }

    let out = format!(
        "{{\n  \"bench\": \"engines\",\n  \"host_parallelism\": {host_parallelism},\n  \
         \"points\": [\n{rows}\n  ]\n}}\n"
    );
    let path = std::env::var("PODS_BENCH_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_engines.json", env!("CARGO_MANIFEST_DIR")));
    if let Err(e) = std::fs::write(&path, &out) {
        // A missing snapshot must fail the bench run loudly (CI consumes
        // the file), not scroll past as a stderr note.
        panic!("could not write bench snapshot {path}: {e}");
    }
    println!("wrote {path}");

    // PODS_BENCH_TRACE=1: re-run one traced workload and drop a Chrome
    // trace next to the snapshot, so a bench run can be inspected in
    // Perfetto without touching the measured configurations above.
    if std::env::var("PODS_BENCH_TRACE").is_ok_and(|v| !v.is_empty() && v != "0") {
        let program = pods::compile(pods_workloads::FILL).expect("workload compiles");
        let runtime = Runtime::builder(EngineKind::Native)
            .workers(reuse_workers)
            .trace(pods::TraceConfig::new())
            .build();
        for _ in 0..4 {
            runtime.run(&program, &[Value::Int(48)]).expect("trace run");
        }
        let trace = runtime.take_trace();
        let trace_path = std::path::Path::new(&path)
            .with_file_name("trace.json")
            .display()
            .to_string();
        if let Err(e) = std::fs::write(&trace_path, trace.chrome_trace()) {
            panic!("could not write bench trace {trace_path}: {e}");
        }
        println!("wrote {trace_path} ({} events)", trace.len());
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
