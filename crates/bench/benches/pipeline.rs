//! Criterion micro-benchmarks of the compilation pipeline (front end,
//! dataflow construction, loop analysis, SP translation, partitioning).

use criterion::{criterion_group, criterion_main, Criterion};
use pods_partition::{partition, PartitionConfig};

fn bench_pipeline(c: &mut Criterion) {
    let simple = pods_workloads::simple::SIMPLE;
    c.bench_function("compile_simple_front_end", |b| {
        b.iter(|| pods_idlang::compile(std::hint::black_box(simple)).unwrap())
    });
    let hir = pods_idlang::compile(simple).unwrap();
    c.bench_function("build_dataflow_graphs", |b| {
        b.iter(|| pods_dataflow::build_program(std::hint::black_box(&hir)))
    });
    c.bench_function("analyze_loops", |b| {
        b.iter(|| pods_dataflow::analyze_loops(std::hint::black_box(&hir)))
    });
    c.bench_function("translate_to_sps", |b| {
        b.iter(|| pods_sp::translate(std::hint::black_box(&hir)).unwrap())
    });
    let loops = pods_dataflow::analyze_loops(&hir);
    let sp = pods_sp::translate(&hir).unwrap();
    c.bench_function("partition_sps", |b| {
        b.iter(|| {
            let mut program = sp.clone();
            partition(&mut program, &loops, &PartitionConfig::default())
        })
    });
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
