//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! remote-page-cache on/off, Range-Filter / distribution on/off, and the
//! page-size sweep (the paper cites [Bic89] that page size is not critical).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pods::{PartitionConfig, RunOptions, Value};

fn options(pes: usize) -> RunOptions {
    RunOptions::with_pes(pes)
}

fn bench_ablations(c: &mut Criterion) {
    let stencil = pods::compile(pods_workloads::STENCIL).unwrap();
    let n = Value::Int(24);

    // Remote page cache on/off: reported as simulated elapsed time via
    // wall-clock of the simulation (the simulated times are printed by the
    // fig binaries; here we track the cost of simulating both variants).
    let mut group = c.benchmark_group("stencil_24_8pes_page_cache");
    for (label, cache) in [("cache_on", true), ("cache_off", false)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cache, |b, &cache| {
            let mut opts = options(8);
            opts.remote_page_cache = cache;
            b.iter(|| stencil.run(&[n], &opts).unwrap())
        });
    }
    group.finish();

    // Distribution on/off (sequential partitioning = no LD, no RF).
    let mut group = c.benchmark_group("stencil_24_distribution");
    for (label, pes, partition) in [
        ("distributed_8pes", 8usize, PartitionConfig::default()),
        ("sequential_1pe", 1usize, PartitionConfig::sequential()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &partition, |b, part| {
            let mut opts = options(pes);
            opts.partition = *part;
            b.iter(|| stencil.run(&[n], &opts).unwrap())
        });
    }
    group.finish();

    // Page-size sweep.
    let mut group = c.benchmark_group("stencil_24_8pes_page_size");
    for page in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(page), &page, |b, &page| {
            let mut opts = options(8);
            opts.page_size = page;
            b.iter(|| stencil.run(&[n], &opts).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
