//! Criterion benchmarks of the machine simulator itself: events per second
//! and end-to-end run time of small workloads on various machine sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pods::{RunOptions, Value};

fn bench_simulator(c: &mut Criterion) {
    let fill = pods::compile(pods_workloads::FILL).unwrap();
    let mut group = c.benchmark_group("simulate_fill_16x16");
    for pes in [1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(pes), &pes, |b, &pes| {
            b.iter(|| {
                fill.run(&[Value::Int(16)], &RunOptions::with_pes(pes))
                    .unwrap()
            })
        });
    }
    group.finish();

    let stencil = pods::compile(pods_workloads::STENCIL).unwrap();
    c.bench_function("simulate_stencil_16x16_8pes", |b| {
        b.iter(|| {
            stencil
                .run(&[Value::Int(16)], &RunOptions::with_pes(8))
                .unwrap()
        })
    });

    let simple = pods::compile(pods_workloads::simple::SIMPLE).unwrap();
    c.bench_function("simulate_simple_8x8_4pes", |b| {
        b.iter(|| {
            simple
                .run(&[Value::Int(8)], &RunOptions::with_pes(4))
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
