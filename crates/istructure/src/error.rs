//! Error type for I-structure operations.

use crate::header::ArrayId;
use crate::PeId;

/// Errors reported by the I-structure memory.
///
/// The most important variant is [`IStructureError::SingleAssignment`]: the
/// paper relies on the single-assignment property both for determinism
/// (Church-Rosser, §2) and for cache coherence (§4, "a cached page will never
/// have to be sent back to the original owner"), so any violation is a
/// program error that the memory detects and reports.
#[derive(Debug, Clone, PartialEq)]
pub enum IStructureError {
    /// An element was written more than once.
    SingleAssignment {
        /// The array whose element was re-written.
        array: ArrayId,
        /// Row-major offset of the element.
        offset: usize,
    },
    /// An element offset or index was outside the array bounds.
    OutOfBounds {
        /// The array that was accessed.
        array: ArrayId,
        /// Row-major offset of the attempted access.
        offset: usize,
        /// Total number of elements in the array.
        len: usize,
    },
    /// A multi-dimensional index had the wrong number of dimensions.
    DimensionMismatch {
        /// The array that was accessed.
        array: ArrayId,
        /// Number of indices supplied by the access.
        got: usize,
        /// Number of dimensions of the array.
        expected: usize,
    },
    /// An array was declared with an empty or zero-sized shape.
    InvalidShape {
        /// The offending dimension sizes.
        dims: Vec<usize>,
    },
    /// An operation referred to an array identifier that was never allocated.
    UnknownArray {
        /// The unknown identifier.
        array: ArrayId,
    },
    /// A PE touched an element that its local segment does not own.
    NotLocal {
        /// The array that was accessed.
        array: ArrayId,
        /// Row-major offset of the attempted access.
        offset: usize,
        /// The PE that attempted the access.
        pe: PeId,
    },
    /// An array identifier was allocated twice.
    DuplicateArray {
        /// The identifier that was re-used.
        array: ArrayId,
    },
}

impl std::fmt::Display for IStructureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IStructureError::SingleAssignment { array, offset } => write!(
                f,
                "single-assignment violation: array#{} element {} written twice",
                array.index(),
                offset
            ),
            IStructureError::OutOfBounds { array, offset, len } => write!(
                f,
                "offset {} out of bounds for array#{} of {} elements",
                offset,
                array.index(),
                len
            ),
            IStructureError::DimensionMismatch {
                array,
                got,
                expected,
            } => write!(
                f,
                "array#{} indexed with {} indices but has {} dimensions",
                array.index(),
                got,
                expected
            ),
            IStructureError::InvalidShape { dims } => {
                write!(f, "invalid array shape {dims:?}")
            }
            IStructureError::UnknownArray { array } => {
                write!(f, "unknown array identifier array#{}", array.index())
            }
            IStructureError::NotLocal { array, offset, pe } => write!(
                f,
                "element {} of array#{} is not local to {}",
                offset,
                array.index(),
                pe
            ),
            IStructureError::DuplicateArray { array } => {
                write!(
                    f,
                    "array identifier array#{} allocated twice",
                    array.index()
                )
            }
        }
    }
}

impl std::error::Error for IStructureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_informative() {
        let e = IStructureError::SingleAssignment {
            array: ArrayId::from(2usize),
            offset: 9,
        };
        let text = e.to_string();
        assert!(text.contains("single-assignment"));
        assert!(text.contains('9'));

        let e = IStructureError::NotLocal {
            array: ArrayId::from(0usize),
            offset: 5,
            pe: PeId(3),
        };
        assert!(e.to_string().contains("PE3"));
    }
}
