//! Per-PE local storage of an array segment with I-structure semantics.

use crate::error::IStructureError;
use crate::header::{ArrayHeader, ArrayId};
use crate::value::Value;
use crate::PeId;
use std::ops::Range;

/// One element cell: either empty (possibly with deferred readers queued on
/// it) or written exactly once.
#[derive(Debug, Clone)]
enum Cell<T> {
    /// No value yet; the vector holds the deferred read requests enqueued on
    /// this element ("presence bit" clear).
    Empty(Vec<T>),
    /// The value has been written ("presence bit" set).
    Full(Value),
}

impl<T> Default for Cell<T> {
    fn default() -> Self {
        Cell::Empty(Vec::new())
    }
}

/// The result of reading a local element.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadResult {
    /// The element was present; its value is returned immediately.
    Present(Value),
    /// The element has not been written yet; the read was enqueued and will
    /// be satisfied when the write arrives.
    Deferred,
}

/// The segment of one array held in a PE's local memory.
///
/// The type parameter `T` is the caller's "continuation" tag attached to
/// deferred reads — in the simulator it identifies the SP instance and
/// operand slot waiting for the value.
#[derive(Debug, Clone)]
pub struct LocalArrayStore<T> {
    array: ArrayId,
    pe: PeId,
    base: usize,
    cells: Vec<Cell<T>>,
    written: usize,
}

impl<T> LocalArrayStore<T> {
    /// Creates the local store for `pe`'s segment of the array described by
    /// `header`.
    pub fn new(header: &ArrayHeader, pe: PeId) -> Self {
        let range = header.partitioning().segment_of(pe).element_range();
        LocalArrayStore {
            array: header.id(),
            pe,
            base: range.start,
            cells: (0..range.len()).map(|_| Cell::default()).collect(),
            written: 0,
        }
    }

    /// The array this store belongs to.
    pub fn array(&self) -> ArrayId {
        self.array
    }

    /// The global element offsets held by this store.
    pub fn element_range(&self) -> Range<usize> {
        self.base..self.base + self.cells.len()
    }

    /// Number of elements held locally.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` when the segment is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of elements that have been written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Returns `true` when every local element has been written.
    pub fn is_complete(&self) -> bool {
        self.written == self.cells.len()
    }

    fn cell_index(&self, offset: usize) -> Result<usize, IStructureError> {
        if offset < self.base || offset >= self.base + self.cells.len() {
            return Err(IStructureError::NotLocal {
                array: self.array,
                offset,
                pe: self.pe,
            });
        }
        Ok(offset - self.base)
    }

    /// Returns `true` when the element at the global `offset` has been
    /// written (its presence bit is set).
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::NotLocal`] if the offset is outside this
    /// PE's segment.
    pub fn is_present(&self, offset: usize) -> Result<bool, IStructureError> {
        let idx = self.cell_index(offset)?;
        Ok(matches!(self.cells[idx], Cell::Full(_)))
    }

    /// Reads the element at the global `offset`.
    ///
    /// If the element is absent, the `waiter` tag is enqueued on the cell and
    /// [`ReadResult::Deferred`] is returned; the tag will be handed back by
    /// the [`LocalArrayStore::write`] that eventually fills the element.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::NotLocal`] if the offset is outside this
    /// PE's segment.
    pub fn read(&mut self, offset: usize, waiter: T) -> Result<ReadResult, IStructureError> {
        let idx = self.cell_index(offset)?;
        match &mut self.cells[idx] {
            Cell::Full(v) => Ok(ReadResult::Present(*v)),
            Cell::Empty(queue) => {
                queue.push(waiter);
                Ok(ReadResult::Deferred)
            }
        }
    }

    /// Reads the element without enqueueing a deferred request.
    pub fn peek(&self, offset: usize) -> Result<Option<Value>, IStructureError> {
        let idx = self.cell_index(offset)?;
        Ok(match &self.cells[idx] {
            Cell::Full(v) => Some(*v),
            Cell::Empty(_) => None,
        })
    }

    /// Writes the element at the global `offset`, returning the deferred
    /// readers that were waiting for it.
    ///
    /// # Errors
    ///
    /// * [`IStructureError::SingleAssignment`] if the element was already
    ///   written.
    /// * [`IStructureError::NotLocal`] if the offset is outside this PE's
    ///   segment.
    pub fn write(&mut self, offset: usize, value: Value) -> Result<Vec<T>, IStructureError> {
        let idx = self.cell_index(offset)?;
        match std::mem::take(&mut self.cells[idx]) {
            Cell::Full(prev) => {
                // Restore the original value before reporting the violation.
                self.cells[idx] = Cell::Full(prev);
                Err(IStructureError::SingleAssignment {
                    array: self.array,
                    offset,
                })
            }
            Cell::Empty(waiters) => {
                self.cells[idx] = Cell::Full(value);
                self.written += 1;
                Ok(waiters)
            }
        }
    }

    /// Number of deferred readers currently queued on the element.
    pub fn deferred_count(&self, offset: usize) -> Result<usize, IStructureError> {
        let idx = self.cell_index(offset)?;
        Ok(match &self.cells[idx] {
            Cell::Empty(q) => q.len(),
            Cell::Full(_) => 0,
        })
    }

    /// Snapshot of the local segment as `(global_offset, value)` pairs for
    /// every written element.
    pub fn written_elements(&self) -> Vec<(usize, Value)> {
        self.cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c {
                Cell::Full(v) => Some((self.base + i, *v)),
                Cell::Empty(_) => None,
            })
            .collect()
    }

    /// Snapshot of the local segment as a page-aligned copy: present elements
    /// are `Some`, absent ones `None`. Used to build the page copies shipped
    /// to remote caches.
    pub fn copy_range(&self, range: Range<usize>) -> Vec<Option<Value>> {
        range
            .map(|offset| {
                if offset < self.base || offset >= self.base + self.cells.len() {
                    None
                } else {
                    match &self.cells[offset - self.base] {
                        Cell::Full(v) => Some(*v),
                        Cell::Empty(_) => None,
                    }
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{ArrayShape, Partitioning};

    fn store_for(pe: usize) -> LocalArrayStore<u32> {
        let shape = ArrayShape::matrix(4, 8);
        let part = Partitioning::new(shape.len(), 8, 2);
        let header = ArrayHeader::new(ArrayId(0), "t", shape, part);
        LocalArrayStore::new(&header, PeId(pe))
    }

    #[test]
    fn write_then_read_returns_value() {
        let mut s = store_for(0);
        assert_eq!(s.write(3, Value::Float(1.25)).unwrap(), Vec::<u32>::new());
        assert_eq!(
            s.read(3, 99).unwrap(),
            ReadResult::Present(Value::Float(1.25))
        );
        assert_eq!(s.peek(3).unwrap(), Some(Value::Float(1.25)));
        assert!(s.is_present(3).unwrap());
    }

    #[test]
    fn early_reads_are_deferred_and_released_by_write() {
        let mut s = store_for(0);
        assert_eq!(s.read(5, 11).unwrap(), ReadResult::Deferred);
        assert_eq!(s.read(5, 22).unwrap(), ReadResult::Deferred);
        assert_eq!(s.deferred_count(5).unwrap(), 2);
        let woken = s.write(5, Value::Int(7)).unwrap();
        assert_eq!(woken, vec![11, 22]);
        assert_eq!(s.deferred_count(5).unwrap(), 0);
        assert_eq!(s.read(5, 33).unwrap(), ReadResult::Present(Value::Int(7)));
    }

    #[test]
    fn double_write_is_a_single_assignment_violation() {
        let mut s = store_for(0);
        s.write(0, Value::Int(1)).unwrap();
        let err = s.write(0, Value::Int(2)).unwrap_err();
        assert!(matches!(err, IStructureError::SingleAssignment { .. }));
        // The original value is preserved.
        assert_eq!(s.peek(0).unwrap(), Some(Value::Int(1)));
    }

    #[test]
    fn non_local_offsets_are_rejected() {
        let mut s = store_for(0);
        // PE0 holds offsets 0..16 of the 4x8 array.
        assert_eq!(s.element_range(), 0..16);
        assert!(matches!(
            s.write(20, Value::Int(0)),
            Err(IStructureError::NotLocal { .. })
        ));
        assert!(matches!(
            s.read(20, 0),
            Err(IStructureError::NotLocal { .. })
        ));
        let s1 = store_for(1);
        assert_eq!(s1.element_range(), 16..32);
    }

    #[test]
    fn completion_tracking() {
        let mut s = store_for(1);
        assert!(!s.is_complete());
        for offset in s.element_range() {
            s.write(offset, Value::Int(offset as i64)).unwrap();
        }
        assert!(s.is_complete());
        assert_eq!(s.written(), 16);
        assert_eq!(s.written_elements().len(), 16);
    }

    #[test]
    fn copy_range_marks_absent_elements() {
        let mut s = store_for(0);
        s.write(1, Value::Int(10)).unwrap();
        let page = s.copy_range(0..4);
        assert_eq!(page, vec![None, Some(Value::Int(10)), None, None]);
        // Out-of-segment offsets come back as absent.
        let outside = s.copy_range(14..18);
        assert_eq!(outside.len(), 4);
        assert_eq!(outside[2], None);
    }
}
