//! Per-PE array memory: headers, local segments, and the remote-page cache.
//!
//! [`ArrayMemory`] is the functional core of the paper's *Array Manager*
//! (§5.1): it decides whether an access is local, cached, or remote, enforces
//! I-structure semantics, and produces the page copies exchanged between PEs.
//! The timing of these operations is applied by the machine simulator, which
//! wraps one `ArrayMemory` per PE.

use crate::cache::{CacheStats, PageCache, PageCopy};
use crate::error::IStructureError;
use crate::header::{ArrayHeader, ArrayId};
use crate::layout::{ArrayShape, Partitioning};
use crate::store::{LocalArrayStore, ReadResult};
use crate::value::Value;
use crate::PeId;
use std::collections::HashMap;

/// Outcome of a read request issued on this PE.
#[derive(Debug, Clone, PartialEq)]
pub enum ReadOutcome {
    /// The element is local and present.
    LocalPresent(Value),
    /// The element is local but not yet written; the waiter was enqueued and
    /// will be released by the eventual write.
    LocalDeferred,
    /// The element is remote but its page was cached and the element present.
    CacheHit(Value),
    /// The element is remote and must be requested from its owner.
    RemoteMiss {
        /// The PE that owns the element's page.
        owner: PeId,
        /// The page index to request.
        page: usize,
    },
}

/// Outcome of a write request issued on this PE.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOutcome<T> {
    /// The element is local; the value was stored and these deferred readers
    /// must be re-activated.
    Local {
        /// Deferred read tags released by this write.
        woken: Vec<T>,
    },
    /// The element belongs to another PE; the value must be shipped there.
    Remote {
        /// The PE that owns the element.
        owner: PeId,
    },
}

/// The array memory of one PE.
#[derive(Debug, Clone)]
pub struct ArrayMemory<T> {
    pe: PeId,
    headers: HashMap<ArrayId, ArrayHeader>,
    stores: HashMap<ArrayId, LocalArrayStore<T>>,
    cache: PageCache,
}

impl<T> ArrayMemory<T> {
    /// Creates an empty array memory for the given PE.
    pub fn new(pe: PeId) -> Self {
        ArrayMemory {
            pe,
            headers: HashMap::new(),
            stores: HashMap::new(),
            cache: PageCache::new(),
        }
    }

    /// The PE this memory belongs to.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// Registers an array: builds the header and allocates the local segment.
    ///
    /// Both the allocating PE and every PE receiving the broadcast allocation
    /// request call this with identical arguments, so all PEs agree on the
    /// header (§4.1).
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::InvalidShape`] for zero-sized shapes.
    pub fn allocate(
        &mut self,
        id: ArrayId,
        name: impl Into<String>,
        shape: ArrayShape,
        partitioning: Partitioning,
    ) -> Result<(), IStructureError> {
        if shape.is_degenerate() {
            return Err(IStructureError::InvalidShape {
                dims: shape.dims().to_vec(),
            });
        }
        let header = ArrayHeader::new(id, name, shape, partitioning);
        let store = LocalArrayStore::new(&header, self.pe);
        self.headers.insert(id, header);
        self.stores.insert(id, store);
        Ok(())
    }

    /// Returns the header of an allocated array.
    pub fn header(&self, id: ArrayId) -> Option<&ArrayHeader> {
        self.headers.get(&id)
    }

    /// Returns the header or an [`IStructureError::UnknownArray`] error.
    pub fn require_header(&self, id: ArrayId) -> Result<&ArrayHeader, IStructureError> {
        self.headers
            .get(&id)
            .ok_or(IStructureError::UnknownArray { array: id })
    }

    /// Number of arrays registered on this PE.
    pub fn num_arrays(&self) -> usize {
        self.headers.len()
    }

    /// Read an element. Local elements follow I-structure semantics (present
    /// or deferred), remote elements go through the page cache.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::UnknownArray`] or
    /// [`IStructureError::OutOfBounds`] for invalid accesses.
    pub fn read(
        &mut self,
        id: ArrayId,
        offset: usize,
        waiter: T,
    ) -> Result<ReadOutcome, IStructureError> {
        let header = self
            .headers
            .get(&id)
            .ok_or(IStructureError::UnknownArray { array: id })?;
        if offset >= header.len() {
            return Err(IStructureError::OutOfBounds {
                array: id,
                offset,
                len: header.len(),
            });
        }
        let owner = header.owner_of(offset);
        let page = header.partitioning().page_of(offset);
        if owner == self.pe {
            let store = self.stores.get_mut(&id).expect("store exists with header");
            match store.read(offset, waiter)? {
                ReadResult::Present(v) => Ok(ReadOutcome::LocalPresent(v)),
                ReadResult::Deferred => Ok(ReadOutcome::LocalDeferred),
            }
        } else {
            match self.cache.lookup(id, page, offset) {
                Some(v) => Ok(ReadOutcome::CacheHit(v)),
                None => Ok(ReadOutcome::RemoteMiss { owner, page }),
            }
        }
    }

    /// Read an element as the owner of its page, on behalf of a remote
    /// requester. The waiter is enqueued if the element is absent.
    ///
    /// # Errors
    ///
    /// Returns an error if this PE does not own the element.
    pub fn read_as_owner(
        &mut self,
        id: ArrayId,
        offset: usize,
        waiter: T,
    ) -> Result<ReadResult, IStructureError> {
        let store = self
            .stores
            .get_mut(&id)
            .ok_or(IStructureError::UnknownArray { array: id })?;
        store.read(offset, waiter)
    }

    /// Write an element. Local writes store the value and release deferred
    /// readers; remote writes report the owner so the caller can forward the
    /// value (first-element-ownership makes some writes remote, §4.2.3).
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::SingleAssignment`] when a local element is
    /// written twice, plus the usual lookup errors.
    pub fn write(
        &mut self,
        id: ArrayId,
        offset: usize,
        value: Value,
    ) -> Result<WriteOutcome<T>, IStructureError> {
        let header = self
            .headers
            .get(&id)
            .ok_or(IStructureError::UnknownArray { array: id })?;
        if offset >= header.len() {
            return Err(IStructureError::OutOfBounds {
                array: id,
                offset,
                len: header.len(),
            });
        }
        let owner = header.owner_of(offset);
        if owner == self.pe {
            let store = self.stores.get_mut(&id).expect("store exists with header");
            let woken = store.write(offset, value)?;
            Ok(WriteOutcome::Local { woken })
        } else {
            Ok(WriteOutcome::Remote { owner })
        }
    }

    /// Extracts a copy of a locally owned page (the owner-side half of a
    /// remote read miss).
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::UnknownArray`] if the array is unknown.
    pub fn extract_page(&self, id: ArrayId, page: usize) -> Result<PageCopy, IStructureError> {
        let header = self
            .headers
            .get(&id)
            .ok_or(IStructureError::UnknownArray { array: id })?;
        let store = self
            .stores
            .get(&id)
            .ok_or(IStructureError::UnknownArray { array: id })?;
        let range = header.partitioning().page_elements(page);
        Ok(PageCopy {
            array: id,
            page,
            base_offset: range.start,
            elements: store.copy_range(range),
        })
    }

    /// Installs a page copy received from a remote owner into the cache.
    pub fn install_page(&mut self, copy: PageCopy) {
        self.cache.install(copy);
    }

    /// Direct access to the local store of an array (diagnostics, result
    /// extraction).
    pub fn local_store(&self, id: ArrayId) -> Option<&LocalArrayStore<T>> {
        self.stores.get(&id)
    }

    /// Page-cache statistics for this PE.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// All `(offset, value)` pairs written locally for an array.
    pub fn local_written(&self, id: ArrayId) -> Vec<(usize, Value)> {
        self.stores
            .get(&id)
            .map(|s| s.written_elements())
            .unwrap_or_default()
    }

    /// Identifiers of all arrays registered on this PE.
    pub fn array_ids(&self) -> Vec<ArrayId> {
        let mut ids: Vec<ArrayId> = self.headers.keys().copied().collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pe_memories() -> (ArrayMemory<u32>, ArrayMemory<u32>) {
        let mut m0 = ArrayMemory::new(PeId(0));
        let mut m1 = ArrayMemory::new(PeId(1));
        let shape = ArrayShape::matrix(4, 8);
        let part = Partitioning::new(shape.len(), 8, 2);
        m0.allocate(ArrayId(0), "a", shape.clone(), part.clone())
            .unwrap();
        m1.allocate(ArrayId(0), "a", shape, part).unwrap();
        (m0, m1)
    }

    #[test]
    fn local_read_write_roundtrip() {
        let (mut m0, _) = two_pe_memories();
        assert_eq!(
            m0.read(ArrayId(0), 3, 7).unwrap(),
            ReadOutcome::LocalDeferred
        );
        match m0.write(ArrayId(0), 3, Value::Float(2.5)).unwrap() {
            WriteOutcome::Local { woken } => assert_eq!(woken, vec![7]),
            other => panic!("unexpected outcome {other:?}"),
        }
        assert_eq!(
            m0.read(ArrayId(0), 3, 8).unwrap(),
            ReadOutcome::LocalPresent(Value::Float(2.5))
        );
    }

    #[test]
    fn remote_read_misses_then_hits_after_page_install() {
        let (mut m0, mut m1) = two_pe_memories();
        // Offset 20 is in PE1's segment (16..32).
        match m0.read(ArrayId(0), 20, 1).unwrap() {
            ReadOutcome::RemoteMiss { owner, page } => {
                assert_eq!(owner, PeId(1));
                assert_eq!(page, 2);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
        // Owner writes the element, then the requester fetches the page.
        m1.write(ArrayId(0), 20, Value::Int(42)).unwrap();
        let copy = m1.extract_page(ArrayId(0), 2).unwrap();
        assert_eq!(copy.present_count(), 1);
        m0.install_page(copy);
        assert_eq!(
            m0.read(ArrayId(0), 20, 2).unwrap(),
            ReadOutcome::CacheHit(Value::Int(42))
        );
        // A different, still-absent element of the same page misses again.
        assert!(matches!(
            m0.read(ArrayId(0), 21, 3).unwrap(),
            ReadOutcome::RemoteMiss { .. }
        ));
        assert_eq!(m0.cache_stats().hits, 1);
        assert_eq!(m0.cache_stats().pages_installed, 1);
    }

    #[test]
    fn remote_write_reports_owner() {
        let (mut m0, mut m1) = two_pe_memories();
        match m0.write(ArrayId(0), 20, Value::Int(5)).unwrap() {
            WriteOutcome::Remote { owner } => assert_eq!(owner, PeId(1)),
            other => panic!("unexpected outcome {other:?}"),
        }
        // Forwarding to the owner succeeds exactly once.
        assert!(matches!(
            m1.write(ArrayId(0), 20, Value::Int(5)).unwrap(),
            WriteOutcome::Local { .. }
        ));
        assert!(m1.write(ArrayId(0), 20, Value::Int(6)).is_err());
    }

    #[test]
    fn owner_side_read_defers_until_written() {
        let (_, mut m1) = two_pe_memories();
        assert_eq!(
            m1.read_as_owner(ArrayId(0), 17, 9).unwrap(),
            ReadResult::Deferred
        );
        match m1.write(ArrayId(0), 17, Value::Int(1)).unwrap() {
            WriteOutcome::Local { woken } => assert_eq!(woken, vec![9]),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn errors_for_unknown_and_out_of_bounds() {
        let (mut m0, _) = two_pe_memories();
        assert!(matches!(
            m0.read(ArrayId(9), 0, 0),
            Err(IStructureError::UnknownArray { .. })
        ));
        assert!(matches!(
            m0.read(ArrayId(0), 999, 0),
            Err(IStructureError::OutOfBounds { .. })
        ));
        assert!(matches!(
            m0.write(ArrayId(0), 999, Value::Int(0)),
            Err(IStructureError::OutOfBounds { .. })
        ));
        assert!(m0.require_header(ArrayId(0)).is_ok());
        assert!(m0.require_header(ArrayId(9)).is_err());
    }

    #[test]
    fn degenerate_shapes_are_rejected() {
        let mut m = ArrayMemory::<u32>::new(PeId(0));
        let err = m
            .allocate(
                ArrayId(0),
                "bad",
                ArrayShape::new(vec![0, 4]),
                Partitioning::new(0, 32, 1),
            )
            .unwrap_err();
        assert!(matches!(err, IStructureError::InvalidShape { .. }));
    }

    #[test]
    fn bookkeeping_accessors() {
        let (mut m0, _) = two_pe_memories();
        assert_eq!(m0.num_arrays(), 1);
        assert_eq!(m0.array_ids(), vec![ArrayId(0)]);
        m0.write(ArrayId(0), 1, Value::Int(3)).unwrap();
        assert_eq!(m0.local_written(ArrayId(0)), vec![(1, Value::Int(3))]);
        assert!(m0.local_store(ArrayId(0)).is_some());
        assert_eq!(m0.pe(), PeId(0));
    }
}
