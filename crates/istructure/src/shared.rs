//! A thread-safe I-structure store for native parallel execution.
//!
//! The per-PE [`crate::ArrayMemory`] models the paper's distributed Array
//! Managers for the discrete-event simulator, where all accesses happen on
//! one simulation thread. The native execution engine instead runs iteration
//! instances on real OS threads, so it needs a store that many threads can
//! hit concurrently while preserving I-structure semantics:
//!
//! * **write-once cells** — a second write to an element is a
//!   single-assignment violation, exactly as in the sequential stores,
//! * **deferred readers** — a read of an absent element enqueues a
//!   caller-supplied waiter tag on the cell; the write that eventually fills
//!   the element hands all queued tags back to the writer so the caller can
//!   re-activate the blocked computations (the paper's "presence bit +
//!   deferred-read queue" protocol, §4.1, lifted onto threads).
//!
//! The waiter tag type `T` is deliberately opaque, which lets one store
//! serve two wake-up protocols: the native engine's *parked-instance
//! mailboxes* (tags are plain `(instance, slot)` ids resolved against a
//! job-global scheduler) and the async engine's *wakers* (tags carry an
//! `Arc` of the suspended task itself, so the writer re-activates it by
//! locking only that task — the `Waker` half of a futures executor).
//!
//! Synchronisation is per-cell (`Mutex` around each element), so writes and
//! reads to distinct elements never contend, and the array directory is
//! *sharded*: a fixed number of `RwLock`ed maps keyed by array id, so
//! directory lookups of different arrays rarely touch the same lock and an
//! allocation write-locks only one shard. The store is shared between
//! workers via `Arc`; headers carry the same [`Partitioning`] the simulator
//! uses, so Range Filters compute identical per-worker responsibility
//! ranges in both execution modes.

use crate::error::IStructureError;
use crate::header::{ArrayHeader, ArrayId};
use crate::layout::{ArrayShape, Partitioning};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Allocation statistics of a [`SharedArrayStore`], maintained with relaxed
/// atomics so sampling them never contends with the execution hot path.
///
/// `live` counts what the store currently holds; `peak` is the high-water
/// mark over the store's lifetime. Byte figures are *approximate*: each
/// array is costed as its header plus one locked cell per element
/// (`size_of::<Mutex<SharedCell<T>>>()`), which tracks the dominant term of
/// the real footprint but ignores deferred-reader queue growth. Until
/// array deallocation lands (the GC half of the array-lifecycle roadmap
/// item), nothing decrements the live counters, so `live == peak`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Arrays currently allocated in the store.
    pub live_arrays: usize,
    /// Most arrays ever simultaneously allocated.
    pub peak_arrays: usize,
    /// Approximate bytes currently held by allocated arrays.
    pub live_bytes: usize,
    /// Approximate high-water mark of `live_bytes`.
    pub peak_bytes: usize,
}

/// One write-once element cell with its deferred-reader queue.
#[derive(Debug)]
enum SharedCell<T> {
    /// Presence bit clear; the queue holds deferred-read waiter tags.
    Empty(Vec<T>),
    /// Presence bit set.
    Full(Value),
}

impl<T> Default for SharedCell<T> {
    fn default() -> Self {
        SharedCell::Empty(Vec::new())
    }
}

/// The result of a read against the shared store.
#[derive(Debug, Clone, PartialEq)]
pub enum SharedReadResult {
    /// The element was present.
    Present(Value),
    /// The element has not been written; the waiter tag was enqueued and
    /// will be handed to the writer that fills the element.
    Deferred,
}

/// One array held by the shared store.
#[derive(Debug)]
pub struct SharedArray<T> {
    header: ArrayHeader,
    cells: Vec<Mutex<SharedCell<T>>>,
}

impl<T> SharedArray<T> {
    /// The array header (shape, name, partitioning / responsibility ranges).
    pub fn header(&self) -> &ArrayHeader {
        &self.header
    }

    /// Reads the element at `offset`, enqueueing `waiter` if it is absent.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::OutOfBounds`] for offsets past the end.
    pub fn read(&self, offset: usize, waiter: T) -> Result<SharedReadResult, IStructureError> {
        let cell = self.cells.get(offset).ok_or(IStructureError::OutOfBounds {
            array: self.header.id(),
            offset,
            len: self.cells.len(),
        })?;
        let mut guard = cell.lock().expect("shared cell poisoned");
        match &mut *guard {
            SharedCell::Full(v) => Ok(SharedReadResult::Present(*v)),
            SharedCell::Empty(queue) => {
                queue.push(waiter);
                Ok(SharedReadResult::Deferred)
            }
        }
    }

    /// Reads the element at `offset` without enqueueing a waiter.
    pub fn peek(&self, offset: usize) -> Option<Value> {
        let guard = self
            .cells
            .get(offset)?
            .lock()
            .expect("shared cell poisoned");
        match &*guard {
            SharedCell::Full(v) => Some(*v),
            SharedCell::Empty(_) => None,
        }
    }

    /// Writes the element at `offset`, returning the deferred waiters that
    /// were queued on it. The cell lock is released before the caller
    /// re-activates the waiters, so wake-up work never blocks other cells.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::SingleAssignment`] on a second write and
    /// [`IStructureError::OutOfBounds`] for offsets past the end.
    pub fn write(&self, offset: usize, value: Value) -> Result<Vec<T>, IStructureError> {
        let cell = self.cells.get(offset).ok_or(IStructureError::OutOfBounds {
            array: self.header.id(),
            offset,
            len: self.cells.len(),
        })?;
        let mut guard = cell.lock().expect("shared cell poisoned");
        match std::mem::take(&mut *guard) {
            SharedCell::Full(prev) => {
                *guard = SharedCell::Full(prev);
                Err(IStructureError::SingleAssignment {
                    array: self.header.id(),
                    offset,
                })
            }
            SharedCell::Empty(waiters) => {
                *guard = SharedCell::Full(value);
                Ok(waiters)
            }
        }
    }

    /// Bulk-delivery form of [`SharedArray::write`]: writes the element and
    /// appends each deferred waiter, paired with the written value, to
    /// `sink`. Returns how many waiters were appended.
    ///
    /// This is the primitive behind batched wake-up delivery: a writer that
    /// fills many elements in one task accumulates all the `(waiter, value)`
    /// wake-ups in one reusable buffer and re-activates them in a single
    /// scheduler transaction, instead of paying a scheduler-lock round trip
    /// per write.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::SingleAssignment`] on a second write and
    /// [`IStructureError::OutOfBounds`] for offsets past the end; `sink` is
    /// untouched on error.
    pub fn write_into(
        &self,
        offset: usize,
        value: Value,
        sink: &mut Vec<(T, Value)>,
    ) -> Result<usize, IStructureError> {
        let waiters = self.write(offset, value)?;
        let n = waiters.len();
        sink.extend(waiters.into_iter().map(|w| (w, value)));
        Ok(n)
    }

    /// Snapshot of every element (`None` = never written), row-major.
    pub fn snapshot(&self) -> Vec<Option<Value>> {
        self.cells
            .iter()
            .map(|c| match &*c.lock().expect("shared cell poisoned") {
                SharedCell::Full(v) => Some(*v),
                SharedCell::Empty(_) => None,
            })
            .collect()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Number of fixed directory shards. Arrays land on `id % 16`; ids are
/// assigned sequentially by the engines, so consecutive allocations spread
/// round-robin across the shards.
const DIRECTORY_SHARDS: usize = 16;

/// A concurrent, `Arc`-shared directory of I-structure arrays.
///
/// The waiter tag type `T` identifies the blocked computation to re-activate
/// when a deferred element is finally written: the native engine uses an
/// `(instance, slot)` pair resolved against its scheduler, the async engine
/// a waker (an `Arc` of the suspended task plus the slot).
///
/// The directory is split into a fixed number of independently locked
/// maps (16 shards) keyed by array id. Per-task caching already hides directory lookups
/// on the hot path; sharding removes the residual cold-path contention —
/// first-touch lookups and allocations of distinct arrays proceed in
/// parallel instead of serialising on one `RwLock`.
#[derive(Debug)]
pub struct SharedArrayStore<T> {
    shards: Vec<RwLock<HashMap<ArrayId, Arc<SharedArray<T>>>>>,
    /// Allocation order, so result snapshots match the simulator's.
    order: Mutex<Vec<ArrayId>>,
    /// Arrays currently allocated (see [`StoreStats`]).
    live_arrays: AtomicUsize,
    /// High-water mark of `live_arrays`.
    peak_arrays: AtomicUsize,
    /// Approximate bytes currently held by allocated arrays.
    live_bytes: AtomicUsize,
    /// High-water mark of `live_bytes`.
    peak_bytes: AtomicUsize,
}

impl<T> Default for SharedArrayStore<T> {
    fn default() -> Self {
        SharedArrayStore {
            shards: (0..DIRECTORY_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            order: Mutex::new(Vec::new()),
            live_arrays: AtomicUsize::new(0),
            peak_arrays: AtomicUsize::new(0),
            live_bytes: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
        }
    }
}

impl<T> SharedArrayStore<T> {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shard holding (or destined to hold) the given array.
    fn shard(&self, id: ArrayId) -> &RwLock<HashMap<ArrayId, Arc<SharedArray<T>>>> {
        &self.shards[id.0 % DIRECTORY_SHARDS]
    }

    /// Allocates an array with the given header parameters.
    ///
    /// # Errors
    ///
    /// Returns [`IStructureError::InvalidShape`] for zero-sized shapes and
    /// [`IStructureError::DuplicateArray`] if the identifier is already in
    /// use.
    pub fn allocate(
        &self,
        id: ArrayId,
        name: impl Into<String>,
        shape: ArrayShape,
        partitioning: Partitioning,
    ) -> Result<(), IStructureError> {
        if shape.is_degenerate() {
            return Err(IStructureError::InvalidShape {
                dims: shape.dims().to_vec(),
            });
        }
        let header = ArrayHeader::new(id, name, shape, partitioning);
        let len = header.len();
        let array = Arc::new(SharedArray {
            header,
            cells: (0..len)
                .map(|_| Mutex::new(SharedCell::default()))
                .collect(),
        });
        let mut arrays = self.shard(id).write().expect("shared store poisoned");
        if arrays.contains_key(&id) {
            return Err(IStructureError::DuplicateArray { array: id });
        }
        arrays.insert(id, array);
        // Take the order lock while still holding the shard write lock so a
        // racing duplicate allocate of the *same* id cannot interleave
        // between the insert and the order push (allocations of different
        // ids may interleave freely — whichever push lands first *is* the
        // allocation order).
        self.order.lock().expect("shared store poisoned").push(id);
        let bytes =
            std::mem::size_of::<ArrayHeader>() + len * std::mem::size_of::<Mutex<SharedCell<T>>>();
        let live = self.live_arrays.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak_arrays.fetch_max(live, Ordering::Relaxed);
        let live_bytes = self.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_bytes.fetch_max(live_bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Current/peak allocation counters (relaxed-atomic snapshot; safe to
    /// sample from any thread while jobs run).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            live_arrays: self.live_arrays.load(Ordering::Relaxed),
            peak_arrays: self.peak_arrays.load(Ordering::Relaxed),
            live_bytes: self.live_bytes.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
        }
    }

    /// The array with the given id, if allocated. Read-locks only the
    /// shard the id hashes to.
    pub fn array(&self, id: ArrayId) -> Option<Arc<SharedArray<T>>> {
        self.shard(id)
            .read()
            .expect("shared store poisoned")
            .get(&id)
            .cloned()
    }

    /// The array or an [`IStructureError::UnknownArray`] error.
    pub fn require(&self, id: ArrayId) -> Result<Arc<SharedArray<T>>, IStructureError> {
        self.array(id)
            .ok_or(IStructureError::UnknownArray { array: id })
    }

    /// Number of arrays allocated so far.
    pub fn num_arrays(&self) -> usize {
        self.order.lock().expect("shared store poisoned").len()
    }

    /// Snapshots of every array in allocation order:
    /// `(id, name, shape, values)`.
    pub fn snapshots(&self) -> Vec<(ArrayId, String, ArrayShape, Vec<Option<Value>>)> {
        let order = self.order.lock().expect("shared store poisoned").clone();
        order
            .iter()
            .filter_map(|id| self.array(*id))
            .map(|a| {
                (
                    a.header.id(),
                    a.header.name().to_string(),
                    a.header.shape().clone(),
                    a.snapshot(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PeId;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    fn store() -> SharedArrayStore<usize> {
        let s = SharedArrayStore::new();
        let shape = ArrayShape::matrix(4, 8);
        let part = Partitioning::new(shape.len(), 8, 2);
        s.allocate(ArrayId(0), "a", shape, part).unwrap();
        s
    }

    #[test]
    fn write_once_and_deferred_wakeup() {
        let s = store();
        let a = s.require(ArrayId(0)).unwrap();
        assert_eq!(a.read(3, 11).unwrap(), SharedReadResult::Deferred);
        assert_eq!(a.read(3, 22).unwrap(), SharedReadResult::Deferred);
        let woken = a.write(3, Value::Int(9)).unwrap();
        assert_eq!(woken, vec![11, 22]);
        assert_eq!(
            a.read(3, 33).unwrap(),
            SharedReadResult::Present(Value::Int(9))
        );
        assert!(matches!(
            a.write(3, Value::Int(1)),
            Err(IStructureError::SingleAssignment { .. })
        ));
        assert_eq!(a.peek(3), Some(Value::Int(9)));
        assert_eq!(a.peek(4), None);
    }

    #[test]
    fn write_into_appends_waiter_value_pairs_without_allocating_per_write() {
        let s = store();
        let a = s.require(ArrayId(0)).unwrap();
        assert_eq!(a.read(0, 1).unwrap(), SharedReadResult::Deferred);
        assert_eq!(a.read(0, 2).unwrap(), SharedReadResult::Deferred);
        assert_eq!(a.read(5, 3).unwrap(), SharedReadResult::Deferred);
        let mut sink = Vec::new();
        assert_eq!(a.write_into(0, Value::Int(10), &mut sink).unwrap(), 2);
        assert_eq!(a.write_into(4, Value::Int(40), &mut sink).unwrap(), 0);
        assert_eq!(a.write_into(5, Value::Int(50), &mut sink).unwrap(), 1);
        assert_eq!(
            sink,
            vec![
                (1, Value::Int(10)),
                (2, Value::Int(10)),
                (3, Value::Int(50))
            ]
        );
        // Errors leave the sink untouched.
        assert!(matches!(
            a.write_into(0, Value::Int(1), &mut sink),
            Err(IStructureError::SingleAssignment { .. })
        ));
        assert!(matches!(
            a.write_into(999, Value::Int(1), &mut sink),
            Err(IStructureError::OutOfBounds { .. })
        ));
        assert_eq!(sink.len(), 3);
    }

    #[test]
    fn bounds_and_unknown_arrays_are_errors() {
        let s = store();
        let a = s.require(ArrayId(0)).unwrap();
        assert!(matches!(
            a.read(999, 0),
            Err(IStructureError::OutOfBounds { .. })
        ));
        assert!(matches!(
            a.write(999, Value::Int(0)),
            Err(IStructureError::OutOfBounds { .. })
        ));
        assert!(s.require(ArrayId(7)).is_err());
        assert!(matches!(
            s.allocate(
                ArrayId(1),
                "bad",
                ArrayShape::new(vec![0]),
                Partitioning::new(0, 8, 1)
            ),
            Err(IStructureError::InvalidShape { .. })
        ));
        assert!(matches!(
            s.allocate(
                ArrayId(0),
                "again",
                ArrayShape::vector(2),
                Partitioning::new(2, 8, 1)
            ),
            Err(IStructureError::DuplicateArray { .. })
        ));
        assert_eq!(s.num_arrays(), 1);
        assert_eq!(s.snapshots().len(), 1);
    }

    #[test]
    fn snapshots_follow_allocation_order() {
        let s = store();
        s.allocate(
            ArrayId(1),
            "b",
            ArrayShape::vector(3),
            Partitioning::single_owner(3, 8, 2, PeId(1)),
        )
        .unwrap();
        s.require(ArrayId(1))
            .unwrap()
            .write(0, Value::Bool(true))
            .unwrap();
        let snaps = s.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!(snaps[0].1, "a");
        assert_eq!(snaps[1].1, "b");
        assert_eq!(snaps[1].3[0], Some(Value::Bool(true)));
        assert_eq!(s.num_arrays(), 2);
    }

    #[test]
    fn sharded_directory_preserves_order_ids_and_duplicate_detection() {
        // More arrays than shards, allocated from several threads: every id
        // resolvable, allocation order = push order, duplicates of an id
        // already in a shard still rejected, and `num_arrays` exact.
        let s = Arc::new(SharedArrayStore::<usize>::new());
        let per_thread = 2 * DIRECTORY_SHARDS;
        let threads = 4;
        let mut handles = Vec::new();
        for t in 0..threads {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                for k in 0..per_thread {
                    let id = ArrayId(t * per_thread + k);
                    s.allocate(
                        id,
                        format!("a{}", id.0),
                        ArrayShape::vector(1 + id.0 % 3),
                        Partitioning::new(1 + id.0 % 3, 8, 2),
                    )
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total = threads * per_thread;
        assert_eq!(s.num_arrays(), total);
        for id in 0..total {
            let a = s.require(ArrayId(id)).unwrap();
            assert_eq!(a.header().id(), ArrayId(id));
            assert_eq!(a.header().name(), format!("a{id}"));
            // Allocating the same id again fails regardless of which shard
            // it lives in.
            assert!(matches!(
                s.allocate(
                    ArrayId(id),
                    "dup",
                    ArrayShape::vector(1),
                    Partitioning::new(1, 8, 1)
                ),
                Err(IStructureError::DuplicateArray { .. })
            ));
        }
        // Snapshots follow the recorded allocation order exactly and cover
        // every array once.
        let snaps = s.snapshots();
        assert_eq!(snaps.len(), total);
        let mut seen: Vec<usize> = snaps.iter().map(|(id, ..)| id.0).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_disjoint_writes_fill_the_array() {
        let s = Arc::new(SharedArrayStore::<usize>::new());
        let shape = ArrayShape::matrix(8, 32);
        let n = shape.len();
        s.allocate(ArrayId(0), "c", shape, Partitioning::new(n, 32, 4))
            .unwrap();
        let mut handles = Vec::new();
        for t in 0..4usize {
            let s = Arc::clone(&s);
            handles.push(thread::spawn(move || {
                let a = s.require(ArrayId(0)).unwrap();
                for offset in (t..n).step_by(4) {
                    a.write(offset, Value::Int(offset as i64)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = s.require(ArrayId(0)).unwrap().snapshot();
        assert!(snap
            .iter()
            .enumerate()
            .all(|(i, v)| *v == Some(Value::Int(i as i64))));
    }

    #[test]
    fn racing_writers_to_one_cell_produce_exactly_one_winner() {
        let s = Arc::new(SharedArrayStore::<usize>::new());
        s.allocate(
            ArrayId(0),
            "r",
            ArrayShape::vector(1),
            Partitioning::new(1, 8, 1),
        )
        .unwrap();
        let wins = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..8usize {
            let s = Arc::clone(&s);
            let wins = Arc::clone(&wins);
            handles.push(thread::spawn(move || {
                let a = s.require(ArrayId(0)).unwrap();
                if a.write(0, Value::Int(t as i64)).is_ok() {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1);
        assert!(s.require(ArrayId(0)).unwrap().peek(0).is_some());
    }

    #[test]
    fn store_stats_track_allocations() {
        let s = SharedArrayStore::<usize>::new();
        assert_eq!(s.stats(), StoreStats::default());
        s.allocate(
            ArrayId(0),
            "a",
            ArrayShape::vector(4),
            Partitioning::new(4, 8, 1),
        )
        .unwrap();
        let one = s.stats();
        assert_eq!(one.live_arrays, 1);
        assert_eq!(one.peak_arrays, 1);
        assert!(one.live_bytes >= 4 * std::mem::size_of::<Value>());
        assert_eq!(one.live_bytes, one.peak_bytes);
        s.allocate(
            ArrayId(1),
            "b",
            ArrayShape::matrix(8, 8),
            Partitioning::new(64, 8, 2),
        )
        .unwrap();
        let two = s.stats();
        assert_eq!(two.live_arrays, 2);
        assert_eq!(two.peak_arrays, 2);
        assert!(two.live_bytes > one.live_bytes);
        // No deallocation yet: live always equals peak.
        assert_eq!(two.live_bytes, two.peak_bytes);
        // Failed allocations leave the counters untouched.
        assert!(s
            .allocate(
                ArrayId(1),
                "dup",
                ArrayShape::vector(1),
                Partitioning::new(1, 8, 1)
            )
            .is_err());
        assert_eq!(s.stats(), two);
    }
}
