//! I-structure array memory for the PODS reproduction.
//!
//! This crate implements the storage substrate described in the paper
//! *Exploiting Iteration-Level Parallelism in Dataflow Programs* (Bic, Roy,
//! Nagel): single-assignment arrays ("I-structures") with presence bits,
//! deferred-read queues, per-PE row-major page/segment partitioning, array
//! headers recording each PE's area of responsibility, and a software page
//! cache for remote elements.
//!
//! The crate is deliberately independent of the machine simulator: deferred
//! reads are tagged with a caller-supplied token type so that the simulator
//! can record which subcompact process (SP) instance and operand slot must be
//! re-activated when the element is eventually written.
//!
//! # Quick example
//!
//! ```
//! use pods_istructure::{ArrayShape, Partitioning, ArrayHeader, LocalArrayStore, Value};
//!
//! // A 6 x 256 array distributed over 4 PEs with 32-element pages
//! // (the example from Figure 4 of the paper).
//! let shape = ArrayShape::new(vec![6, 256]);
//! let part = Partitioning::new(shape.len(), 32, 4);
//! let header = ArrayHeader::new(0.into(), "a", shape, part);
//!
//! // PE 0 owns the first 12 pages = 384 elements = the first 1.5 rows.
//! assert_eq!(header.partitioning().segment_of(0.into()).element_range(), 0..384);
//!
//! // Local store for PE 0 accepts writes to its segment and enforces
//! // single assignment.
//! let mut store: LocalArrayStore<u32> = LocalArrayStore::new(&header, 0.into());
//! store.write(10, Value::Float(1.5)).unwrap();
//! assert!(store.write(10, Value::Float(2.0)).is_err());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod error;
mod header;
mod layout;
mod memory;
pub mod shared;
mod store;
mod value;

pub use cache::{CacheStats, PageCache, PageCopy};
pub use error::IStructureError;
pub use header::{ArrayHeader, ArrayId};
pub use layout::{ArrayShape, DimRange, Partitioning, Segment};
pub use memory::{ArrayMemory, ReadOutcome, WriteOutcome};
pub use shared::{SharedArray, SharedArrayStore, SharedReadResult, StoreStats};
pub use store::{LocalArrayStore, ReadResult};
pub use value::Value;

/// Identifier of a processing element (PE).
///
/// PEs are numbered `0..num_pes`. The type is a plain newtype so that PE
/// indices cannot be confused with array offsets or page numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PeId(pub usize);

impl PeId {
    /// Returns the numeric index of this PE.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for PeId {
    fn from(value: usize) -> Self {
        PeId(value)
    }
}

impl std::fmt::Display for PeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PE{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_id_roundtrip() {
        let pe: PeId = 7.into();
        assert_eq!(pe.index(), 7);
        assert_eq!(pe.to_string(), "PE7");
    }
}
