//! Software page cache for remote array elements.
//!
//! When a PE reads an element held by another PE, the owner extracts the
//! entire page containing the element and ships it back; the requesting PE
//! installs it in a software cache so that later reads of nearby elements hit
//! locally (§4, "remote data caching"). Because of single assignment a cached
//! value can never become stale, so there is no invalidation protocol — but a
//! cached page may contain *absent* elements (they had not been written when
//! the page was copied), in which case the same page may be fetched again
//! later.

use crate::header::ArrayId;
use crate::value::Value;
use std::collections::HashMap;

/// A copy of one page of a remote array.
///
/// Elements that had not yet been written when the page was extracted are
/// `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct PageCopy {
    /// The array the page belongs to.
    pub array: ArrayId,
    /// The page index within the array.
    pub page: usize,
    /// Global offset of the first element of the page.
    pub base_offset: usize,
    /// The (possibly partial) element values.
    pub elements: Vec<Option<Value>>,
}

impl PageCopy {
    /// Number of elements the page copy carries (present or absent).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Returns `true` when the copy carries no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Number of elements that were present when the page was copied.
    pub fn present_count(&self) -> usize {
        self.elements.iter().filter(|e| e.is_some()).count()
    }

    /// Looks up a global offset inside the page copy.
    pub fn get(&self, offset: usize) -> Option<Value> {
        if offset < self.base_offset {
            return None;
        }
        self.elements
            .get(offset - self.base_offset)
            .copied()
            .flatten()
    }
}

/// Hit/miss counters for one PE's page cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Remote reads satisfied from the cache.
    pub hits: u64,
    /// Remote reads that had to go to the owning PE.
    pub misses: u64,
    /// Pages installed (including re-fetches of partially filled pages).
    pub pages_installed: u64,
}

impl CacheStats {
    /// Hit ratio in `[0, 1]`; zero when no lookups occurred.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The per-PE software cache of remote pages.
#[derive(Debug, Clone, Default)]
pub struct PageCache {
    pages: HashMap<(ArrayId, usize), PageCopy>,
    stats: CacheStats,
}

impl PageCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PageCache::default()
    }

    /// Looks up the value of a remote element.
    ///
    /// Returns `Some` only when the containing page is cached *and* the
    /// element was present in the cached copy. Updates hit/miss statistics.
    pub fn lookup(&mut self, array: ArrayId, page: usize, offset: usize) -> Option<Value> {
        let found = self
            .pages
            .get(&(array, page))
            .and_then(|copy| copy.get(offset));
        match found {
            Some(v) => {
                self.stats.hits += 1;
                Some(v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up without touching statistics (used by tests and diagnostics).
    pub fn peek(&self, array: ArrayId, page: usize, offset: usize) -> Option<Value> {
        self.pages
            .get(&(array, page))
            .and_then(|copy| copy.get(offset))
    }

    /// Installs (or replaces) a page copy received from the owning PE.
    pub fn install(&mut self, copy: PageCopy) {
        self.stats.pages_installed += 1;
        self.pages.insert((copy.array, copy.page), copy);
    }

    /// Returns `true` when the given page is cached (even partially).
    pub fn contains_page(&self, array: ArrayId, page: usize) -> bool {
        self.pages.contains_key(&(array, page))
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Returns `true` when no pages are cached.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops all cached pages (statistics are preserved).
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(array: usize, page_idx: usize, base: usize, values: Vec<Option<Value>>) -> PageCopy {
        PageCopy {
            array: ArrayId(array),
            page: page_idx,
            base_offset: base,
            elements: values,
        }
    }

    #[test]
    fn lookup_hits_after_install() {
        let mut cache = PageCache::new();
        assert_eq!(cache.lookup(ArrayId(0), 1, 33), None);
        cache.install(page(
            0,
            1,
            32,
            vec![Some(Value::Int(1)), Some(Value::Int(2)), None],
        ));
        assert_eq!(cache.lookup(ArrayId(0), 1, 33), Some(Value::Int(2)));
        assert_eq!(cache.lookup(ArrayId(0), 1, 34), None, "absent element");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.pages_installed, 1);
        assert!(stats.hit_ratio() > 0.3 && stats.hit_ratio() < 0.4);
    }

    #[test]
    fn reinstalling_a_page_replaces_it() {
        let mut cache = PageCache::new();
        cache.install(page(0, 0, 0, vec![None, None]));
        assert_eq!(cache.peek(ArrayId(0), 0, 1), None);
        cache.install(page(
            0,
            0,
            0,
            vec![Some(Value::Int(9)), Some(Value::Int(8))],
        ));
        assert_eq!(cache.peek(ArrayId(0), 0, 1), Some(Value::Int(8)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().pages_installed, 2);
    }

    #[test]
    fn pages_are_keyed_by_array_and_index() {
        let mut cache = PageCache::new();
        cache.install(page(0, 3, 96, vec![Some(Value::Int(1))]));
        cache.install(page(1, 3, 96, vec![Some(Value::Int(2))]));
        assert_eq!(cache.peek(ArrayId(0), 3, 96), Some(Value::Int(1)));
        assert_eq!(cache.peek(ArrayId(1), 3, 96), Some(Value::Int(2)));
        assert!(cache.contains_page(ArrayId(0), 3));
        assert!(!cache.contains_page(ArrayId(0), 4));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn page_copy_accessors() {
        let p = page(
            0,
            2,
            64,
            vec![Some(Value::Int(5)), None, Some(Value::Int(6))],
        );
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.present_count(), 2);
        assert_eq!(p.get(64), Some(Value::Int(5)));
        assert_eq!(p.get(65), None);
        assert_eq!(p.get(63), None, "offsets below the page base are absent");
        assert_eq!(p.get(70), None, "offsets beyond the page are absent");
    }

    #[test]
    fn hit_ratio_is_zero_without_lookups() {
        assert_eq!(CacheStats::default().hit_ratio(), 0.0);
    }
}
