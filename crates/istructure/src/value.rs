//! Run-time values stored in I-structures and circulated as dataflow tokens.

use crate::header::ArrayId;

/// A run-time value.
///
/// The PODS execution model circulates scalar values as tokens and stores
/// them into I-structure array elements. Integers and floats are kept
/// distinct because the simulated iPSC/2 timing model (paper §5.1) charges
/// very different latencies for integer and floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Value {
    /// A 64-bit signed integer (loop indices, bounds, dimensions).
    Int(i64),
    /// A 64-bit IEEE float (the scientific payload of SIMPLE).
    Float(f64),
    /// A boolean (predicate results feeding switch operators).
    Bool(bool),
    /// A reference to an allocated I-structure array.
    ArrayRef(ArrayId),
    /// The unit value produced by operators executed for effect only.
    #[default]
    Unit,
}

impl Value {
    /// Interprets the value as a float.
    ///
    /// Integers and booleans are promoted; array references and unit map to
    /// `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::Float(f) => Some(f),
            Value::Bool(b) => Some(if b { 1.0 } else { 0.0 }),
            Value::ArrayRef(_) | Value::Unit => None,
        }
    }

    /// Interprets the value as an integer (floats are truncated toward zero).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::Float(f) => Some(f as i64),
            Value::Bool(b) => Some(i64::from(b)),
            Value::ArrayRef(_) | Value::Unit => None,
        }
    }

    /// Interprets the value as a boolean.
    ///
    /// Numbers are truthy when non-zero, mirroring the switch-operator
    /// semantics of the dataflow graphs.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            Value::Int(i) => Some(i != 0),
            Value::Float(f) => Some(f != 0.0),
            Value::ArrayRef(_) | Value::Unit => None,
        }
    }

    /// Returns the array reference carried by this value, if any.
    pub fn as_array(&self) -> Option<ArrayId> {
        match *self {
            Value::ArrayRef(id) => Some(id),
            _ => None,
        }
    }

    /// Returns `true` when the value is numeric (integer or float).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Returns `true` when the value is a floating-point number.
    ///
    /// The machine timing model uses this to decide whether an arithmetic
    /// operation should be charged at integer or floating-point cost.
    pub fn is_float(&self) -> bool {
        matches!(self, Value::Float(_))
    }
}

impl From<i64> for Value {
    fn from(value: i64) -> Self {
        Value::Int(value)
    }
}

impl From<f64> for Value {
    fn from(value: f64) -> Self {
        Value::Float(value)
    }
}

impl From<bool> for Value {
    fn from(value: bool) -> Self {
        Value::Bool(value)
    }
}

impl From<ArrayId> for Value {
    fn from(value: ArrayId) -> Self {
        Value::ArrayRef(value)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::ArrayRef(id) => write!(f, "array#{}", id.index()),
            Value::Unit => write!(f, "()"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_conversions() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Float(2.5).as_i64(), Some(2));
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
        assert_eq!(Value::Unit.as_f64(), None);
    }

    #[test]
    fn truthiness() {
        assert_eq!(Value::Int(0).as_bool(), Some(false));
        assert_eq!(Value::Int(-4).as_bool(), Some(true));
        assert_eq!(Value::Float(0.0).as_bool(), Some(false));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Unit.as_bool(), None);
    }

    #[test]
    fn float_detection() {
        assert!(Value::Float(1.0).is_float());
        assert!(!Value::Int(1).is_float());
        assert!(Value::Int(1).is_numeric());
        assert!(!Value::Unit.is_numeric());
    }

    #[test]
    fn display_is_nonempty() {
        for v in [
            Value::Int(1),
            Value::Float(1.5),
            Value::Bool(false),
            Value::ArrayRef(ArrayId::from(3usize)),
            Value::Unit,
        ] {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(4i64), Value::Int(4));
        assert_eq!(Value::from(4.0f64), Value::Float(4.0));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
