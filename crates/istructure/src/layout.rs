//! Row-major array layout, page partitioning, and PE segmentation.
//!
//! This module implements §4.1 of the paper:
//!
//! 1. an array is cut up row-major into fixed-size pages (32 elements on the
//!    simulated iPSC/2),
//! 2. pages are grouped into segments of approximately equal size which are
//!    assigned to PEs sequentially,
//! 3. each PE records its area of responsibility so the Range Filter can
//!    decide at run time which loop iterations to execute locally, and
//! 4. the *first-element-ownership* rule of §4.2.3 assigns every row of the
//!    index space to exactly one PE (the PE holding the row's first element),
//!    which keeps the distributed index subranges disjoint even when segment
//!    boundaries fall in the middle of a row.

use crate::PeId;
use std::ops::Range;

/// The shape (dimension sizes) of an array, stored row-major.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ArrayShape {
    dims: Vec<usize>,
}

impl ArrayShape {
    /// Creates a new shape from dimension sizes.
    ///
    /// A scalar-like empty shape is normalised to a one-element vector.
    pub fn new(dims: Vec<usize>) -> Self {
        if dims.is_empty() {
            ArrayShape { dims: vec![1] }
        } else {
            ArrayShape { dims }
        }
    }

    /// Creates a one-dimensional shape.
    pub fn vector(n: usize) -> Self {
        ArrayShape::new(vec![n])
    }

    /// Creates a two-dimensional shape (`rows` x `cols`).
    pub fn matrix(rows: usize, cols: usize) -> Self {
        ArrayShape::new(vec![rows, cols])
    }

    /// Returns the dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Returns `true` if any dimension is zero.
    pub fn is_degenerate(&self) -> bool {
        self.dims.contains(&0)
    }

    /// Returns the total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns `true` when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of elements in one "row", i.e. one slab of the first dimension.
    ///
    /// For a 1-D array this is 1 so that every element is its own row.
    pub fn row_len(&self) -> usize {
        self.dims[1..].iter().product::<usize>().max(1)
    }

    /// Number of rows (extent of the first dimension).
    pub fn num_rows(&self) -> usize {
        self.dims[0]
    }

    /// Computes the row-major offset of a multi-dimensional index.
    ///
    /// Returns `None` when the number of indices does not match the number of
    /// dimensions or any index is out of range. Indices are zero-based.
    pub fn offset_of(&self, indices: &[i64]) -> Option<usize> {
        if indices.len() != self.dims.len() {
            return None;
        }
        let mut offset: usize = 0;
        for (&idx, &dim) in indices.iter().zip(&self.dims) {
            if idx < 0 || (idx as usize) >= dim {
                return None;
            }
            offset = offset * dim + idx as usize;
        }
        Some(offset)
    }

    /// Inverse of [`ArrayShape::offset_of`]: recovers the multi-dimensional
    /// index of a row-major offset.
    ///
    /// Returns `None` when the offset is out of range.
    pub fn unflatten(&self, offset: usize) -> Option<Vec<usize>> {
        if offset >= self.len() {
            return None;
        }
        let mut rem = offset;
        let mut out = vec![0usize; self.dims.len()];
        for k in (0..self.dims.len()).rev() {
            out[k] = rem % self.dims[k];
            rem /= self.dims[k];
        }
        Some(out)
    }
}

impl std::fmt::Display for ArrayShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

/// An inclusive index range along one dimension (`start..=end`).
///
/// This is the form stored in the array header and consumed by the Range
/// Filter: `max(init, start)` / `min(n, end)` per Figure 5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimRange {
    /// First index of the range (inclusive).
    pub start: i64,
    /// Last index of the range (inclusive).
    pub end: i64,
}

impl DimRange {
    /// Creates a new inclusive range.
    pub fn new(start: i64, end: i64) -> Self {
        DimRange { start, end }
    }

    /// Returns `true` when the range contains no indices.
    pub fn is_empty(&self) -> bool {
        self.end < self.start
    }

    /// Number of indices in the range.
    pub fn len(&self) -> usize {
        if self.is_empty() {
            0
        } else {
            (self.end - self.start + 1) as usize
        }
    }

    /// Returns `true` when `idx` lies inside the range.
    pub fn contains(&self, idx: i64) -> bool {
        idx >= self.start && idx <= self.end
    }

    /// Intersects two ranges.
    pub fn intersect(&self, other: &DimRange) -> DimRange {
        DimRange::new(self.start.max(other.start), self.end.min(other.end))
    }

    /// A canonical empty range.
    pub fn empty() -> Self {
        DimRange { start: 0, end: -1 }
    }
}

impl std::fmt::Display for DimRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "[]")
        } else {
            write!(f, "[{}..={}]", self.start, self.end)
        }
    }
}

/// The portion of an array assigned to a single PE: a contiguous run of
/// pages and the corresponding run of elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    pe: PeId,
    pages: Range<usize>,
    elements: Range<usize>,
}

impl Segment {
    /// The PE that owns this segment.
    pub fn pe(&self) -> PeId {
        self.pe
    }

    /// The pages assigned to this segment.
    pub fn page_range(&self) -> Range<usize> {
        self.pages.clone()
    }

    /// The row-major element offsets held by this segment.
    pub fn element_range(&self) -> Range<usize> {
        self.elements.clone()
    }

    /// Number of elements in the segment.
    pub fn len(&self) -> usize {
        self.elements.end - self.elements.start
    }

    /// Returns `true` when the segment holds no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Returns `true` when the segment holds the given offset.
    pub fn contains(&self, offset: usize) -> bool {
        self.elements.contains(&offset)
    }
}

/// Row-major page partitioning of an array over a set of PEs (§4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    total_elements: usize,
    page_size: usize,
    num_pes: usize,
    num_pages: usize,
    segments: Vec<Segment>,
}

impl Partitioning {
    /// Partitions `total_elements` into pages of `page_size` elements and
    /// distributes the pages over `num_pes` PEs in contiguous, approximately
    /// equal segments.
    ///
    /// # Panics
    ///
    /// Panics if `page_size` or `num_pes` is zero.
    pub fn new(total_elements: usize, page_size: usize, num_pes: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        assert!(num_pes > 0, "number of PEs must be positive");
        let num_pages = total_elements.div_ceil(page_size).max(1);
        let base = num_pages / num_pes;
        let extra = num_pages % num_pes;
        let mut segments = Vec::with_capacity(num_pes);
        let mut next_page = 0usize;
        for pe in 0..num_pes {
            // The first `extra` PEs receive one additional page so that the
            // segment sizes differ by at most one page.
            let count = base + usize::from(pe < extra);
            let pages = next_page..next_page + count;
            next_page += count;
            let elem_start = (pages.start * page_size).min(total_elements);
            let elem_end = (pages.end * page_size).min(total_elements);
            segments.push(Segment {
                pe: PeId(pe),
                pages,
                elements: elem_start..elem_end,
            });
        }
        Partitioning {
            total_elements,
            page_size,
            num_pes,
            num_pages,
            segments,
        }
    }

    /// A partitioning that keeps the whole array on a single PE.
    pub fn local(total_elements: usize, page_size: usize) -> Self {
        Partitioning::new(total_elements, page_size, 1)
    }

    /// A partitioning in which every page is owned by one specific PE of a
    /// machine with `num_pes` PEs (used for non-distributed allocations).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` or `num_pes` is zero, or `owner` is out of range.
    pub fn single_owner(
        total_elements: usize,
        page_size: usize,
        num_pes: usize,
        owner: PeId,
    ) -> Self {
        assert!(page_size > 0, "page size must be positive");
        assert!(num_pes > 0, "number of PEs must be positive");
        assert!(owner.index() < num_pes, "owner PE out of range");
        let num_pages = total_elements.div_ceil(page_size).max(1);
        let segments = (0..num_pes)
            .map(|pe| {
                if pe == owner.index() {
                    Segment {
                        pe: PeId(pe),
                        pages: 0..num_pages,
                        elements: 0..total_elements,
                    }
                } else {
                    Segment {
                        pe: PeId(pe),
                        pages: 0..0,
                        elements: 0..0,
                    }
                }
            })
            .collect();
        Partitioning {
            total_elements,
            page_size,
            num_pes,
            num_pages,
            segments,
        }
    }

    /// Total number of elements covered.
    pub fn total_elements(&self) -> usize {
        self.total_elements
    }

    /// Page size in elements.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of PEs participating in the distribution.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Total number of pages.
    pub fn num_pages(&self) -> usize {
        self.num_pages
    }

    /// The segment held by the given PE.
    ///
    /// # Panics
    ///
    /// Panics if the PE index is out of range.
    pub fn segment_of(&self, pe: PeId) -> &Segment {
        &self.segments[pe.index()]
    }

    /// All segments in PE order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The page containing a given element offset.
    pub fn page_of(&self, offset: usize) -> usize {
        offset / self.page_size
    }

    /// The element offsets covered by a page (clipped to the array length).
    pub fn page_elements(&self, page: usize) -> Range<usize> {
        let start = (page * self.page_size).min(self.total_elements);
        let end = ((page + 1) * self.page_size).min(self.total_elements);
        start..end
    }

    /// The PE owning the page that contains `offset`.
    ///
    /// Offsets beyond the array are attributed to the last PE; callers are
    /// expected to bounds-check separately.
    pub fn owner_of(&self, offset: usize) -> PeId {
        let page = self.page_of(offset);
        for seg in &self.segments {
            if seg.pages.contains(&page) {
                return seg.pe;
            }
        }
        PeId(self.num_pes - 1)
    }

    /// Returns `true` when `offset` lies in `pe`'s segment.
    pub fn is_local(&self, pe: PeId, offset: usize) -> bool {
        self.segment_of(pe).contains(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_offsets_are_row_major() {
        let shape = ArrayShape::matrix(6, 256);
        assert_eq!(shape.len(), 1536);
        assert_eq!(shape.offset_of(&[0, 0]), Some(0));
        assert_eq!(shape.offset_of(&[0, 255]), Some(255));
        assert_eq!(shape.offset_of(&[1, 0]), Some(256));
        assert_eq!(shape.offset_of(&[5, 255]), Some(1535));
        assert_eq!(shape.offset_of(&[6, 0]), None);
        assert_eq!(shape.offset_of(&[0, 256]), None);
        assert_eq!(shape.offset_of(&[0]), None);
    }

    #[test]
    fn shape_unflatten_inverts_offsets() {
        let shape = ArrayShape::new(vec![3, 4, 5]);
        for offset in 0..shape.len() {
            let idx = shape.unflatten(offset).unwrap();
            let back = shape
                .offset_of(&idx.iter().map(|&i| i as i64).collect::<Vec<_>>())
                .unwrap();
            assert_eq!(back, offset);
        }
        assert_eq!(shape.unflatten(shape.len()), None);
    }

    #[test]
    fn one_dimensional_rows_are_single_elements() {
        let shape = ArrayShape::vector(10);
        assert_eq!(shape.row_len(), 1);
        assert_eq!(shape.num_rows(), 10);
    }

    #[test]
    fn paper_figure4_partitioning() {
        // 6 x 256 array over 4 PEs with 32-element pages: 48 pages, 12 per PE.
        let shape = ArrayShape::matrix(6, 256);
        let part = Partitioning::new(shape.len(), 32, 4);
        assert_eq!(part.num_pages(), 48);
        for pe in 0..4 {
            let seg = part.segment_of(PeId(pe));
            assert_eq!(seg.page_range().len(), 12);
            assert_eq!(seg.len(), 384);
        }
        // PE1 (index 0) holds the first 1.5 rows.
        assert_eq!(part.segment_of(PeId(0)).element_range(), 0..384);
        assert_eq!(part.owner_of(0), PeId(0));
        assert_eq!(part.owner_of(383), PeId(0));
        assert_eq!(part.owner_of(384), PeId(1));
        assert_eq!(part.owner_of(1535), PeId(3));
    }

    #[test]
    fn uneven_page_counts_differ_by_at_most_one() {
        let part = Partitioning::new(1000, 32, 6);
        let counts: Vec<usize> = part
            .segments()
            .iter()
            .map(|s| s.page_range().len())
            .collect();
        let min = counts.iter().min().unwrap();
        let max = counts.iter().max().unwrap();
        assert!(max - min <= 1);
        assert_eq!(counts.iter().sum::<usize>(), part.num_pages());
    }

    #[test]
    fn every_offset_has_exactly_one_owner() {
        let part = Partitioning::new(500, 7, 5);
        for offset in 0..500 {
            let owner = part.owner_of(offset);
            let mut holders = 0;
            for seg in part.segments() {
                if seg.contains(offset) {
                    holders += 1;
                    assert_eq!(seg.pe(), owner);
                }
            }
            assert_eq!(holders, 1, "offset {offset} held by {holders} segments");
        }
    }

    #[test]
    fn small_array_on_many_pes_leaves_trailing_pes_empty() {
        let part = Partitioning::new(10, 32, 8);
        assert_eq!(part.num_pages(), 1);
        assert_eq!(part.segment_of(PeId(0)).len(), 10);
        for pe in 1..8 {
            assert!(part.segment_of(PeId(pe)).is_empty());
        }
    }

    #[test]
    fn dim_range_operations() {
        let r = DimRange::new(2, 5);
        assert_eq!(r.len(), 4);
        assert!(r.contains(2) && r.contains(5) && !r.contains(6));
        assert!(DimRange::empty().is_empty());
        assert_eq!(r.intersect(&DimRange::new(4, 9)), DimRange::new(4, 5));
        assert!(r.intersect(&DimRange::new(6, 9)).is_empty());
        assert_eq!(DimRange::new(1, 1).len(), 1);
    }

    #[test]
    fn single_owner_partitioning_assigns_everything_to_one_pe() {
        let part = Partitioning::single_owner(100, 32, 4, PeId(2));
        assert_eq!(part.segment_of(PeId(2)).len(), 100);
        for pe in [0, 1, 3] {
            assert!(part.segment_of(PeId(pe)).is_empty());
        }
        for offset in [0, 50, 99] {
            assert_eq!(part.owner_of(offset), PeId(2));
        }
    }

    #[test]
    fn page_elements_are_clipped() {
        let part = Partitioning::new(40, 32, 2);
        assert_eq!(part.page_elements(0), 0..32);
        assert_eq!(part.page_elements(1), 32..40);
    }

    #[test]
    fn display_impls() {
        assert_eq!(ArrayShape::matrix(3, 4).to_string(), "3x4");
        assert_eq!(DimRange::new(0, 3).to_string(), "[0..=3]");
        assert_eq!(DimRange::empty().to_string(), "[]");
    }
}
