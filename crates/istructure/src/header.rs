//! Array identifiers and per-PE array headers.
//!
//! Every PE builds an identical header when the distributing allocate
//! operator broadcasts an allocation request (§4.1). The header records the
//! array dimensions and, for each dimension, the index subrange this PE is
//! responsible for. The Range Filter consults the header at run time to
//! restrict loop bounds (Figure 5) and the first-element-ownership rule of
//! §4.2.3 is implemented here as well.

use crate::layout::{ArrayShape, DimRange, Partitioning};
use crate::PeId;

/// Identifier of an allocated I-structure array.
///
/// All PEs agree on the identifier of a given array because the allocating
/// PE's Array Manager broadcasts the identifier together with the remote
/// allocation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ArrayId(pub usize);

impl ArrayId {
    /// Returns the numeric index of this array identifier.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ArrayId {
    fn from(value: usize) -> Self {
        ArrayId(value)
    }
}

impl std::fmt::Display for ArrayId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "array#{}", self.0)
    }
}

/// Per-PE description of a distributed array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayHeader {
    id: ArrayId,
    name: String,
    shape: ArrayShape,
    partitioning: Partitioning,
}

impl ArrayHeader {
    /// Builds a header for an array with the given shape and partitioning.
    pub fn new(
        id: ArrayId,
        name: impl Into<String>,
        shape: ArrayShape,
        partitioning: Partitioning,
    ) -> Self {
        ArrayHeader {
            id,
            name: name.into(),
            shape,
            partitioning,
        }
    }

    /// The array identifier.
    pub fn id(&self) -> ArrayId {
        self.id
    }

    /// The source-level name of the array (for diagnostics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The array shape.
    pub fn shape(&self) -> &ArrayShape {
        &self.shape
    }

    /// The page/segment partitioning of the array.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Returns `true` when the array holds no elements.
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }

    /// Row-major offset of a multi-dimensional (zero-based) index.
    pub fn offset_of(&self, indices: &[i64]) -> Option<usize> {
        self.shape.offset_of(indices)
    }

    /// The PE owning the element at `offset`.
    pub fn owner_of(&self, offset: usize) -> PeId {
        self.partitioning.owner_of(offset)
    }

    /// Returns `true` when `offset` is stored in `pe`'s local segment.
    pub fn is_local(&self, pe: PeId, offset: usize) -> bool {
        self.partitioning.is_local(pe, offset)
    }

    /// Rows of the first dimension that `pe` *owns* under the
    /// first-element-ownership rule of §4.2.3: a PE is responsible for every
    /// row whose first element lies in its segment.
    ///
    /// The returned range is empty when the PE owns no row.
    pub fn owned_rows(&self, pe: PeId) -> DimRange {
        let row_len = self.shape.row_len();
        let num_rows = self.shape.num_rows();
        let seg = self.partitioning.segment_of(pe).element_range();
        if seg.is_empty() {
            return DimRange::empty();
        }
        // First row whose first element (offset row * row_len) is >= seg.start.
        let first = seg.start.div_ceil(row_len);
        // Last row whose first element is < seg.end.
        if seg.end == 0 {
            return DimRange::empty();
        }
        let last_exclusive = seg.end.div_ceil(row_len).min(num_rows);
        let first = first.min(num_rows);
        if first >= last_exclusive {
            DimRange::empty()
        } else {
            DimRange::new(first as i64, last_exclusive as i64 - 1)
        }
    }

    /// Rows of the first dimension of which `pe` holds at least one element
    /// (its "area of responsibility" in the sense of Figure 4).
    pub fn touched_rows(&self, pe: PeId) -> DimRange {
        let row_len = self.shape.row_len();
        let seg = self.partitioning.segment_of(pe).element_range();
        if seg.is_empty() {
            return DimRange::empty();
        }
        let first = seg.start / row_len;
        let last = (seg.end - 1) / row_len;
        DimRange::new(first as i64, last as i64)
    }

    /// The subrange of the second dimension that `pe` holds locally within a
    /// given row (used when a Range Filter is placed on an inner loop level;
    /// cf. the discussion of the `j` ranges for PE1 in §4.2.2).
    ///
    /// For arrays with fewer than two dimensions the full row is returned
    /// when the row is local and an empty range otherwise.
    pub fn local_cols_in_row(&self, pe: PeId, row: i64) -> DimRange {
        let row_len = self.shape.row_len() as i64;
        let num_rows = self.shape.num_rows() as i64;
        if row < 0 || row >= num_rows {
            return DimRange::empty();
        }
        let seg = self.partitioning.segment_of(pe).element_range();
        if seg.is_empty() {
            return DimRange::empty();
        }
        let row_start = row * row_len;
        let row_end = row_start + row_len - 1;
        let local = DimRange::new(seg.start as i64, seg.end as i64 - 1)
            .intersect(&DimRange::new(row_start, row_end));
        if local.is_empty() {
            DimRange::empty()
        } else {
            DimRange::new(local.start - row_start, local.end - row_start)
        }
    }

    /// The Range-Filter bounds for a loop writing this array at nesting level
    /// `dim` (0 = outermost).
    ///
    /// * `dim == 0`: the rows owned by `pe` under the first-element rule.
    /// * `dim == 1`: the local column subrange within `row` (the outer index
    ///   must be supplied). A `row` outside the array has no owner, so its
    ///   iteration space cannot be partitioned by ownership; the whole
    ///   dimension is assigned to exactly one deterministic PE — the owner
    ///   of the array edge nearest the row — so the (necessarily faulting)
    ///   iterations execute once, exactly like a sequential run, instead of
    ///   being silently dropped by every PE clamping to an empty range.
    /// * deeper dims: the full extent of that dimension — the paper
    ///   eliminates RFs below the filtered level, so the entire range is
    ///   needed (§4.2.3).
    pub fn responsibility(&self, pe: PeId, dim: usize, outer_row: Option<i64>) -> DimRange {
        match dim {
            0 => self.owned_rows(pe),
            1 => match outer_row {
                Some(row) if row < 0 || row >= self.shape.num_rows() as i64 => {
                    let edge_offset = if row < 0 { 0 } else { self.shape.len() - 1 };
                    if self.partitioning.owner_of(edge_offset) == pe {
                        DimRange::new(0, self.shape.dims().get(1).copied().unwrap_or(1) as i64 - 1)
                    } else {
                        DimRange::empty()
                    }
                }
                Some(row) => self.local_cols_in_row(pe, row),
                None => DimRange::new(0, self.shape.dims().get(1).copied().unwrap_or(1) as i64 - 1),
            },
            d => {
                let extent = self.shape.dims().get(d).copied().unwrap_or(1);
                DimRange::new(0, extent as i64 - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure4_header() -> ArrayHeader {
        let shape = ArrayShape::matrix(6, 256);
        let part = Partitioning::new(shape.len(), 32, 4);
        ArrayHeader::new(ArrayId(1), "a", shape, part)
    }

    #[test]
    fn first_element_rule_matches_figure6() {
        // Figure 6: PE1 (index 0) is responsible for rows 0 and 1, PE2 only
        // for row 2, PE3 for rows 3 and 4, PE4 for row 5.
        let h = figure4_header();
        assert_eq!(h.owned_rows(PeId(0)), DimRange::new(0, 1));
        assert_eq!(h.owned_rows(PeId(1)), DimRange::new(2, 2));
        assert_eq!(h.owned_rows(PeId(2)), DimRange::new(3, 4));
        assert_eq!(h.owned_rows(PeId(3)), DimRange::new(5, 5));
    }

    #[test]
    fn owned_rows_are_a_partition_of_all_rows() {
        for (rows, cols, pes, page) in [
            (6usize, 256usize, 4usize, 32usize),
            (64, 64, 32, 32),
            (17, 9, 5, 32),
            (100, 3, 7, 8),
            (5, 5, 8, 32),
        ] {
            let shape = ArrayShape::matrix(rows, cols);
            let part = Partitioning::new(shape.len(), page, pes);
            let h = ArrayHeader::new(ArrayId(0), "t", shape, part);
            let mut seen = vec![0usize; rows];
            for pe in 0..pes {
                let r = h.owned_rows(PeId(pe));
                if r.is_empty() {
                    continue;
                }
                for row in r.start..=r.end {
                    seen[row as usize] += 1;
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "rows not covered exactly once for {rows}x{cols} on {pes} PEs: {seen:?}"
            );
        }
    }

    #[test]
    fn touched_rows_include_partial_rows() {
        let h = figure4_header();
        // PE2 (index 1) holds the second half of row 1 and all of row 2
        // (its segment is elements 384..768, i.e. exactly 1.5 rows).
        assert_eq!(h.touched_rows(PeId(1)), DimRange::new(1, 2));
        // PE3 (index 2) holds rows 3 and the first half of row 4.
        assert_eq!(h.touched_rows(PeId(2)), DimRange::new(3, 4));
    }

    #[test]
    fn local_cols_follow_segment_boundaries() {
        let h = figure4_header();
        // PE1 holds all of row 0 and the first half of row 1 (cf. §4.2.2:
        // "the RF in PE1 produces the j range 0:255 when i is 0 but only
        // 0:127 when i is 1").
        assert_eq!(h.local_cols_in_row(PeId(0), 0), DimRange::new(0, 255));
        assert_eq!(h.local_cols_in_row(PeId(0), 1), DimRange::new(0, 127));
        assert!(h.local_cols_in_row(PeId(0), 2).is_empty());
        assert_eq!(h.local_cols_in_row(PeId(1), 1), DimRange::new(128, 255));
        assert!(h.local_cols_in_row(PeId(0), 6).is_empty());
        assert!(h.local_cols_in_row(PeId(0), -1).is_empty());
    }

    #[test]
    fn responsibility_dispatches_by_dimension() {
        let h = figure4_header();
        assert_eq!(h.responsibility(PeId(0), 0, None), DimRange::new(0, 1));
        assert_eq!(h.responsibility(PeId(0), 1, Some(1)), DimRange::new(0, 127));
        // Below the filtered level the full extent is used.
        assert_eq!(h.responsibility(PeId(0), 2, None), DimRange::new(0, 0));
        assert_eq!(
            h.responsibility(PeId(3), 1, None),
            DimRange::new(0, 255),
            "without an outer index the full column range is conservative"
        );
    }

    #[test]
    fn out_of_range_rows_are_assigned_whole_to_one_edge_pe() {
        // An invalid outer row has no owner, so the whole inner dimension
        // goes to exactly one PE (the owner of the nearest array edge) and
        // is empty on every other PE: the union over PEs is the full
        // dimension — never the silently-empty range that would let
        // out-of-bounds iterations vanish.
        let h = figure4_header();
        let full = DimRange::new(0, 255);
        for row in [-1i64, -5, 6, 9] {
            let mut holders = 0;
            for pe in 0..4 {
                let r = h.responsibility(PeId(pe), 1, Some(row));
                if !r.is_empty() {
                    assert_eq!(r, full, "row {row} on PE{pe}");
                    holders += 1;
                }
            }
            assert_eq!(holders, 1, "row {row} must land on exactly one PE");
        }
        // Below the array: the owner of the first element; past the end:
        // the owner of the last element.
        assert_eq!(h.responsibility(PeId(0), 1, Some(-1)), full);
        assert_eq!(h.responsibility(PeId(3), 1, Some(6)), full);
    }

    #[test]
    fn one_dimensional_arrays_split_by_element() {
        let shape = ArrayShape::vector(100);
        let part = Partitioning::new(100, 10, 4);
        let h = ArrayHeader::new(ArrayId(2), "v", shape, part);
        assert_eq!(h.owned_rows(PeId(0)), DimRange::new(0, 29));
        assert_eq!(h.owned_rows(PeId(3)), DimRange::new(80, 99));
        let total: usize = (0..4).map(|pe| h.owned_rows(PeId(pe)).len()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn empty_segments_own_nothing() {
        let shape = ArrayShape::vector(8);
        let part = Partitioning::new(8, 32, 4);
        let h = ArrayHeader::new(ArrayId(3), "tiny", shape, part);
        assert_eq!(h.owned_rows(PeId(0)), DimRange::new(0, 7));
        for pe in 1..4 {
            assert!(h.owned_rows(PeId(pe)).is_empty());
            assert!(h.touched_rows(PeId(pe)).is_empty());
        }
    }

    #[test]
    fn header_accessors() {
        let h = figure4_header();
        assert_eq!(h.id(), ArrayId(1));
        assert_eq!(h.name(), "a");
        assert_eq!(h.len(), 1536);
        assert!(!h.is_empty());
        assert_eq!(h.offset_of(&[1, 2]), Some(258));
        assert_eq!(h.owner_of(258), PeId(0));
        assert!(h.is_local(PeId(0), 258));
        assert!(!h.is_local(PeId(1), 258));
        assert_eq!(ArrayId(5).to_string(), "array#5");
    }
}
