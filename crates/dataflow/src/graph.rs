//! The dataflow-graph intermediate representation.
//!
//! A program is a collection of *code blocks* (paper §3): one block for every
//! function body and one for every loop-nest level. Each block is a directed
//! acyclic graph of [`Operator`] nodes; arcs are recorded as each node's list
//! of input nodes. Loop circulation (switch / increment / `D`) is represented
//! inside the loop's own block, and the `L` / `LD` operators connect a parent
//! block to its children, exactly as in Figure 2 of the paper.

use crate::op::Operator;
use std::collections::HashMap;

/// Identifier of a code block within a [`DataflowProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub usize);

impl BlockId {
    /// Numeric index of the block.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a node within its code block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Numeric index of the node.
    pub fn index(self) -> usize {
        self.0
    }
}

/// What a code block corresponds to in the source program.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockKind {
    /// The body of a user function.
    FunctionBody {
        /// Function name.
        function: String,
    },
    /// One level of a loop nest.
    LoopLevel {
        /// The loop index variable.
        var: String,
        /// `true` for `downto` loops.
        descending: bool,
        /// Nesting depth within the enclosing function (0 = outermost loop).
        depth: usize,
        /// Ordinal of this loop within its function, in preorder. Used to
        /// correlate graph blocks with SP templates and loop analyses.
        ordinal: usize,
    },
}

/// One node of a code-block graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The node's identifier within its block.
    pub id: NodeId,
    /// The operator performed by the node.
    pub op: Operator,
    /// The nodes whose outputs feed this node, in operand order.
    pub inputs: Vec<NodeId>,
}

/// A code block: one scope of the dataflow program.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeBlock {
    /// The block identifier.
    pub id: BlockId,
    /// Human-readable name (function name or `function.loop_var`).
    pub name: String,
    /// What the block corresponds to.
    pub kind: BlockKind,
    /// The parent block, if any (function bodies have no parent).
    pub parent: Option<BlockId>,
    /// The nodes of the block in creation order (a valid topological order).
    pub nodes: Vec<Node>,
}

impl CodeBlock {
    /// Number of nodes in the block.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the block has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns the node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Verifies that the block is a DAG in which every arc points backwards
    /// (each node only consumes already-defined nodes) and returns a
    /// topological order (the creation order).
    ///
    /// Returns `None` when an arc points forward, which would indicate a
    /// builder bug.
    pub fn topological_order(&self) -> Option<Vec<NodeId>> {
        for node in &self.nodes {
            for input in &node.inputs {
                if input.index() >= node.id.index() {
                    return None;
                }
            }
        }
        Some(self.nodes.iter().map(|n| n.id).collect())
    }

    /// Iterates over the loop-entry (`L` / `LD`) nodes of this block together
    /// with their target blocks.
    pub fn loop_entries(&self) -> impl Iterator<Item = (&Node, BlockId)> {
        self.nodes.iter().filter_map(|n| match n.op {
            Operator::LoopEntry { target, .. } => Some((n, target)),
            _ => None,
        })
    }

    /// Counts the nodes for which `pred` holds.
    pub fn count_ops(&self, pred: impl Fn(&Operator) -> bool) -> usize {
        self.nodes.iter().filter(|n| pred(&n.op)).count()
    }
}

/// Aggregate statistics over a dataflow program, reported by the example
/// binaries and used in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GraphStats {
    /// Total number of code blocks.
    pub blocks: usize,
    /// Number of loop-level blocks.
    pub loop_blocks: usize,
    /// Total number of operator nodes.
    pub nodes: usize,
    /// Number of array-touching nodes (allocate, read, write).
    pub array_ops: usize,
    /// Number of `L`/`LD` operators.
    pub loop_entries: usize,
}

/// A complete dataflow program: all code blocks plus the mapping from
/// function names to their body blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct DataflowProgram {
    blocks: Vec<CodeBlock>,
    functions: HashMap<String, BlockId>,
}

impl DataflowProgram {
    /// Creates an empty program (used by the builder).
    pub(crate) fn new() -> Self {
        DataflowProgram {
            blocks: Vec::new(),
            functions: HashMap::new(),
        }
    }

    /// Adds a block and returns its identifier.
    pub(crate) fn add_block(
        &mut self,
        name: String,
        kind: BlockKind,
        parent: Option<BlockId>,
    ) -> BlockId {
        let id = BlockId(self.blocks.len());
        if let BlockKind::FunctionBody { function } = &kind {
            self.functions.insert(function.clone(), id);
        }
        self.blocks.push(CodeBlock {
            id,
            name,
            kind,
            parent,
            nodes: Vec::new(),
        });
        id
    }

    /// Appends a node to a block and returns its identifier.
    pub(crate) fn add_node(&mut self, block: BlockId, op: Operator, inputs: Vec<NodeId>) -> NodeId {
        let b = &mut self.blocks[block.index()];
        let id = NodeId(b.nodes.len());
        b.nodes.push(Node { id, op, inputs });
        id
    }

    /// All blocks in creation order.
    pub fn blocks(&self) -> &[CodeBlock] {
        &self.blocks
    }

    /// The block with the given identifier.
    pub fn block(&self, id: BlockId) -> &CodeBlock {
        &self.blocks[id.index()]
    }

    /// The body block of a function, if it exists.
    pub fn function_block(&self, name: &str) -> Option<&CodeBlock> {
        self.functions.get(name).map(|id| self.block(*id))
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Aggregate statistics over the whole program.
    pub fn stats(&self) -> GraphStats {
        let mut stats = GraphStats {
            blocks: self.blocks.len(),
            ..GraphStats::default()
        };
        for block in &self.blocks {
            if matches!(block.kind, BlockKind::LoopLevel { .. }) {
                stats.loop_blocks += 1;
            }
            stats.nodes += block.len();
            stats.array_ops += block.count_ops(|op| op.touches_arrays());
            stats.loop_entries += block.count_ops(|op| op.is_loop_entry());
        }
        stats
    }

    /// The child blocks of a block (targets of its `L`/`LD` operators), in
    /// operator order.
    pub fn children_of(&self, id: BlockId) -> Vec<BlockId> {
        self.block(id)
            .loop_entries()
            .map(|(_, target)| target)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Literal;

    #[test]
    fn build_and_query_a_tiny_program() {
        let mut p = DataflowProgram::new();
        let root = p.add_block(
            "main".into(),
            BlockKind::FunctionBody {
                function: "main".into(),
            },
            None,
        );
        let child = p.add_block(
            "main.i".into(),
            BlockKind::LoopLevel {
                var: "i".into(),
                descending: false,
                depth: 0,
                ordinal: 0,
            },
            Some(root),
        );
        let c0 = p.add_node(root, Operator::Constant(Literal::Int(0)), vec![]);
        let c9 = p.add_node(root, Operator::Constant(Literal::Int(9)), vec![]);
        p.add_node(
            root,
            Operator::LoopEntry {
                target: child,
                distributed: false,
            },
            vec![c0, c9],
        );

        assert_eq!(p.num_blocks(), 2);
        assert!(p.function_block("main").is_some());
        assert!(p.function_block("other").is_none());
        assert_eq!(p.children_of(root), vec![child]);
        assert_eq!(p.block(root).topological_order().unwrap().len(), 3);
        let stats = p.stats();
        assert_eq!(stats.blocks, 2);
        assert_eq!(stats.loop_blocks, 1);
        assert_eq!(stats.nodes, 3);
        assert_eq!(stats.loop_entries, 1);
    }

    #[test]
    fn forward_arcs_are_detected() {
        let block = CodeBlock {
            id: BlockId(0),
            name: "broken".into(),
            kind: BlockKind::FunctionBody {
                function: "broken".into(),
            },
            parent: None,
            nodes: vec![Node {
                id: NodeId(0),
                op: Operator::Return,
                inputs: vec![NodeId(1)],
            }],
        };
        assert_eq!(block.topological_order(), None);
    }
}
