//! Graphviz (DOT) export of dataflow programs, for inspection and debugging.

use crate::graph::{BlockKind, DataflowProgram};
use std::fmt::Write as _;

/// Renders the whole program as a DOT digraph with one cluster per code
/// block; `L`/`LD` operators are drawn as dashed arcs into the entered block.
pub fn to_dot(program: &DataflowProgram) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph pods {{");
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");
    for block in program.blocks() {
        let _ = writeln!(out, "  subgraph cluster_{} {{", block.id.index());
        let label = match &block.kind {
            BlockKind::FunctionBody { function } => format!("function {function}"),
            BlockKind::LoopLevel {
                var,
                descending,
                depth,
                ..
            } => format!(
                "loop {var}{} (depth {depth})",
                if *descending { " (descending)" } else { "" }
            ),
        };
        let _ = writeln!(out, "    label=\"{label}\";");
        for node in &block.nodes {
            let _ = writeln!(
                out,
                "    b{}_n{} [label=\"{}\"];",
                block.id.index(),
                node.id.index(),
                node.op.label().replace('"', "'")
            );
            for input in &node.inputs {
                let _ = writeln!(
                    out,
                    "    b{}_n{} -> b{}_n{};",
                    block.id.index(),
                    input.index(),
                    block.id.index(),
                    node.id.index()
                );
            }
        }
        let _ = writeln!(out, "  }}");
    }
    // Cross-block arcs for L / LD operators.
    for block in program.blocks() {
        for (node, target) in block.loop_entries() {
            let target_block = program.block(target);
            if let Some(first) = target_block.nodes.first() {
                let _ = writeln!(
                    out,
                    "  b{}_n{} -> b{}_n{} [style=dashed, label=\"L\"];",
                    block.id.index(),
                    node.id.index(),
                    target.index(),
                    first.id.index()
                );
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_program;
    use pods_idlang::compile;

    #[test]
    fn dot_output_contains_clusters_and_dashed_loop_arcs() {
        let hir =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i; } return a; }")
                .unwrap();
        let graph = build_program(&hir);
        let dot = to_dot(&graph);
        assert!(dot.starts_with("digraph pods {"));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("subgraph cluster_1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("alloc a"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
