//! Dataflow-graph IR and loop analysis for the PODS reproduction.
//!
//! This crate plays the role of the `.graph` stage of the paper's pipeline
//! (Figure 3): it turns the HIR produced by [`pods_idlang`] into per-code-block
//! dataflow graphs (one block per function body and per loop level, exactly
//! the granularity at which PODS later creates Subcompact Processes), and it
//! provides the loop-nest analysis — loop-carried-dependency detection and
//! distribution-target selection — that drives the PODS Partitioner.
//!
//! # Example
//!
//! ```
//! use pods_dataflow::{build_program, analyze_loops};
//!
//! let hir = pods_idlang::compile(
//!     "def main(n) { a = matrix(n, n);
//!        for i = 0 to n - 1 { for j = 0 to n - 1 { a[i, j] = i + j; } }
//!        return a; }",
//! )?;
//! let graph = build_program(&hir);
//! assert_eq!(graph.stats().loop_blocks, 2);
//!
//! let loops = analyze_loops(&hir);
//! assert!(loops[0].is_distributable());
//! # Ok::<(), pods_idlang::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod build;
pub mod dot;
pub mod graph;
pub mod op;

pub use analysis::{analyze_loops, find_loop, LoopInfo, LoopKey, WriteAccess};
pub use build::{build_program, collect_free_vars_stmts};
pub use dot::to_dot;
pub use graph::{BlockId, BlockKind, CodeBlock, DataflowProgram, GraphStats, Node, NodeId};
pub use op::{Literal, Operator};
