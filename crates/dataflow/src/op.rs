//! Dataflow-graph operators.
//!
//! The operator set mirrors the graphs produced for Id programs in the paper
//! (Figure 2): arithmetic/logic operators, the loop machinery (`L`, `LD`,
//! switch, increment, `D`), I-structure array operators, and the Range-Filter
//! bound operators inserted by the partitioner (Figure 5).

use pods_idlang::{BinaryOp, UnaryOp};

/// A literal constant embedded in the graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Literal {
    /// Integer constant.
    Int(i64),
    /// Floating-point constant.
    Float(f64),
    /// Boolean constant.
    Bool(bool),
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v}"),
            Literal::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// A dataflow operator (one node of a code-block graph).
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// A value imported into the code block from its parent scope (a formal
    /// parameter of the block).
    Param {
        /// Name of the imported value.
        name: String,
    },
    /// A literal constant.
    Constant(Literal),
    /// A binary ALU operation.
    Binary(BinaryOp),
    /// A unary ALU operation.
    Unary(UnaryOp),
    /// The switch operator: routes its data input according to a predicate
    /// (used for conditionals and the loop back edge).
    Switch,
    /// The merge operator joining the two arms of a conditional.
    Merge,
    /// The index-increment operator of a loop's circulation subgraph.
    Increment,
    /// The `D` operator delimiting loop iterations (termination test).
    LoopTest,
    /// The `L` operator: enters a child code block, creating a new context
    /// and transmitting the listed values into it.
    LoopEntry {
        /// The child block entered by this operator.
        target: super::graph::BlockId,
        /// `true` once the partitioner has converted this `L` into the
        /// distributing `LD` operator that spawns the child on every PE.
        distributed: bool,
    },
    /// Allocation of an I-structure array.
    ArrayAllocate {
        /// Source-level array name.
        name: String,
        /// Number of dimensions.
        ndims: usize,
        /// `true` once the partitioner has converted this into the
        /// distributing allocate operator.
        distributed: bool,
    },
    /// An I-structure element read (split-phase).
    ArrayRead,
    /// An I-structure element write.
    ArrayWrite,
    /// The Range-Filter lower-bound operator `max(init, start_range)`.
    RangeLo,
    /// The Range-Filter upper-bound operator `min(limit, end_range)`.
    RangeHi,
    /// A user-function application (spawns the callee's body block).
    Apply {
        /// Callee function name.
        function: String,
    },
    /// The value returned from a code block to its parent.
    Return,
}

impl Operator {
    /// Short label used by the DOT exporter.
    pub fn label(&self) -> String {
        match self {
            Operator::Param { name } => format!("param {name}"),
            Operator::Constant(lit) => format!("const {lit}"),
            Operator::Binary(op) => format!("{op}"),
            Operator::Unary(op) => format!("{op}"),
            Operator::Switch => "switch".into(),
            Operator::Merge => "merge".into(),
            Operator::Increment => "+1".into(),
            Operator::LoopTest => "D".into(),
            Operator::LoopEntry {
                target,
                distributed,
            } => {
                if *distributed {
                    format!("LD -> block{}", target.index())
                } else {
                    format!("L -> block{}", target.index())
                }
            }
            Operator::ArrayAllocate {
                name, distributed, ..
            } => {
                if *distributed {
                    format!("alloc-dist {name}")
                } else {
                    format!("alloc {name}")
                }
            }
            Operator::ArrayRead => "i-fetch".into(),
            Operator::ArrayWrite => "i-store".into(),
            Operator::RangeLo => "range-lo".into(),
            Operator::RangeHi => "range-hi".into(),
            Operator::Apply { function } => format!("apply {function}"),
            Operator::Return => "return".into(),
        }
    }

    /// Returns `true` for operators that interact with the I-structure
    /// memory (used by graph statistics).
    pub fn touches_arrays(&self) -> bool {
        matches!(
            self,
            Operator::ArrayAllocate { .. } | Operator::ArrayRead | Operator::ArrayWrite
        )
    }

    /// Returns `true` for the loop-entry operators (`L` / `LD`).
    pub fn is_loop_entry(&self) -> bool {
        matches!(self, Operator::LoopEntry { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BlockId;

    #[test]
    fn labels_are_nonempty_and_distinguish_distribution() {
        let l = Operator::LoopEntry {
            target: BlockId(2),
            distributed: false,
        };
        let ld = Operator::LoopEntry {
            target: BlockId(2),
            distributed: true,
        };
        assert!(l.label().starts_with("L "));
        assert!(ld.label().starts_with("LD "));
        assert!(Operator::ArrayRead.touches_arrays());
        assert!(!Operator::Switch.touches_arrays());
        assert!(l.is_loop_entry());
        assert!(!Operator::Return.is_loop_entry());
        assert_eq!(Literal::Int(3).to_string(), "3");
    }
}
