//! Builds dataflow graphs from the HIR.
//!
//! Every function body becomes one code block, every loop level another, so
//! that "each code block, when invoked, becomes a separate SP" (paper §3).
//! Conditionals remain inside their enclosing block as switch/merge nodes.
//!
//! The graphs are faithful to the *structure* the paper works with: they
//! capture data dependencies between operators and the nesting of loop
//! levels. The operational semantics (program counters, blocking) live in the
//! SP translation; this graph form serves loop analysis, statistics, and
//! visualisation.

use crate::graph::{BlockId, BlockKind, DataflowProgram, NodeId};
use crate::op::{Literal, Operator};
use pods_idlang::{HirExpr, HirFunction, HirProgram, HirStmt};
use std::collections::HashMap;

/// Builds the dataflow graph of an entire HIR program.
pub fn build_program(hir: &HirProgram) -> DataflowProgram {
    let mut program = DataflowProgram::new();
    for function in &hir.functions {
        build_function(&mut program, function);
    }
    program
}

/// Builds the dataflow graph of a single function (exposed for tests and
/// tooling that work on fragments).
pub fn build_function(program: &mut DataflowProgram, function: &HirFunction) -> BlockId {
    let block = program.add_block(
        function.name.clone(),
        BlockKind::FunctionBody {
            function: function.name.clone(),
        },
        None,
    );
    let mut builder = BlockBuilder {
        program,
        block,
        env: HashMap::new(),
        function: function.name.clone(),
        loop_counter: 0,
        depth: 0,
    };
    for param in &function.params {
        let node = builder.program.add_node(
            block,
            Operator::Param {
                name: param.clone(),
            },
            vec![],
        );
        builder.env.insert(param.clone(), node);
    }
    builder.build_stmts(&function.body);
    block
}

struct BlockBuilder<'a> {
    program: &'a mut DataflowProgram,
    block: BlockId,
    /// Mapping from visible variable names to the node producing them.
    env: HashMap<String, NodeId>,
    function: String,
    /// Preorder loop counter within the enclosing function (shared across
    /// nesting levels so every loop gets a unique ordinal).
    loop_counter: usize,
    depth: usize,
}

impl BlockBuilder<'_> {
    fn add(&mut self, op: Operator, inputs: Vec<NodeId>) -> NodeId {
        self.program.add_node(self.block, op, inputs)
    }

    /// Returns the node holding the value of `name`, creating a `Param` node
    /// when the name is imported from an enclosing scope.
    fn lookup(&mut self, name: &str) -> NodeId {
        if let Some(&node) = self.env.get(name) {
            return node;
        }
        let node = self.add(
            Operator::Param {
                name: name.to_string(),
            },
            vec![],
        );
        self.env.insert(name.to_string(), node);
        node
    }

    fn build_stmts(&mut self, stmts: &[HirStmt]) {
        for stmt in stmts {
            self.build_stmt(stmt);
        }
    }

    fn build_stmt(&mut self, stmt: &HirStmt) {
        match stmt {
            HirStmt::Let { name, value } => {
                let node = self.build_expr(value);
                self.env.insert(name.clone(), node);
            }
            HirStmt::Alloc { name, dims } => {
                let dim_nodes: Vec<NodeId> = dims.iter().map(|d| self.build_expr(d)).collect();
                let node = self.add(
                    Operator::ArrayAllocate {
                        name: name.clone(),
                        ndims: dims.len(),
                        distributed: false,
                    },
                    dim_nodes,
                );
                self.env.insert(name.clone(), node);
            }
            HirStmt::Store {
                array,
                indices,
                value,
            } => {
                let array_node = self.lookup(array);
                let mut inputs = vec![array_node];
                for idx in indices {
                    let n = self.build_expr(idx);
                    inputs.push(n);
                }
                let v = self.build_expr(value);
                inputs.push(v);
                self.add(Operator::ArrayWrite, inputs);
            }
            HirStmt::For {
                var,
                from,
                to,
                descending,
                body,
            } => {
                self.build_loop(var, from, to, *descending, body);
            }
            HirStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond_node = self.build_expr(cond);
                let switch = self.add(Operator::Switch, vec![cond_node]);
                // Build both arms in the same block. Values bound in the arms
                // are merged so later statements observe a single definition.
                let saved = self.env.clone();
                self.build_stmts(then_body);
                let then_env = std::mem::replace(&mut self.env, saved.clone());
                self.build_stmts(else_body);
                let else_env = std::mem::replace(&mut self.env, saved.clone());
                let mut merged = saved;
                for (name, then_node) in &then_env {
                    match else_env.get(name) {
                        Some(else_node) if else_node != then_node => {
                            let merge =
                                self.add(Operator::Merge, vec![switch, *then_node, *else_node]);
                            merged.insert(name.clone(), merge);
                        }
                        _ => {
                            merged.insert(name.clone(), *then_node);
                        }
                    }
                }
                for (name, else_node) in else_env {
                    merged.entry(name).or_insert(else_node);
                }
                self.env = merged;
            }
            HirStmt::Return { value } => {
                let v = self.build_expr(value);
                self.add(Operator::Return, vec![v]);
            }
            HirStmt::Call { function, args } => {
                let arg_nodes: Vec<NodeId> = args.iter().map(|a| self.build_expr(a)).collect();
                self.add(
                    Operator::Apply {
                        function: function.clone(),
                    },
                    arg_nodes,
                );
            }
        }
    }

    fn build_loop(
        &mut self,
        var: &str,
        from: &HirExpr,
        to: &HirExpr,
        descending: bool,
        body: &[HirStmt],
    ) {
        let ordinal = self.loop_counter;
        self.loop_counter += 1;

        // The bounds are evaluated in the parent block and passed to the
        // child through the L operator.
        let from_node = self.build_expr(from);
        let to_node = self.build_expr(to);

        // Free variables of the body (other than the loop variable) are also
        // routed through the L operator.
        let mut free = Vec::new();
        collect_free_vars_stmts(body, &mut free);
        free.retain(|name| name != var);

        let child = self.program.add_block(
            format!("{}.{}", self.function, var),
            BlockKind::LoopLevel {
                var: var.to_string(),
                descending,
                depth: self.depth,
                ordinal,
            },
            Some(self.block),
        );

        let mut entry_inputs = vec![from_node, to_node];
        for name in &free {
            let node = self.lookup(name);
            entry_inputs.push(node);
        }
        self.add(
            Operator::LoopEntry {
                target: child,
                distributed: false,
            },
            entry_inputs,
        );

        // Build the child block: the index-circulation subgraph of Figure 2
        // (params for the bounds and imports, increment, D, switch) plus the
        // body of the loop.
        let mut child_env = HashMap::new();
        let from_param = self.program.add_node(
            child,
            Operator::Param {
                name: format!("{var}__init"),
            },
            vec![],
        );
        let to_param = self.program.add_node(
            child,
            Operator::Param {
                name: format!("{var}__limit"),
            },
            vec![],
        );
        for name in &free {
            let node = self
                .program
                .add_node(child, Operator::Param { name: name.clone() }, vec![]);
            child_env.insert(name.clone(), node);
        }
        // Index circulation: increment feeds the D (termination) test which
        // feeds the switch producing the per-iteration index value.
        let incr = self
            .program
            .add_node(child, Operator::Increment, vec![from_param]);
        let test = self
            .program
            .add_node(child, Operator::LoopTest, vec![incr, to_param]);
        let index = self
            .program
            .add_node(child, Operator::Switch, vec![test, from_param]);
        child_env.insert(var.to_string(), index);

        let loop_count = self.loop_counter;
        let mut child_builder = BlockBuilder {
            program: self.program,
            block: child,
            env: child_env,
            function: self.function.clone(),
            loop_counter: loop_count,
            depth: self.depth + 1,
        };
        child_builder.build_stmts(body);
        self.loop_counter = child_builder.loop_counter;
    }

    fn build_expr(&mut self, expr: &HirExpr) -> NodeId {
        match expr {
            HirExpr::Int(v) => self.add(Operator::Constant(Literal::Int(*v)), vec![]),
            HirExpr::Float(v) => self.add(Operator::Constant(Literal::Float(*v)), vec![]),
            HirExpr::Bool(v) => self.add(Operator::Constant(Literal::Bool(*v)), vec![]),
            HirExpr::Var(name) => self.lookup(name),
            HirExpr::Load { array, indices } => {
                let array_node = self.lookup(array);
                let mut inputs = vec![array_node];
                for idx in indices {
                    let n = self.build_expr(idx);
                    inputs.push(n);
                }
                self.add(Operator::ArrayRead, inputs)
            }
            HirExpr::Unary { op, operand } => {
                let o = self.build_expr(operand);
                self.add(Operator::Unary(*op), vec![o])
            }
            HirExpr::Binary { op, lhs, rhs } => {
                let l = self.build_expr(lhs);
                let r = self.build_expr(rhs);
                self.add(Operator::Binary(*op), vec![l, r])
            }
            HirExpr::Call { function, args } => {
                let arg_nodes: Vec<NodeId> = args.iter().map(|a| self.build_expr(a)).collect();
                self.add(
                    Operator::Apply {
                        function: function.clone(),
                    },
                    arg_nodes,
                )
            }
            HirExpr::Select {
                cond,
                then_value,
                else_value,
            } => {
                let c = self.build_expr(cond);
                let switch = self.add(Operator::Switch, vec![c]);
                let t = self.build_expr(then_value);
                let e = self.build_expr(else_value);
                self.add(Operator::Merge, vec![switch, t, e])
            }
        }
    }
}

/// Collects the free variable names of a statement list (variables referenced
/// before being defined inside the list).
pub fn collect_free_vars_stmts(stmts: &[HirStmt], out: &mut Vec<String>) {
    let mut defined: Vec<String> = Vec::new();
    collect(stmts, &mut defined, out);

    fn note_expr(expr: &HirExpr, defined: &[String], out: &mut Vec<String>) {
        let mut vars = Vec::new();
        expr.free_vars(&mut vars);
        for v in vars {
            if !defined.contains(&v) && !out.contains(&v) {
                out.push(v);
            }
        }
    }

    fn collect(stmts: &[HirStmt], defined: &mut Vec<String>, out: &mut Vec<String>) {
        for stmt in stmts {
            match stmt {
                HirStmt::Let { name, value } => {
                    note_expr(value, defined, out);
                    defined.push(name.clone());
                }
                HirStmt::Alloc { name, dims } => {
                    for d in dims {
                        note_expr(d, defined, out);
                    }
                    defined.push(name.clone());
                }
                HirStmt::Store {
                    array,
                    indices,
                    value,
                } => {
                    if !defined.contains(array) && !out.contains(array) {
                        out.push(array.clone());
                    }
                    for idx in indices {
                        note_expr(idx, defined, out);
                    }
                    note_expr(value, defined, out);
                }
                HirStmt::For {
                    var,
                    from,
                    to,
                    body,
                    ..
                } => {
                    note_expr(from, defined, out);
                    note_expr(to, defined, out);
                    let mut inner_defined = defined.clone();
                    inner_defined.push(var.clone());
                    collect(body, &mut inner_defined, out);
                }
                HirStmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    note_expr(cond, defined, out);
                    let mut then_defined = defined.clone();
                    collect(then_body, &mut then_defined, out);
                    let mut else_defined = defined.clone();
                    collect(else_body, &mut else_defined, out);
                    // Names defined in both arms are defined afterwards.
                    for name in then_defined {
                        if else_defined.contains(&name) && !defined.contains(&name) {
                            defined.push(name);
                        }
                    }
                }
                HirStmt::Return { value } => note_expr(value, defined, out),
                HirStmt::Call { args, .. } => {
                    for a in args {
                        note_expr(a, defined, out);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BlockKind;
    use pods_idlang::compile;

    const PAPER_EXAMPLE: &str = r#"
        def main() {
            a = matrix(50, 10);
            for i = 0 to 49 {
                for j = 0 to 9 {
                    a[i, j] = f(i, j);
                }
            }
            return a;
        }
        def f(i, j) { return i * 10 + j; }
    "#;

    #[test]
    fn paper_example_produces_three_scopes_for_main() {
        let hir = compile(PAPER_EXAMPLE).unwrap();
        let graph = build_program(&hir);
        // main body, i-loop, j-loop, plus the body of f.
        assert_eq!(graph.num_blocks(), 4);
        let main = graph.function_block("main").unwrap();
        assert!(matches!(main.kind, BlockKind::FunctionBody { .. }));
        let children = graph.children_of(main.id);
        assert_eq!(children.len(), 1, "main enters the i-loop");
        let i_loop = graph.block(children[0]);
        match &i_loop.kind {
            BlockKind::LoopLevel { var, depth, .. } => {
                assert_eq!(var, "i");
                assert_eq!(*depth, 0);
            }
            other => panic!("unexpected kind {other:?}"),
        }
        let grandchildren = graph.children_of(i_loop.id);
        assert_eq!(grandchildren.len(), 1, "the i-loop enters the j-loop");
        let j_loop = graph.block(grandchildren[0]);
        assert!(j_loop.count_ops(|op| matches!(op, Operator::ArrayWrite)) == 1);
        assert!(j_loop.count_ops(|op| matches!(op, Operator::Apply { .. })) == 1);
    }

    #[test]
    fn all_blocks_are_topologically_ordered() {
        let hir = compile(PAPER_EXAMPLE).unwrap();
        let graph = build_program(&hir);
        for block in graph.blocks() {
            assert!(
                block.topological_order().is_some(),
                "block {} has a forward arc",
                block.name
            );
        }
    }

    #[test]
    fn loop_ordinals_are_unique_per_function() {
        let src = r#"
            def main(n) {
                a = array(n);
                b = array(n);
                for i = 0 to n - 1 { a[i] = i; }
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 { b[j] = j + i; }
                }
                return b;
            }
        "#;
        let hir = compile(src).unwrap();
        let graph = build_program(&hir);
        let mut ordinals: Vec<usize> = graph
            .blocks()
            .iter()
            .filter_map(|b| match &b.kind {
                BlockKind::LoopLevel { ordinal, .. } => Some(*ordinal),
                _ => None,
            })
            .collect();
        ordinals.sort_unstable();
        assert_eq!(ordinals, vec![0, 1, 2]);
    }

    #[test]
    fn conditionals_produce_switch_and_merge() {
        let src = "def main(c) { if c > 0 { z = 1; } else { z = 2; } return z; }";
        let hir = compile(src).unwrap();
        let graph = build_program(&hir);
        let main = graph.function_block("main").unwrap();
        assert!(main.count_ops(|op| matches!(op, Operator::Switch)) >= 1);
        assert!(main.count_ops(|op| matches!(op, Operator::Merge)) >= 1);
    }

    #[test]
    fn free_variable_collection_skips_bound_names() {
        let src = "def main(n, a) { for i = 0 to n - 1 { t = i * 2; a[i] = t + n; } return a; }";
        let hir = compile(src).unwrap();
        match &hir.function("main").unwrap().body[0] {
            HirStmt::For { body, .. } => {
                let mut free = Vec::new();
                collect_free_vars_stmts(body, &mut free);
                assert!(free.contains(&"a".to_string()));
                assert!(free.contains(&"n".to_string()));
                assert!(!free.contains(&"t".to_string()), "t is bound in the body");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stats_count_array_operations() {
        let hir = compile(PAPER_EXAMPLE).unwrap();
        let graph = build_program(&hir);
        let stats = graph.stats();
        assert_eq!(stats.blocks, 4);
        assert_eq!(stats.loop_blocks, 2);
        assert_eq!(stats.loop_entries, 2);
        assert!(stats.array_ops >= 2, "allocate + write at least");
        assert!(stats.nodes > 10);
    }
}
