//! Loop-nest analysis: loop-carried dependencies and distribution targets.
//!
//! The PODS partitioner needs to know, for every loop level, (a) whether the
//! level exhibits a loop-carried dependency (LCD) and (b) which array the
//! level writes, so the Range Filter can be wired to that array's header
//! (paper §4.2.3–4.2.4). The paper notes that LCD detection in a declarative
//! single-assignment language is easy because the only possible dependency is
//! a flow dependency — and also that it is merely a *heuristic*: a missed
//! dependency cannot affect correctness, only performance, because the
//! I-structure memory still synchronises every read with its write.

use pods_idlang::{HirExpr, HirProgram, HirStmt};

/// Identifies a loop level across the compilation pipeline: the enclosing
/// function plus the loop's preorder ordinal within that function.
///
/// The dataflow builder, the SP translator, and the partitioner all number
/// loops the same way, so a `LoopKey` ties together the graph block, the SP
/// template, and this analysis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LoopKey {
    /// Name of the function containing the loop.
    pub function: String,
    /// Preorder ordinal of the loop within the function.
    pub ordinal: usize,
}

impl std::fmt::Display for LoopKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}#{}", self.function, self.ordinal)
    }
}

/// A write access found inside a loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteAccess {
    /// Name of the written array.
    pub array: String,
    /// Dimension position whose index expression is exactly the loop
    /// variable, when there is one.
    pub var_dim: Option<usize>,
}

/// Analysis result for one loop level.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopInfo {
    /// The loop's identity.
    pub key: LoopKey,
    /// The loop index variable.
    pub var: String,
    /// Nesting depth within the function (0 = outermost loop).
    pub depth: usize,
    /// `true` for descending (`downto`) loops.
    pub descending: bool,
    /// Ordinal of the directly enclosing loop, when nested.
    pub parent: Option<usize>,
    /// Arrays written anywhere inside this loop level (including nested
    /// levels), with the dimension indexed by this loop's variable.
    pub writes: Vec<WriteAccess>,
    /// `true` when a loop-carried dependency was detected at this level.
    pub has_lcd: bool,
    /// `true` when an array written in the body is also passed to a function
    /// call inside the body (treated conservatively as an LCD).
    pub escapes_to_call: bool,
}

impl LoopInfo {
    /// The distribution target: the first array written in the body whose
    /// write is indexed by this loop's variable. The Range Filter of a
    /// distributed instance of the loop consults this array's header.
    pub fn distribution_target(&self) -> Option<&WriteAccess> {
        self.writes.iter().find(|w| w.var_dim.is_some())
    }

    /// Whether the PODS distribution algorithm (§4.2.4) would mark this loop
    /// level for distribution: no LCD, no escaping writes, and a usable
    /// distribution target.
    pub fn is_distributable(&self) -> bool {
        !self.has_lcd && !self.escapes_to_call && self.distribution_target().is_some()
    }
}

/// Analyses every loop of an HIR program, in preorder per function.
pub fn analyze_loops(hir: &HirProgram) -> Vec<LoopInfo> {
    let mut out = Vec::new();
    for function in &hir.functions {
        let mut counter = 0usize;
        analyze_block(
            &function.name,
            &function.body,
            None,
            0,
            &mut counter,
            &mut out,
        );
    }
    out
}

/// Looks up the analysis of a specific loop.
pub fn find_loop<'a>(
    infos: &'a [LoopInfo],
    function: &str,
    ordinal: usize,
) -> Option<&'a LoopInfo> {
    infos
        .iter()
        .find(|info| info.key.function == function && info.key.ordinal == ordinal)
}

fn analyze_block(
    function: &str,
    stmts: &[HirStmt],
    parent: Option<usize>,
    depth: usize,
    counter: &mut usize,
    out: &mut Vec<LoopInfo>,
) {
    for stmt in stmts {
        match stmt {
            HirStmt::For {
                var,
                descending,
                body,
                ..
            } => {
                let ordinal = *counter;
                *counter += 1;

                let mut writes = Vec::new();
                collect_writes(body, var, &mut writes);
                let has_lcd = detect_lcd(body, var, &writes);
                let escapes_to_call = detect_escape(body, &writes);

                out.push(LoopInfo {
                    key: LoopKey {
                        function: function.to_string(),
                        ordinal,
                    },
                    var: var.clone(),
                    depth,
                    descending: *descending,
                    parent,
                    writes,
                    has_lcd,
                    escapes_to_call,
                });

                analyze_block(function, body, Some(ordinal), depth + 1, counter, out);
            }
            HirStmt::If {
                then_body,
                else_body,
                ..
            } => {
                analyze_block(function, then_body, parent, depth, counter, out);
                analyze_block(function, else_body, parent, depth, counter, out);
            }
            _ => {}
        }
    }
}

/// Collects every array written in `stmts` (recursively) together with the
/// dimension indexed by `var`, if any.
fn collect_writes(stmts: &[HirStmt], var: &str, out: &mut Vec<WriteAccess>) {
    for stmt in stmts {
        match stmt {
            HirStmt::Store { array, indices, .. } => {
                let var_dim = indices
                    .iter()
                    .position(|idx| matches!(idx, HirExpr::Var(name) if name == var));
                if let Some(existing) = out.iter_mut().find(|w| &w.array == array) {
                    if existing.var_dim.is_none() {
                        existing.var_dim = var_dim;
                    }
                } else {
                    out.push(WriteAccess {
                        array: array.clone(),
                        var_dim,
                    });
                }
            }
            HirStmt::For { body, .. } => collect_writes(body, var, out),
            HirStmt::If {
                then_body,
                else_body,
                ..
            } => {
                collect_writes(then_body, var, out);
                collect_writes(else_body, var, out);
            }
            _ => {}
        }
    }
}

/// Detects a loop-carried (flow) dependency for the loop over `var`: some
/// array is written at `var` along dimension `p` and read along dimension `p`
/// with an index expression that is not exactly `var` (e.g. `var - 1`, a
/// constant, or another variable).
fn detect_lcd(stmts: &[HirStmt], var: &str, writes: &[WriteAccess]) -> bool {
    let mut lcd = false;
    for write in writes {
        let Some(dim) = write.var_dim else {
            // The loop variable does not index this array's writes; every
            // iteration writes the same region, which the run-time
            // single-assignment check will flag. It is not an iteration
            // ordering constraint, so it is ignored here.
            continue;
        };
        visit_reads(stmts, &mut |array, indices| {
            if array == write.array {
                match indices.get(dim) {
                    Some(HirExpr::Var(name)) if name == var => {}
                    Some(_) => lcd = true,
                    None => lcd = true,
                }
            }
        });
        if lcd {
            return true;
        }
    }
    lcd
}

/// Detects whether an array written in the loop body is also passed to a
/// user-function call inside the body.
fn detect_escape(stmts: &[HirStmt], writes: &[WriteAccess]) -> bool {
    let mut escapes = false;
    visit_calls(stmts, &mut |args| {
        for arg in args {
            if let HirExpr::Var(name) = arg {
                if writes.iter().any(|w| &w.array == name) {
                    escapes = true;
                }
            }
        }
    });
    escapes
}

fn visit_reads(stmts: &[HirStmt], f: &mut impl FnMut(&str, &[HirExpr])) {
    fn expr(e: &HirExpr, f: &mut impl FnMut(&str, &[HirExpr])) {
        match e {
            HirExpr::Load { array, indices } => {
                f(array, indices);
                for idx in indices {
                    expr(idx, f);
                }
            }
            HirExpr::Unary { operand, .. } => expr(operand, f),
            HirExpr::Binary { lhs, rhs, .. } => {
                expr(lhs, f);
                expr(rhs, f);
            }
            HirExpr::Call { args, .. } => {
                for a in args {
                    expr(a, f);
                }
            }
            HirExpr::Select {
                cond,
                then_value,
                else_value,
            } => {
                expr(cond, f);
                expr(then_value, f);
                expr(else_value, f);
            }
            _ => {}
        }
    }
    for stmt in stmts {
        match stmt {
            HirStmt::Let { value, .. } | HirStmt::Return { value } => expr(value, f),
            HirStmt::Alloc { dims, .. } => {
                for d in dims {
                    expr(d, f);
                }
            }
            HirStmt::Store { indices, value, .. } => {
                for idx in indices {
                    expr(idx, f);
                }
                expr(value, f);
            }
            HirStmt::For { from, to, body, .. } => {
                expr(from, f);
                expr(to, f);
                visit_reads(body, f);
            }
            HirStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr(cond, f);
                visit_reads(then_body, f);
                visit_reads(else_body, f);
            }
            HirStmt::Call { args, .. } => {
                for a in args {
                    expr(a, f);
                }
            }
        }
    }
}

fn visit_calls(stmts: &[HirStmt], f: &mut impl FnMut(&[HirExpr])) {
    fn expr(e: &HirExpr, f: &mut impl FnMut(&[HirExpr])) {
        match e {
            HirExpr::Call { args, .. } => {
                f(args);
                for a in args {
                    expr(a, f);
                }
            }
            HirExpr::Load { indices, .. } => {
                for idx in indices {
                    expr(idx, f);
                }
            }
            HirExpr::Unary { operand, .. } => expr(operand, f),
            HirExpr::Binary { lhs, rhs, .. } => {
                expr(lhs, f);
                expr(rhs, f);
            }
            HirExpr::Select {
                cond,
                then_value,
                else_value,
            } => {
                expr(cond, f);
                expr(then_value, f);
                expr(else_value, f);
            }
            _ => {}
        }
    }
    for stmt in stmts {
        match stmt {
            HirStmt::Let { value, .. } | HirStmt::Return { value } => expr(value, f),
            HirStmt::Alloc { dims, .. } => {
                for d in dims {
                    expr(d, f);
                }
            }
            HirStmt::Store { indices, value, .. } => {
                for idx in indices {
                    expr(idx, f);
                }
                expr(value, f);
            }
            HirStmt::For { from, to, body, .. } => {
                expr(from, f);
                expr(to, f);
                visit_calls(body, f);
            }
            HirStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                expr(cond, f);
                visit_calls(then_body, f);
                visit_calls(else_body, f);
            }
            HirStmt::Call { args, .. } => {
                f(args);
                for a in args {
                    expr(a, f);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pods_idlang::compile;

    fn analyze(src: &str) -> Vec<LoopInfo> {
        analyze_loops(&compile(src).unwrap())
    }

    #[test]
    fn parallel_nested_loop_has_no_lcd() {
        let infos = analyze(
            r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 {
                        a[i, j] = i + j;
                    }
                }
                return a;
            }
        "#,
        );
        assert_eq!(infos.len(), 2);
        let outer = &infos[0];
        assert_eq!(outer.var, "i");
        assert!(!outer.has_lcd);
        assert!(outer.is_distributable());
        assert_eq!(outer.distribution_target().unwrap().array, "a");
        assert_eq!(outer.distribution_target().unwrap().var_dim, Some(0));
        let inner = &infos[1];
        assert_eq!(inner.var, "j");
        assert_eq!(inner.parent, Some(0));
        assert_eq!(inner.distribution_target().unwrap().var_dim, Some(1));
    }

    #[test]
    fn recurrence_is_detected_as_lcd() {
        let infos = analyze(
            r#"
            def main(n, src) {
                a = array(n);
                a[0] = src[0];
                for i = 1 to n - 1 {
                    a[i] = a[i - 1] + src[i];
                }
                return a;
            }
        "#,
        );
        assert_eq!(infos.len(), 1);
        assert!(infos[0].has_lcd);
        assert!(!infos[0].is_distributable());
    }

    #[test]
    fn descending_sweep_reading_the_next_element_is_an_lcd() {
        let infos = analyze(
            r#"
            def main(n, b) {
                a = array(n);
                a[n - 1] = b[n - 1];
                for i = n - 2 downto 0 {
                    a[i] = a[i + 1] * 0.5 + b[i];
                }
                return a;
            }
        "#,
        );
        assert!(infos[0].descending);
        assert!(infos[0].has_lcd);
    }

    #[test]
    fn reading_a_different_array_is_not_an_lcd() {
        // velocity_position-style loop: writes one array, reads neighbours of
        // *other* arrays.
        let infos = analyze(
            r#"
            def main(n, u, v) {
                x = matrix(n, n);
                for i = 1 to n - 2 {
                    for j = 1 to n - 2 {
                        x[i, j] = u[i - 1, j] + v[i, j + 1];
                    }
                }
                return x;
            }
        "#,
        );
        assert!(!infos[0].has_lcd);
        assert!(!infos[1].has_lcd);
        assert!(infos[0].is_distributable());
    }

    #[test]
    fn outer_lcd_with_parallel_inner_level() {
        // Row-sweep: each row depends on the previous row, but the columns
        // within a row are independent — the classic conduction pattern. The
        // outer (i) level has the LCD, the inner (j) level does not.
        let infos = analyze(
            r#"
            def main(n, b) {
                a = matrix(n, n);
                for j = 0 to n - 1 { a[0, j] = b[0, j]; }
                for i = 1 to n - 1 {
                    for j = 0 to n - 1 {
                        a[i, j] = a[i - 1, j] + b[i, j];
                    }
                }
                return a;
            }
        "#,
        );
        assert_eq!(infos.len(), 3);
        let sweep_outer = &infos[1];
        assert_eq!(sweep_outer.var, "i");
        assert!(sweep_outer.has_lcd);
        let sweep_inner = &infos[2];
        assert_eq!(sweep_inner.var, "j");
        assert!(!sweep_inner.has_lcd, "columns are independent");
        assert!(sweep_inner.is_distributable());
    }

    #[test]
    fn arrays_passed_to_calls_are_conservative() {
        let infos = analyze(
            r#"
            def main(n) {
                a = array(n);
                for i = 0 to n - 1 {
                    a[i] = i;
                    touch(a, i);
                }
                return a;
            }
            def touch(arr, i) { return arr[i]; }
        "#,
        );
        assert!(infos[0].escapes_to_call);
        assert!(!infos[0].is_distributable());
    }

    #[test]
    fn loop_keys_follow_preorder_and_lookup_works() {
        let infos = analyze(
            r#"
            def main(n) {
                a = array(n);
                b = array(n);
                for i = 0 to n - 1 { a[i] = i; }
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 { b[j] = i + j; }
                }
                return b;
            }
            def helper(n) {
                c = array(n);
                for k = 0 to n - 1 { c[k] = k; }
                return c;
            }
        "#,
        );
        assert_eq!(infos.len(), 4);
        assert_eq!(
            infos[0].key,
            LoopKey {
                function: "main".into(),
                ordinal: 0
            }
        );
        assert_eq!(infos[1].key.ordinal, 1);
        assert_eq!(infos[2].key.ordinal, 2);
        assert_eq!(infos[2].parent, Some(1));
        assert_eq!(infos[3].key.function, "helper");
        assert_eq!(infos[3].key.ordinal, 0);
        assert!(find_loop(&infos, "helper", 0).is_some());
        assert!(find_loop(&infos, "helper", 1).is_none());
        assert_eq!(infos[0].key.to_string(), "main#0");
    }

    #[test]
    fn loops_inside_conditionals_are_analyzed() {
        let infos = analyze(
            r#"
            def main(n, flag) {
                a = array(n);
                if flag > 0 {
                    for i = 0 to n - 1 { a[i] = i; }
                } else {
                    for i = 0 to n - 1 { a[i] = 0 - i; }
                }
                return a;
            }
        "#,
        );
        assert_eq!(infos.len(), 2);
        assert!(infos.iter().all(|i| !i.has_lcd));
    }
}
