//! SP instances (frames) and their run-time state.

use pods_istructure::Value;
use pods_sp::{SlotId, SpId};

/// Globally unique identifier of an SP instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstanceId(pub u64);

impl std::fmt::Display for InstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "inst{}", self.0)
    }
}

/// A "continuation" address: which slot of which instance on which PE should
/// receive a value token. Used for function returns and deferred array
/// reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Waiter {
    /// The PE hosting the instance.
    pub pe: usize,
    /// The target instance.
    pub instance: InstanceId,
    /// The slot to fill.
    pub slot: SlotId,
}

/// Scheduling state of an instance, mirroring the paper's process control
/// block: running, ready, or blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceStatus {
    /// Waiting in the ready queue for the Execution Unit.
    Ready,
    /// Currently executing on the Execution Unit.
    Running,
    /// Waiting for a token to arrive in the given slot.
    Blocked(SlotId),
}

/// The run-time frame of one SP instance: operand slots with presence bits,
/// the program counter, and the parent linkage for function results.
#[derive(Debug, Clone)]
pub struct Instance {
    /// The instance identifier.
    pub id: InstanceId,
    /// The template this instance executes.
    pub template: SpId,
    /// The operand slots (`None` = presence bit clear).
    pub slots: Vec<Option<Value>>,
    /// The program counter.
    pub pc: usize,
    /// Scheduling state.
    pub status: InstanceStatus,
    /// Where to send the return value, for function-call instances.
    pub return_to: Option<Waiter>,
}

impl Instance {
    /// Creates a new instance with `num_slots` empty slots, filling the
    /// first slots from `args`.
    pub fn new(
        id: InstanceId,
        template: SpId,
        num_slots: usize,
        args: &[Value],
        return_to: Option<Waiter>,
    ) -> Self {
        let mut slots = vec![None; num_slots];
        for (i, v) in args.iter().enumerate() {
            if i < num_slots {
                slots[i] = Some(*v);
            }
        }
        Instance {
            id,
            template,
            slots,
            pc: 0,
            status: InstanceStatus::Ready,
            return_to,
        }
    }

    /// Reads a slot value if present.
    pub fn slot(&self, slot: SlotId) -> Option<Value> {
        self.slots.get(slot.index()).copied().flatten()
    }

    /// Returns `true` when the slot's presence bit is set.
    pub fn is_present(&self, slot: SlotId) -> bool {
        self.slot(slot).is_some()
    }

    /// Writes a slot value (sets the presence bit).
    pub fn set_slot(&mut self, slot: SlotId, value: Value) {
        if slot.index() < self.slots.len() {
            self.slots[slot.index()] = Some(value);
        }
    }

    /// Clears a slot's presence bit (used when issuing a split-phase load
    /// whose result will overwrite a value from a previous iteration).
    pub fn clear_slot(&mut self, slot: SlotId) {
        if slot.index() < self.slots.len() {
            self.slots[slot.index()] = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_initialisation_fills_parameter_slots() {
        let inst = Instance::new(
            InstanceId(1),
            SpId(0),
            4,
            &[Value::Int(5), Value::Float(2.0)],
            None,
        );
        assert_eq!(inst.slot(SlotId(0)), Some(Value::Int(5)));
        assert_eq!(inst.slot(SlotId(1)), Some(Value::Float(2.0)));
        assert!(!inst.is_present(SlotId(2)));
        assert_eq!(inst.status, InstanceStatus::Ready);
        assert_eq!(inst.pc, 0);
    }

    #[test]
    fn slot_updates_and_clears() {
        let mut inst = Instance::new(InstanceId(2), SpId(1), 2, &[], None);
        inst.set_slot(SlotId(1), Value::Bool(true));
        assert!(inst.is_present(SlotId(1)));
        inst.clear_slot(SlotId(1));
        assert!(!inst.is_present(SlotId(1)));
        // Out-of-range accesses are ignored rather than panicking.
        inst.set_slot(SlotId(99), Value::Int(0));
        assert_eq!(inst.slot(SlotId(99)), None);
        assert_eq!(InstanceId(2).to_string(), "inst2");
    }

    #[test]
    fn extra_args_beyond_frame_are_dropped() {
        let inst = Instance::new(
            InstanceId(3),
            SpId(0),
            1,
            &[Value::Int(1), Value::Int(2)],
            Some(Waiter {
                pe: 0,
                instance: InstanceId(1),
                slot: SlotId(0),
            }),
        );
        assert_eq!(inst.slots.len(), 1);
        assert!(inst.return_to.is_some());
    }
}
