//! The PODS machine simulator: a discrete-event, instruction-level model of
//! a distributed-memory multiprocessor executing Subcompact Processes.
//!
//! Each PE has the five functional units of Figure 7 of the paper —
//! Execution Unit, Matching Unit, Memory Manager, Array Manager, and Routing
//! Unit — modelled as FIFO servers whose service times come from the §5.1
//! timing model. The Execution Unit runs the current SP instance until it
//! terminates or blocks on an absent operand (no preemption); array accesses
//! are split-phase; remote reads go through the software page cache; and
//! inter-PE traffic (tokens, spawn requests, page transfers, forwarded
//! writes, allocation broadcasts) flows through the Routing Units and the
//! network model.

use crate::instance::{Instance, InstanceId, InstanceStatus, Waiter};
use crate::result::{ArraySnapshot, SimulationResult};
use crate::stats::{PeStats, SimulationStats, UnitState};
use crate::timing::{MachineConfig, TimingModel};
use pods_istructure::{
    ArrayHeader, ArrayId, ArrayMemory, ArrayShape, PageCopy, Partitioning, PeId, ReadOutcome,
    ReadResult, Value, WriteOutcome,
};
use pods_sp::exec::{self, ArrayOps, Cost, ExecCtx, Loaded, ReadSlots, RunExit, TraceSink};
use pods_sp::{Operand, SlotId, SpId, SpProgram};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::rc::Rc;

const EU: usize = 0;
const MU: usize = 1;
const MM: usize = 2;
const AM: usize = 3;
const RU: usize = 4;

/// Errors terminating a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum SimulationError {
    /// All events were drained but some SP instances are still blocked: the
    /// program deadlocked (e.g. an array element that is read but never
    /// written).
    Deadlock {
        /// Number of instances still alive.
        stuck_instances: usize,
        /// Human-readable detail about one stuck instance.
        detail: String,
    },
    /// A run-time error (single-assignment violation, out-of-bounds access,
    /// arithmetic on non-numeric values, ...).
    Runtime(String),
    /// The configured event limit was exceeded.
    EventLimitExceeded {
        /// The limit that was hit.
        limit: u64,
    },
}

impl std::fmt::Display for SimulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimulationError::Deadlock {
                stuck_instances,
                detail,
            } => write!(
                f,
                "deadlock: {stuck_instances} SP instances stuck ({detail})"
            ),
            SimulationError::Runtime(msg) => write!(f, "runtime error: {msg}"),
            SimulationError::EventLimitExceeded { limit } => {
                write!(f, "event limit of {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for SimulationError {}

/// An inter-PE message.
#[derive(Debug, Clone)]
enum Message {
    /// A data token destined for a specific instance slot.
    Token {
        instance: InstanceId,
        slot: SlotId,
        value: Value,
    },
    /// Spawn an instance of a template (the remote half of an `LD`).
    Spawn {
        template: SpId,
        args: Vec<Value>,
        return_to: Option<Waiter>,
    },
    /// Broadcast half of the distributing allocate.
    RemoteAlloc {
        array: ArrayId,
        name: String,
        dims: Vec<usize>,
        distributed: bool,
        origin: usize,
    },
    /// Request for a remote element; the owner replies with the whole page.
    ReadRequest {
        array: ArrayId,
        offset: usize,
        waiter: Waiter,
    },
    /// Page copy plus the requested element value.
    PageReply {
        copy: PageCopy,
        value: Value,
        waiter: Waiter,
    },
    /// A write forwarded to the owning PE.
    WriteForward {
        array: ArrayId,
        offset: usize,
        value: Value,
    },
}

#[derive(Debug, Clone)]
enum EventKind {
    /// Try to run a ready SP on the PE's Execution Unit.
    EuRun { pe: usize },
    /// Deliver a value into an instance slot on the same PE.
    Deliver {
        pe: usize,
        instance: InstanceId,
        slot: SlotId,
        value: Value,
    },
    /// A message arrives at a PE from the network.
    NetArrive { pe: usize, msg: Message },
}

#[derive(Debug, Clone)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

/// Per-PE mutable state.
struct PeState {
    units: [UnitState; 5],
    memory: ArrayMemory<Waiter>,
    instances: HashMap<InstanceId, Instance>,
    ready: VecDeque<InstanceId>,
    eu_event_pending: bool,
    stats: PeStats,
    /// Remote requests that arrived before the array's allocation broadcast.
    pending_remote: HashMap<ArrayId, Vec<Message>>,
}

impl PeState {
    fn new(pe: usize) -> Self {
        PeState {
            units: [UnitState::default(); 5],
            memory: ArrayMemory::new(PeId(pe)),
            instances: HashMap::new(),
            ready: VecDeque::new(),
            eu_event_pending: false,
            stats: PeStats::default(),
            pending_remote: HashMap::new(),
        }
    }
}

/// The machine simulator.
///
/// Construct one with [`Simulation::new`] and call [`Simulation::run`]; or
/// use the convenience function [`simulate`].
pub struct Simulation {
    config: MachineConfig,
    program: Rc<SpProgram>,
    /// Precomputed per-template read-slot tables for the shared core's
    /// firing-rule check (no per-instruction allocation).
    read_slots: Rc<ReadSlots>,
    pes: Vec<PeState>,
    events: BinaryHeap<Reverse<Event>>,
    seq: u64,
    horizon: f64,
    events_processed: u64,
    next_instance: u64,
    next_array: usize,
    arrays: Vec<(ArrayId, String, ArrayShape)>,
    entry_instance: InstanceId,
    result: Option<Value>,
    error: Option<SimulationError>,
    /// Optional flight-recorder sink: the shared exec core's suspension /
    /// deferred-load / chunk events are reported here, attributed to the
    /// simulated PE that produced them.
    sink: Option<Box<dyn TraceSink>>,
}

/// Runs `program` with the given `main` arguments on the configured machine.
///
/// # Errors
///
/// Returns a [`SimulationError`] on deadlock, run-time errors, or when the
/// configured event limit is exceeded.
pub fn simulate(
    program: &SpProgram,
    main_args: &[Value],
    config: &MachineConfig,
) -> Result<SimulationResult, SimulationError> {
    Simulation::new(program.clone(), config.clone()).run(main_args)
}

/// [`simulate`] with a flight-recorder sink attached (see
/// [`Simulation::with_trace_sink`]).
///
/// # Errors
///
/// Same as [`simulate`].
pub fn simulate_with_sink(
    program: &SpProgram,
    main_args: &[Value],
    config: &MachineConfig,
    sink: Box<dyn TraceSink>,
) -> Result<SimulationResult, SimulationError> {
    Simulation::new(program.clone(), config.clone())
        .with_trace_sink(sink)
        .run(main_args)
}

impl Simulation {
    /// Creates a simulation of `program` on the configured machine.
    pub fn new(program: SpProgram, config: MachineConfig) -> Self {
        let num_pes = config.num_pes.max(1);
        let read_slots = Rc::new(exec::build_read_slots(&program));
        Simulation {
            config,
            program: Rc::new(program),
            read_slots,
            pes: (0..num_pes).map(PeState::new).collect(),
            events: BinaryHeap::new(),
            seq: 0,
            horizon: 0.0,
            events_processed: 0,
            next_instance: 0,
            next_array: 0,
            arrays: Vec::new(),
            entry_instance: InstanceId(0),
            result: None,
            error: None,
            sink: None,
        }
    }

    /// Attaches a trace sink: the shared exec core's events (firing-rule
    /// suspensions, deferred array loads, chunk advances) are reported to
    /// it, tagged with the simulated PE index.
    pub fn with_trace_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`SimulationError`] on deadlock, run-time errors, or when
    /// the configured event limit is exceeded.
    pub fn run(mut self, main_args: &[Value]) -> Result<SimulationResult, SimulationError> {
        let entry = self.program.entry();
        self.entry_instance = InstanceId(self.next_instance);
        self.create_instance(0, entry, main_args.to_vec(), None, 0.0);

        while let Some(Reverse(event)) = self.events.pop() {
            self.events_processed += 1;
            if self.config.max_events > 0 && self.events_processed > self.config.max_events {
                return Err(SimulationError::EventLimitExceeded {
                    limit: self.config.max_events,
                });
            }
            self.horizon = self.horizon.max(event.time);
            match event.kind {
                EventKind::EuRun { pe } => self.process_eu_run(pe, event.time),
                EventKind::Deliver {
                    pe,
                    instance,
                    slot,
                    value,
                } => self.deliver_value(pe, instance, slot, value, event.time),
                EventKind::NetArrive { pe, msg } => self.process_net_arrive(pe, msg, event.time),
            }
            if let Some(err) = self.error.take() {
                return Err(err);
            }
        }

        let stuck: usize = self.pes.iter().map(|p| p.instances.len()).sum();
        if stuck > 0 {
            let detail = self
                .pes
                .iter()
                .flat_map(|p| p.instances.values())
                .next()
                .map(|inst| {
                    let template = self.program.template(inst.template);
                    format!(
                        "{} of {} blocked at pc {} ({:?})",
                        inst.id, template.name, inst.pc, inst.status
                    )
                })
                .unwrap_or_default();
            return Err(SimulationError::Deadlock {
                stuck_instances: stuck,
                detail,
            });
        }

        Ok(self.finish())
    }

    fn finish(mut self) -> SimulationResult {
        let mut stats = SimulationStats::new(self.pes.len());
        stats.elapsed_us = self.horizon;
        stats.events_processed = self.events_processed;
        for (i, pe) in self.pes.iter_mut().enumerate() {
            for u in 0..5 {
                pe.stats.unit_busy[u] = pe.units[u].busy;
            }
            stats.per_pe[i] = pe.stats.clone();
        }

        let mut arrays = Vec::new();
        for (id, name, shape) in &self.arrays {
            let mut values = vec![None; shape.len()];
            for pe in &self.pes {
                for (offset, v) in pe.memory.local_written(*id) {
                    if offset < values.len() {
                        values[offset] = Some(v);
                    }
                }
            }
            arrays.push(ArraySnapshot {
                id: *id,
                name: name.clone(),
                shape: shape.clone(),
                values,
            });
        }

        SimulationResult {
            return_value: self.result,
            arrays,
            stats,
        }
    }

    // ----- event plumbing -----

    fn push_event(&mut self, time: f64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.horizon = self.horizon.max(time);
        self.events.push(Reverse(Event { time, seq, kind }));
    }

    fn schedule_unit(&mut self, pe: usize, unit: usize, now: f64, service: f64) -> f64 {
        let finish = self.pes[pe].units[unit].schedule(now, service);
        self.horizon = self.horizon.max(finish);
        finish
    }

    fn kick_eu(&mut self, pe: usize, time: f64) {
        if !self.pes[pe].eu_event_pending && !self.pes[pe].ready.is_empty() {
            self.pes[pe].eu_event_pending = true;
            let at = self.pes[pe].units[EU].next_free.max(time);
            self.push_event(at, EventKind::EuRun { pe });
        }
    }

    fn fail(&mut self, msg: impl Into<String>) {
        if self.error.is_none() {
            self.error = Some(SimulationError::Runtime(msg.into()));
        }
    }

    // ----- instance management -----

    fn create_instance(
        &mut self,
        pe: usize,
        template_id: SpId,
        args: Vec<Value>,
        return_to: Option<Waiter>,
        now: f64,
    ) {
        let template = self.program.template(template_id);
        let num_slots = template.num_slots;
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        // The Memory Manager loads the SP into execution memory and builds
        // its frame (two free-list operations).
        let mm_time = 2.0 * self.config.timing.memory_manager_op;
        let ready_at = self.schedule_unit(pe, MM, now, mm_time);
        let instance = Instance::new(id, template_id, num_slots, &args, return_to);
        self.pes[pe].instances.insert(id, instance);
        self.pes[pe].ready.push_back(id);
        self.pes[pe].stats.instances_created += 1;
        self.kick_eu(pe, ready_at);
    }

    fn deliver_value(
        &mut self,
        pe: usize,
        instance: InstanceId,
        slot: SlotId,
        value: Value,
        time: f64,
    ) {
        let mut wake = false;
        if let Some(inst) = self.pes[pe].instances.get_mut(&instance) {
            inst.set_slot(slot, value);
            if inst.status == InstanceStatus::Blocked(slot) {
                inst.status = InstanceStatus::Ready;
                wake = true;
            }
        }
        if wake {
            self.pes[pe].ready.push_back(instance);
            self.kick_eu(pe, time);
        }
    }

    /// Sends a value to a waiter which may live on another PE.
    fn send_to_waiter(&mut self, from_pe: usize, waiter: Waiter, value: Value, now: f64) {
        if waiter.pe == from_pe {
            self.push_event(
                now,
                EventKind::Deliver {
                    pe: from_pe,
                    instance: waiter.instance,
                    slot: waiter.slot,
                    value,
                },
            );
        } else {
            self.send_message(
                from_pe,
                waiter.pe,
                Message::Token {
                    instance: waiter.instance,
                    slot: waiter.slot,
                    value,
                },
                now,
            );
        }
    }

    // ----- messaging -----

    fn message_route_cost(&self, msg: &Message) -> f64 {
        let t = &self.config.timing;
        match msg {
            Message::Token { .. } => t.token_route,
            Message::Spawn { args, .. } => t.token_route * (1 + args.len()) as f64,
            Message::RemoteAlloc { .. } => t.token_route * 2.0,
            Message::ReadRequest { .. } => t.token_route,
            Message::PageReply { copy, .. } => t.page_message_time(copy.len()),
            Message::WriteForward { .. } => t.token_route,
        }
    }

    fn send_message(&mut self, from_pe: usize, to_pe: usize, msg: Message, now: f64) {
        let cost = self.message_route_cost(&msg);
        let finish = self.schedule_unit(from_pe, RU, now, cost);
        self.pes[from_pe].stats.messages_sent += 1;
        let arrive = finish + self.config.timing.network_hop;
        self.push_event(arrive, EventKind::NetArrive { pe: to_pe, msg });
    }

    fn process_net_arrive(&mut self, pe: usize, msg: Message, time: f64) {
        let t = self.config.timing.clone();
        match msg {
            Message::Token {
                instance,
                slot,
                value,
            } => {
                self.pes[pe].stats.tokens_received += 1;
                let finish = self.schedule_unit(pe, MU, time, t.matching_unit);
                self.push_event(
                    finish,
                    EventKind::Deliver {
                        pe,
                        instance,
                        slot,
                        value,
                    },
                );
            }
            Message::Spawn {
                template,
                args,
                return_to,
            } => {
                self.pes[pe].stats.tokens_received += 1;
                let finish = self.schedule_unit(pe, MU, time, t.matching_unit);
                self.create_instance(pe, template, args, return_to, finish);
            }
            Message::RemoteAlloc {
                array,
                name,
                dims,
                distributed,
                origin,
            } => {
                let finish = self.schedule_unit(pe, AM, time, t.array_allocate);
                self.register_array(pe, array, &name, &dims, distributed, origin);
                // Serve any remote requests that raced ahead of the
                // allocation broadcast.
                if let Some(pending) = self.pes[pe].pending_remote.remove(&array) {
                    for msg in pending {
                        self.push_event(finish, EventKind::NetArrive { pe, msg });
                    }
                }
            }
            Message::ReadRequest {
                array,
                offset,
                waiter,
            } => {
                if self.pes[pe].memory.header(array).is_none() {
                    self.pes[pe].pending_remote.entry(array).or_default().push(
                        Message::ReadRequest {
                            array,
                            offset,
                            waiter,
                        },
                    );
                    return;
                }
                match self.pes[pe].memory.read_as_owner(array, offset, waiter) {
                    Ok(ReadResult::Present(value)) => {
                        let page = self.pes[pe]
                            .memory
                            .header(array)
                            .map(|h| h.partitioning().page_of(offset))
                            .unwrap_or(0);
                        match self.pes[pe].memory.extract_page(array, page) {
                            Ok(copy) => {
                                let service = t.send_page(copy.len());
                                let finish = self.schedule_unit(pe, AM, time, service);
                                self.send_message(
                                    pe,
                                    waiter.pe,
                                    Message::PageReply {
                                        copy,
                                        value,
                                        waiter,
                                    },
                                    finish,
                                );
                            }
                            Err(e) => self.fail(e.to_string()),
                        }
                    }
                    Ok(ReadResult::Deferred) => {
                        self.schedule_unit(pe, AM, time, t.enqueue_read);
                    }
                    Err(e) => self.fail(e.to_string()),
                }
            }
            Message::PageReply {
                copy,
                value,
                waiter,
            } => {
                let service = t.receive_page(copy.len());
                let finish = self.schedule_unit(pe, AM, time, service);
                if self.config.remote_page_cache {
                    self.pes[pe].memory.install_page(copy);
                }
                self.push_event(
                    finish,
                    EventKind::Deliver {
                        pe,
                        instance: waiter.instance,
                        slot: waiter.slot,
                        value,
                    },
                );
            }
            Message::WriteForward {
                array,
                offset,
                value,
            } => {
                if self.pes[pe].memory.header(array).is_none() {
                    self.pes[pe].pending_remote.entry(array).or_default().push(
                        Message::WriteForward {
                            array,
                            offset,
                            value,
                        },
                    );
                    return;
                }
                match self.pes[pe].memory.write(array, offset, value) {
                    Ok(WriteOutcome::Local { woken }) => {
                        self.pes[pe].stats.local_writes += 1;
                        let service = t.memory_write + woken.len() as f64 * t.unit_signal;
                        let finish = self.schedule_unit(pe, AM, time, service);
                        for waiter in woken {
                            self.send_to_waiter(pe, waiter, value, finish);
                        }
                    }
                    Ok(WriteOutcome::Remote { owner }) => {
                        // Ownership disagreement should be impossible; route
                        // onwards to stay safe.
                        self.send_message(
                            pe,
                            owner.index(),
                            Message::WriteForward {
                                array,
                                offset,
                                value,
                            },
                            time,
                        );
                    }
                    Err(e) => self.fail(e.to_string()),
                }
            }
        }
    }

    fn register_array(
        &mut self,
        pe: usize,
        id: ArrayId,
        name: &str,
        dims: &[usize],
        distributed: bool,
        origin: usize,
    ) {
        let shape = ArrayShape::new(dims.to_vec());
        let partitioning = if distributed {
            Partitioning::new(shape.len(), self.config.page_size, self.pes.len())
        } else {
            Partitioning::single_owner(
                shape.len(),
                self.config.page_size,
                self.pes.len(),
                PeId(origin),
            )
        };
        if let Err(e) = self.pes[pe].memory.allocate(id, name, shape, partitioning) {
            self.fail(e.to_string());
        }
    }

    // ----- Execution Unit -----

    fn process_eu_run(&mut self, pe: usize, time: f64) {
        self.pes[pe].eu_event_pending = false;
        let Some(id) = self.pes[pe].ready.pop_front() else {
            return;
        };
        let Some(mut inst) = self.pes[pe].instances.remove(&id) else {
            // The instance terminated while queued (should not happen).
            self.kick_eu(pe, time);
            return;
        };
        inst.status = InstanceStatus::Running;
        let start = self.pes[pe].units[EU].next_free.max(time);
        let mut t = start;
        let program = Rc::clone(&self.program);
        let template = program.template(inst.template);
        let read_slots = Rc::clone(&self.read_slots);
        let slot_table = &read_slots[inst.template.index()];
        let timing = self.config.timing.clone();

        // Run the instance on the shared instruction core; this simulator
        // contributes only the event-queue suspension strategy, the timing
        // model (via `charge`), and the Array-Manager message mechanics.
        let exit = {
            let mut cx = SimCtx {
                sim: self,
                pe,
                inst: &mut inst,
                t: &mut t,
                timing: &timing,
            };
            exec::run_instance(
                &mut cx,
                &template.code,
                slot_table,
                template.chunk_meta.as_ref(),
                template.plan.as_ref(),
            )
        };

        let eu = &mut self.pes[pe].units[EU];
        eu.busy += t - start;
        eu.next_free = t;
        match exit {
            Ok(RunExit::Finished(value)) => {
                self.finish_instance(pe, &inst, value, t);
                // Frame released by the Memory Manager.
                self.schedule_unit(pe, MM, t, timing.memory_manager_op);
                self.kick_eu(pe, t);
            }
            Ok(RunExit::Blocked(slot)) => {
                // Event-queue suspension: the instance stays in the PE's
                // table marked blocked; the delivery of the missing token
                // re-queues it (`deliver_value`).
                inst.status = InstanceStatus::Blocked(slot);
                self.pes[pe].instances.insert(id, inst);
                self.kick_eu(pe, t);
            }
            Ok(RunExit::Stopped) => {
                // An error was recorded elsewhere; park the instance so the
                // main loop can surface the error.
                self.pes[pe].instances.insert(id, inst);
            }
            Err(msg) => {
                self.fail(msg);
                self.pes[pe].instances.insert(id, inst);
            }
        }
    }

    fn finish_instance(&mut self, pe: usize, inst: &Instance, value: Option<Value>, now: f64) {
        if inst.id == self.entry_instance {
            self.result = value;
            return;
        }
        if let (Some(waiter), Some(v)) = (inst.return_to, value) {
            self.send_to_waiter(pe, waiter, v, now + self.config.timing.unit_signal);
        }
    }
}

/// The simulator's execution context for the shared instruction core
/// (`pods_sp::exec`): one EU slice of one instance on one PE. The semantics
/// live in the core; this adapter supplies the simulator's *mechanics* —
/// the §5.1 timing model (`charge`), the per-PE [`ArrayMemory`] with page
/// caching and remote messages ([`ArrayOps`]), asynchronous Array-Manager
/// deliveries, and inter-PE spawn routing.
struct SimCtx<'a> {
    sim: &'a mut Simulation,
    pe: usize,
    inst: &'a mut Instance,
    /// The EU-local clock, advanced by `charge` and read by the hooks when
    /// scheduling unit service and message departures.
    t: &'a mut f64,
    timing: &'a TimingModel,
}

impl ArrayOps for SimCtx<'_> {
    fn alloc_array(
        &mut self,
        dst: SlotId,
        name: &str,
        dims: &[usize],
        distributed: bool,
    ) -> Result<(), String> {
        let pe = self.pe;
        // The array ID token is produced asynchronously by the Array
        // Manager: clear the slot and deliver the reference by event.
        self.inst.clear_slot(dst);
        let id = ArrayId(self.sim.next_array);
        self.sim.next_array += 1;
        self.sim
            .arrays
            .push((id, name.to_string(), ArrayShape::new(dims.to_vec())));
        self.sim.register_array(pe, id, name, dims, distributed, pe);
        let finish = self
            .sim
            .schedule_unit(pe, AM, *self.t, self.timing.array_allocate);
        self.sim.push_event(
            finish,
            EventKind::Deliver {
                pe,
                instance: self.inst.id,
                slot: dst,
                value: Value::ArrayRef(id),
            },
        );
        // Distributing allocate: broadcast the request to all PEs.
        if distributed {
            for q in 0..self.sim.pes.len() {
                if q != pe {
                    self.sim.send_message(
                        pe,
                        q,
                        Message::RemoteAlloc {
                            array: id,
                            name: name.to_string(),
                            dims: dims.to_vec(),
                            distributed: true,
                            origin: pe,
                        },
                        finish,
                    );
                }
            }
        }
        Ok(())
    }

    fn with_header<R>(
        &mut self,
        id: ArrayId,
        f: impl FnOnce(&ArrayHeader) -> R,
    ) -> Result<R, String> {
        let pe = self.pe;
        match self.sim.pes[pe].memory.header(id) {
            Some(header) => Ok(f(header)),
            None => Err(format!("array {id} has no header on PE{pe}")),
        }
    }

    fn load_element(&mut self, id: ArrayId, offset: usize, dst: SlotId) -> Result<Loaded, String> {
        let pe = self.pe;
        let waiter = Waiter {
            pe,
            instance: self.inst.id,
            slot: dst,
        };
        match self.sim.pes[pe].memory.read(id, offset, waiter) {
            Ok(ReadOutcome::LocalPresent(v)) => {
                self.sim.pes[pe].stats.local_reads += 1;
                Ok(Loaded::Ready(v))
            }
            Ok(ReadOutcome::CacheHit(v)) => {
                self.sim.pes[pe].stats.cache_hit_reads += 1;
                Ok(Loaded::Ready(v))
            }
            Ok(ReadOutcome::LocalDeferred) => {
                self.sim.pes[pe].stats.deferred_reads += 1;
                self.sim
                    .schedule_unit(pe, AM, *self.t, self.timing.enqueue_read);
                Ok(Loaded::Deferred)
            }
            Ok(ReadOutcome::RemoteMiss { owner, .. }) => {
                self.sim.pes[pe].stats.remote_reads += 1;
                let finish = self.sim.schedule_unit(
                    pe,
                    AM,
                    *self.t,
                    self.timing.memory_read + self.timing.unit_signal,
                );
                self.sim.send_message(
                    pe,
                    owner.index(),
                    Message::ReadRequest {
                        array: id,
                        offset,
                        waiter,
                    },
                    finish,
                );
                Ok(Loaded::Deferred)
            }
            Err(e) => Err(e.to_string()),
        }
    }

    fn store_element(&mut self, id: ArrayId, offset: usize, value: Value) -> Result<(), String> {
        let pe = self.pe;
        match self.sim.pes[pe].memory.write(id, offset, value) {
            Ok(WriteOutcome::Local { woken }) => {
                self.sim.pes[pe].stats.local_writes += 1;
                let service =
                    self.timing.memory_write + woken.len() as f64 * self.timing.unit_signal;
                let finish = self.sim.schedule_unit(pe, AM, *self.t, service);
                for waiter in woken {
                    self.sim.send_to_waiter(pe, waiter, value, finish);
                }
                Ok(())
            }
            Ok(WriteOutcome::Remote { owner }) => {
                self.sim.pes[pe].stats.remote_writes += 1;
                let finish = self.sim.schedule_unit(
                    pe,
                    AM,
                    *self.t,
                    self.timing.memory_write + self.timing.unit_signal,
                );
                self.sim.send_message(
                    pe,
                    owner.index(),
                    Message::WriteForward {
                        array: id,
                        offset,
                        value,
                    },
                    finish,
                );
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    }
}

impl ExecCtx for SimCtx<'_> {
    fn pc(&self) -> usize {
        self.inst.pc
    }

    fn set_pc(&mut self, pc: usize) {
        self.inst.pc = pc;
    }

    fn slot(&self, slot: SlotId) -> Option<Value> {
        self.inst.slot(slot)
    }

    fn set_slot(&mut self, slot: SlotId, value: Value) {
        self.inst.set_slot(slot, value);
    }

    fn clear_slot(&mut self, slot: SlotId) {
        self.inst.clear_slot(slot);
    }

    fn pe(&self) -> usize {
        self.pe
    }

    fn charge(&mut self, cost: Cost) {
        let us = match cost {
            Cost::Binary { op, float } => self.timing.binary_op(op, float),
            Cost::Unary { op, float } => self.timing.unary_op(op, float),
            Cost::Move => self.timing.memory_write,
            Cost::Control => self.timing.int_alu,
            Cost::ArrayAlloc => self.timing.unit_signal,
            Cost::ArrayAccess => self.timing.local_array_access,
            Cost::RangeFilter => 5.0 * self.timing.memory_read,
            Cost::Spawn => self.timing.unit_signal,
            Cost::Return => self.timing.int_alu,
            Cost::ContextSwitch => {
                self.sim.pes[self.pe].stats.context_switches += 1;
                *self.t += self.timing.context_switch;
                return;
            }
        };
        self.sim.pes[self.pe].stats.instructions += 1;
        *self.t += us;
    }

    fn should_stop(&self) -> bool {
        self.sim.error.is_some()
    }

    fn trace_sink(&mut self) -> Option<&mut dyn TraceSink> {
        self.sim
            .sink
            .as_mut()
            .map(|s| s.as_mut() as &mut dyn TraceSink)
    }

    fn spawn(
        &mut self,
        target: SpId,
        args: &[Operand],
        distributed: bool,
        return_to: Option<SlotId>,
    ) -> Result<(), String> {
        let arg_values: Vec<Value> = args.iter().map(|a| self.operand(a)).collect();
        let pe = self.pe;
        let return_to = return_to.map(|slot| Waiter {
            pe,
            instance: self.inst.id,
            slot,
        });
        if distributed {
            for q in 0..self.sim.pes.len() {
                if q == pe {
                    self.sim
                        .create_instance(pe, target, arg_values.clone(), return_to, *self.t);
                } else {
                    self.sim.send_message(
                        pe,
                        q,
                        Message::Spawn {
                            template: target,
                            args: arg_values.clone(),
                            return_to: None,
                        },
                        *self.t,
                    );
                }
            }
        } else {
            self.sim
                .create_instance(pe, target, arg_values, return_to, *self.t);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Unit;
    use pods_partition::{partition, PartitionConfig};

    fn compile_and_partition(src: &str) -> SpProgram {
        let hir = pods_idlang::compile(src).unwrap();
        let loops = pods_dataflow::analyze_loops(&hir);
        let mut program = pods_sp::translate(&hir).unwrap();
        partition(&mut program, &loops, &PartitionConfig::default());
        program
    }

    fn run(src: &str, args: &[Value], pes: usize) -> SimulationResult {
        let program = compile_and_partition(src);
        simulate(&program, args, &MachineConfig::with_pes(pes)).unwrap()
    }

    #[test]
    fn scalar_program_returns_a_value() {
        let result = run("def main(n) { return n * 3 + 1; }", &[Value::Int(4)], 1);
        assert_eq!(result.return_value, Some(Value::Int(13)));
        assert!(result.stats.elapsed_us > 0.0);
    }

    #[test]
    fn function_calls_return_through_tokens() {
        let result = run(
            "def main(n) { x = double(n); return x + 1; } def double(v) { return v * 2; }",
            &[Value::Int(10)],
            1,
        );
        assert_eq!(result.return_value, Some(Value::Int(21)));
    }

    #[test]
    fn simple_loop_fills_an_array_on_one_pe() {
        let result = run(
            "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * i; } return a; }",
            &[Value::Int(8)],
            1,
        );
        let a = result.returned_array().expect("array result");
        assert!(a.is_complete());
        assert_eq!(a.get(&[5]), Some(Value::Int(25)));
    }

    #[test]
    fn distributed_nested_loop_produces_identical_results_on_any_pe_count() {
        let src = r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 {
                        a[i, j] = i * n + j;
                    }
                }
                return a;
            }
        "#;
        let reference = run(src, &[Value::Int(8)], 1);
        let ref_values = reference.returned_array().unwrap().to_f64(-1.0);
        for pes in [2, 4, 8] {
            let result = run(src, &[Value::Int(8)], pes);
            let a = result.returned_array().unwrap();
            assert!(a.is_complete(), "incomplete array on {pes} PEs");
            assert_eq!(a.to_f64(-1.0), ref_values, "wrong values on {pes} PEs");
        }
    }

    #[test]
    fn multi_pe_runs_are_faster_for_parallel_work() {
        let src = r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 {
                        a[i, j] = sqrt(i * 1.0) * sqrt(j * 1.0) + 2.5;
                    }
                }
                return a;
            }
        "#;
        let one = run(src, &[Value::Int(16)], 1);
        let four = run(src, &[Value::Int(16)], 4);
        assert!(four.returned_array().unwrap().is_complete());
        assert!(
            four.elapsed_us() < one.elapsed_us(),
            "4 PEs ({}) not faster than 1 PE ({})",
            four.elapsed_us(),
            one.elapsed_us()
        );
    }

    #[test]
    fn consumer_blocks_until_producer_writes() {
        // main reads elements produced by the distributed loop; I-structure
        // semantics must synchronise the read with the write.
        let src = r#"
            def main(n) {
                a = array(n);
                for i = 0 to n - 1 { a[i] = i * 2; }
                s = a[n - 1] + a[0];
                return s;
            }
        "#;
        let result = run(src, &[Value::Int(10)], 4);
        assert_eq!(result.return_value, Some(Value::Int(18)));
        // Reads of remote or pending elements force context switches.
        assert!(result.stats.total_context_switches() > 0);
    }

    #[test]
    fn single_assignment_violation_is_a_runtime_error() {
        let src = r#"
            def main(n) {
                a = array(n);
                for i = 0 to n - 1 { a[0] = i; }
                return a;
            }
        "#;
        let program = compile_and_partition(src);
        let err = simulate(&program, &[Value::Int(4)], &MachineConfig::with_pes(1)).unwrap_err();
        assert!(matches!(err, SimulationError::Runtime(_)), "{err}");
    }

    #[test]
    fn reading_a_never_written_element_deadlocks() {
        let src = r#"
            def main(n) {
                a = array(n);
                a[0] = 1;
                return a[1];
            }
        "#;
        let program = compile_and_partition(src);
        let err = simulate(&program, &[Value::Int(4)], &MachineConfig::with_pes(1)).unwrap_err();
        assert!(matches!(err, SimulationError::Deadlock { .. }), "{err}");
    }

    #[test]
    fn out_of_bounds_access_is_reported() {
        let src = "def main(n) { a = array(n); a[n + 5] = 1; return 0; }";
        let program = compile_and_partition(src);
        let err = simulate(&program, &[Value::Int(4)], &MachineConfig::with_pes(1)).unwrap_err();
        assert!(matches!(err, SimulationError::Runtime(_)));
    }

    #[test]
    fn event_limit_aborts_runaway_simulations() {
        let src = r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 { for j = 0 to n - 1 { a[i, j] = i + j; } }
                return a;
            }
        "#;
        let program = compile_and_partition(src);
        let config = MachineConfig {
            num_pes: 4,
            max_events: 10,
            ..MachineConfig::default()
        };
        let err = simulate(&program, &[Value::Int(8)], &config).unwrap_err();
        assert!(matches!(err, SimulationError::EventLimitExceeded { .. }));
    }

    #[test]
    fn descending_loops_execute_correctly_distributed() {
        let src = r#"
            def main(n) {
                a = array(n);
                for i = n - 1 downto 0 { a[i] = i + 100; }
                return a;
            }
        "#;
        let result = run(src, &[Value::Int(20)], 4);
        let a = result.returned_array().unwrap();
        assert!(a.is_complete());
        assert_eq!(a.get(&[3]), Some(Value::Int(103)));
    }

    #[test]
    fn remote_reads_use_the_page_cache() {
        // A second loop reads elements written by the first with an offset
        // shifted by one row, forcing some remote reads; the cache should
        // absorb repeated accesses to the same page.
        let src = r#"
            def main(n) {
                a = matrix(n, n);
                b = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 { a[i, j] = i * n + j; }
                }
                for i = 1 to n - 1 {
                    for j = 0 to n - 1 { b[i, j] = a[i - 1, j] * 2; }
                }
                return b;
            }
        "#;
        let result = run(src, &[Value::Int(16)], 4);
        assert!(result.array("b").unwrap().get(&[1, 0]).is_some());
        let stats = &result.stats;
        assert!(
            stats.total_remote_reads() > 0,
            "expected some remote traffic"
        );
        assert!(
            stats.total_cache_hits() > 0,
            "expected the page cache to serve repeated reads"
        );
    }

    #[test]
    fn utilization_report_shows_eu_as_the_busiest_unit() {
        let src = r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 { a[i, j] = sqrt(i * 1.0 + j) * 3.0; }
                }
                return a;
            }
        "#;
        let result = run(src, &[Value::Int(16)], 4);
        let eu = result.stats.utilization(Unit::Execution);
        for unit in [Unit::Matching, Unit::MemoryManager, Unit::Routing] {
            assert!(
                eu >= result.stats.utilization(unit),
                "EU ({eu}) should dominate {unit}"
            );
        }
        assert!(eu > 0.0 && eu <= 1.0);
    }
}
