//! Scalar operator evaluation over run-time [`Value`]s.

use pods_idlang::{BinaryOp, UnaryOp};
use pods_istructure::Value;

/// An arithmetic evaluation error (reported as a simulation runtime error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for EvalError {}

fn numeric(v: &Value, what: &str) -> Result<f64, EvalError> {
    v.as_f64()
        .ok_or_else(|| EvalError(format!("{what} is not numeric: {v}")))
}

/// Evaluates a binary operator.
///
/// Integer operands produce integer results for the arithmetic operators;
/// mixing an integer with a float promotes to float, mirroring conventional
/// numeric semantics. Comparison and logical operators produce booleans.
///
/// # Errors
///
/// Returns an error for non-numeric operands where numbers are required,
/// and for integer division or remainder by zero.
pub fn eval_binary(op: BinaryOp, lhs: Value, rhs: Value) -> Result<Value, EvalError> {
    use BinaryOp::*;
    match op {
        And | Or => {
            let a = lhs
                .as_bool()
                .ok_or_else(|| EvalError(format!("left operand of `{op}` is not boolean")))?;
            let b = rhs
                .as_bool()
                .ok_or_else(|| EvalError(format!("right operand of `{op}` is not boolean")))?;
            Ok(Value::Bool(if op == And { a && b } else { a || b }))
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let a = numeric(&lhs, "left comparison operand")?;
            let b = numeric(&rhs, "right comparison operand")?;
            let r = match op {
                Eq => a == b,
                Ne => a != b,
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(Value::Bool(r))
        }
        Add | Sub | Mul | Div | Rem | Min | Max | Pow => match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => match op {
                Add => Ok(Value::Int(a.wrapping_add(b))),
                Sub => Ok(Value::Int(a.wrapping_sub(b))),
                Mul => Ok(Value::Int(a.wrapping_mul(b))),
                Div => {
                    if b == 0 {
                        Err(EvalError("integer division by zero".into()))
                    } else {
                        Ok(Value::Int(a / b))
                    }
                }
                Rem => {
                    if b == 0 {
                        Err(EvalError("integer remainder by zero".into()))
                    } else {
                        Ok(Value::Int(a % b))
                    }
                }
                Min => Ok(Value::Int(a.min(b))),
                Max => Ok(Value::Int(a.max(b))),
                Pow => {
                    if (0..64).contains(&b) {
                        // Wrapping, like the add/sub/mul arms above: integer
                        // overflow must not panic in debug builds.
                        Ok(Value::Int(a.wrapping_pow(b as u32)))
                    } else {
                        Ok(Value::Float((a as f64).powf(b as f64)))
                    }
                }
                _ => unreachable!(),
            },
            (l, r) => {
                let a = numeric(&l, "left arithmetic operand")?;
                let b = numeric(&r, "right arithmetic operand")?;
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Rem => a % b,
                    Min => a.min(b),
                    Max => a.max(b),
                    Pow => a.powf(b),
                    _ => unreachable!(),
                };
                Ok(Value::Float(v))
            }
        },
    }
}

/// Evaluates a unary operator.
///
/// # Errors
///
/// Returns an error for non-numeric (or, for `Not`, non-boolean) operands.
pub fn eval_unary(op: UnaryOp, v: Value) -> Result<Value, EvalError> {
    use UnaryOp::*;
    match op {
        Not => Ok(Value::Bool(!v.as_bool().ok_or_else(|| {
            EvalError(format!("operand of `not` is not boolean: {v}"))
        })?)),
        Neg => match v {
            Value::Int(i) => Ok(Value::Int(-i)),
            other => Ok(Value::Float(-numeric(&other, "operand of negation")?)),
        },
        Abs => match v {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            other => Ok(Value::Float(numeric(&other, "operand of abs")?.abs())),
        },
        Floor => Ok(Value::Int(numeric(&v, "operand of floor")?.floor() as i64)),
        Ceil => Ok(Value::Int(numeric(&v, "operand of ceil")?.ceil() as i64)),
        Sqrt => Ok(Value::Float(numeric(&v, "operand of sqrt")?.sqrt())),
        Exp => Ok(Value::Float(numeric(&v, "operand of exp")?.exp())),
        Ln => Ok(Value::Float(numeric(&v, "operand of ln")?.ln())),
        Sin => Ok(Value::Float(numeric(&v, "operand of sin")?.sin())),
        Cos => Ok(Value::Float(numeric(&v, "operand of cos")?.cos())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_arithmetic_stays_integer() {
        assert_eq!(
            eval_binary(BinaryOp::Add, Value::Int(2), Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_binary(BinaryOp::Mul, Value::Int(4), Value::Int(5)).unwrap(),
            Value::Int(20)
        );
        assert_eq!(
            eval_binary(BinaryOp::Min, Value::Int(4), Value::Int(5)).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            eval_binary(BinaryOp::Pow, Value::Int(2), Value::Int(10)).unwrap(),
            Value::Int(1024)
        );
    }

    #[test]
    fn mixed_arithmetic_promotes_to_float() {
        assert_eq!(
            eval_binary(BinaryOp::Add, Value::Int(2), Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            eval_binary(BinaryOp::Div, Value::Float(1.0), Value::Float(4.0)).unwrap(),
            Value::Float(0.25)
        );
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            eval_binary(BinaryOp::Lt, Value::Int(1), Value::Int(2)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_binary(BinaryOp::Ge, Value::Float(2.0), Value::Int(3)).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_binary(BinaryOp::And, Value::Bool(true), Value::Bool(false)).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_binary(BinaryOp::Or, Value::Int(1), Value::Bool(false)).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn division_by_zero_is_an_error_for_integers_only() {
        assert!(eval_binary(BinaryOp::Div, Value::Int(1), Value::Int(0)).is_err());
        assert!(eval_binary(BinaryOp::Rem, Value::Int(1), Value::Int(0)).is_err());
        let v = eval_binary(BinaryOp::Div, Value::Float(1.0), Value::Float(0.0)).unwrap();
        assert!(matches!(v, Value::Float(x) if x.is_infinite()));
    }

    #[test]
    fn unary_operators() {
        assert_eq!(
            eval_unary(UnaryOp::Neg, Value::Int(3)).unwrap(),
            Value::Int(-3)
        );
        assert_eq!(
            eval_unary(UnaryOp::Abs, Value::Float(-2.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            eval_unary(UnaryOp::Sqrt, Value::Int(9)).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            eval_unary(UnaryOp::Floor, Value::Float(2.7)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_unary(UnaryOp::Ceil, Value::Float(2.1)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            eval_unary(UnaryOp::Not, Value::Bool(false)).unwrap(),
            Value::Bool(true)
        );
        assert!(eval_unary(UnaryOp::Sqrt, Value::Unit).is_err());
    }

    #[test]
    fn array_refs_are_rejected_in_arithmetic() {
        let arr = Value::ArrayRef(pods_istructure::ArrayId(0));
        assert!(eval_binary(BinaryOp::Add, arr, Value::Int(1)).is_err());
        assert!(eval_binary(BinaryOp::Lt, arr, Value::Int(1)).is_err());
    }
}
