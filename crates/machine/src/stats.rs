//! Simulation statistics: per-unit busy times, utilizations, and event
//! counters — the raw material for Figures 8, 9, and 10 of the paper.

/// The functional units of a PE (Figure 7 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Execution Unit (the conventional ALU running SP code).
    Execution,
    /// Matching Unit (incoming-token dispatch).
    Matching,
    /// Memory Manager (loading/releasing SP frames).
    MemoryManager,
    /// Array Manager (I-structure accesses, page traffic).
    ArrayManager,
    /// Routing Unit (outgoing messages).
    Routing,
}

impl Unit {
    /// All units, in display order.
    pub const ALL: [Unit; 5] = [
        Unit::Execution,
        Unit::Matching,
        Unit::MemoryManager,
        Unit::ArrayManager,
        Unit::Routing,
    ];

    /// Short label used in reports ("EU", "MU", ...).
    pub fn label(self) -> &'static str {
        match self {
            Unit::Execution => "EU",
            Unit::Matching => "MU",
            Unit::MemoryManager => "MM",
            Unit::ArrayManager => "AM",
            Unit::Routing => "RU",
        }
    }
}

impl std::fmt::Display for Unit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Busy time and next-free time of one functional unit on one PE.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UnitState {
    /// Accumulated busy time (microseconds).
    pub busy: f64,
    /// Time at which the unit finishes its current backlog.
    pub next_free: f64,
}

impl UnitState {
    /// Schedules `service` microseconds of work arriving at `now`; returns
    /// the completion time. The unit is a single FIFO server.
    pub fn schedule(&mut self, now: f64, service: f64) -> f64 {
        let start = self.next_free.max(now);
        let finish = start + service;
        self.busy += service;
        self.next_free = finish;
        finish
    }
}

/// Per-PE counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PeStats {
    /// Busy time per unit.
    pub unit_busy: [f64; 5],
    /// Instructions executed by the Execution Unit.
    pub instructions: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// SP instances created on this PE.
    pub instances_created: u64,
    /// Tokens received from other PEs (through the Matching Unit).
    pub tokens_received: u64,
    /// Messages sent to other PEs (through the Routing Unit).
    pub messages_sent: u64,
    /// Local array reads that found the element present.
    pub local_reads: u64,
    /// Reads satisfied from the remote-page cache.
    pub cache_hit_reads: u64,
    /// Reads that required a remote request.
    pub remote_reads: u64,
    /// Reads deferred on an absent element.
    pub deferred_reads: u64,
    /// Array element writes performed (locally owned).
    pub local_writes: u64,
    /// Array element writes forwarded to the owning PE.
    pub remote_writes: u64,
}

/// Statistics of a complete simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimulationStats {
    /// Total simulated time in microseconds.
    pub elapsed_us: f64,
    /// Number of discrete events processed.
    pub events_processed: u64,
    /// Per-PE counters.
    pub per_pe: Vec<PeStats>,
}

impl SimulationStats {
    /// Creates zeroed statistics for `num_pes` PEs.
    pub fn new(num_pes: usize) -> Self {
        SimulationStats {
            elapsed_us: 0.0,
            events_processed: 0,
            per_pe: vec![PeStats::default(); num_pes],
        }
    }

    /// Number of PEs.
    pub fn num_pes(&self) -> usize {
        self.per_pe.len()
    }

    /// Average utilization of a unit across all PEs, in `[0, 1]`.
    pub fn utilization(&self, unit: Unit) -> f64 {
        if self.elapsed_us <= 0.0 || self.per_pe.is_empty() {
            return 0.0;
        }
        let idx = Unit::ALL.iter().position(|u| *u == unit).expect("unit");
        let total: f64 = self.per_pe.iter().map(|p| p.unit_busy[idx]).sum();
        (total / (self.elapsed_us * self.per_pe.len() as f64)).min(1.0)
    }

    /// Utilization of every unit, in [`Unit::ALL`] order.
    pub fn all_utilizations(&self) -> Vec<(Unit, f64)> {
        Unit::ALL
            .iter()
            .map(|u| (*u, self.utilization(*u)))
            .collect()
    }

    /// Total instructions executed across PEs.
    pub fn total_instructions(&self) -> u64 {
        self.per_pe.iter().map(|p| p.instructions).sum()
    }

    /// Total context switches across PEs.
    pub fn total_context_switches(&self) -> u64 {
        self.per_pe.iter().map(|p| p.context_switches).sum()
    }

    /// Total inter-PE messages sent.
    pub fn total_messages(&self) -> u64 {
        self.per_pe.iter().map(|p| p.messages_sent).sum()
    }

    /// Total remote reads (cache misses that crossed the network).
    pub fn total_remote_reads(&self) -> u64 {
        self.per_pe.iter().map(|p| p.remote_reads).sum()
    }

    /// Total reads served by the remote-page cache.
    pub fn total_cache_hits(&self) -> u64 {
        self.per_pe.iter().map(|p| p.cache_hit_reads).sum()
    }

    /// Elapsed time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.elapsed_us / 1.0e6
    }

    /// A compact human-readable summary table.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "elapsed: {:.3} ms over {} PEs ({} events)",
            self.elapsed_us / 1000.0,
            self.num_pes(),
            self.events_processed
        );
        for (unit, util) in self.all_utilizations() {
            let _ = writeln!(out, "  {:>2} utilization: {:5.1}%", unit, util * 100.0);
        }
        let _ = writeln!(
            out,
            "  instructions: {}  ctx-switches: {}  messages: {}  remote reads: {}  cache hits: {}",
            self.total_instructions(),
            self.total_context_switches(),
            self.total_messages(),
            self.total_remote_reads(),
            self.total_cache_hits()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_state_is_a_fifo_server() {
        let mut u = UnitState::default();
        assert_eq!(u.schedule(0.0, 10.0), 10.0);
        // Arriving while busy queues behind the previous work.
        assert_eq!(u.schedule(5.0, 10.0), 20.0);
        // Arriving after the backlog starts immediately.
        assert_eq!(u.schedule(50.0, 5.0), 55.0);
        assert_eq!(u.busy, 25.0);
    }

    #[test]
    fn utilization_is_averaged_across_pes() {
        let mut s = SimulationStats::new(2);
        s.elapsed_us = 100.0;
        s.per_pe[0].unit_busy[0] = 100.0;
        s.per_pe[1].unit_busy[0] = 0.0;
        assert!((s.utilization(Unit::Execution) - 0.5).abs() < 1e-9);
        assert_eq!(s.utilization(Unit::Routing), 0.0);
        assert_eq!(s.all_utilizations().len(), 5);
    }

    #[test]
    fn zero_elapsed_time_gives_zero_utilization() {
        let s = SimulationStats::new(1);
        assert_eq!(s.utilization(Unit::Execution), 0.0);
    }

    #[test]
    fn totals_sum_over_pes() {
        let mut s = SimulationStats::new(2);
        s.per_pe[0].instructions = 10;
        s.per_pe[1].instructions = 20;
        s.per_pe[0].messages_sent = 3;
        s.per_pe[1].context_switches = 4;
        assert_eq!(s.total_instructions(), 30);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.total_context_switches(), 4);
        assert!(s.summary().contains("utilization"));
    }

    #[test]
    fn unit_labels() {
        assert_eq!(Unit::Execution.label(), "EU");
        assert_eq!(Unit::ArrayManager.to_string(), "AM");
        assert_eq!(Unit::ALL.len(), 5);
    }
}
