//! Results returned by a simulation run.

use crate::stats::SimulationStats;
use pods_istructure::{ArrayId, ArrayShape, Value};

/// The final contents of one I-structure array, gathered from the owning
/// segments of all PEs after the simulation finished.
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySnapshot {
    /// The array identifier.
    pub id: ArrayId,
    /// The source-level name the array was allocated under.
    pub name: String,
    /// The array shape.
    pub shape: ArrayShape,
    /// Element values in row-major order; `None` for elements never written.
    pub values: Vec<Option<Value>>,
}

impl ArraySnapshot {
    /// Number of elements that were written.
    pub fn written(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Returns `true` when every element was written.
    pub fn is_complete(&self) -> bool {
        self.written() == self.values.len()
    }

    /// The element at a multi-dimensional (zero-based) index.
    pub fn get(&self, indices: &[i64]) -> Option<Value> {
        let offset = self.shape.offset_of(indices)?;
        self.values.get(offset).copied().flatten()
    }

    /// The whole array as `f64`s, with `default` substituted for unwritten
    /// elements.
    pub fn to_f64(&self, default: f64) -> Vec<f64> {
        self.values
            .iter()
            .map(|v| v.and_then(|v| v.as_f64()).unwrap_or(default))
            .collect()
    }
}

/// The outcome of a successful simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationResult {
    /// The value returned by the entry SP (`main`), if it returned one.
    pub return_value: Option<Value>,
    /// Final contents of every allocated array, in allocation order.
    pub arrays: Vec<ArraySnapshot>,
    /// Simulation statistics (per-unit busy times, counters, elapsed time).
    pub stats: SimulationStats,
}

impl SimulationResult {
    /// Elapsed simulated time in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.stats.elapsed_us
    }

    /// The last-allocated array with the given source-level name.
    pub fn array(&self, name: &str) -> Option<&ArraySnapshot> {
        self.arrays.iter().rev().find(|a| a.name == name)
    }

    /// The array referenced by the entry SP's return value, if it returned
    /// an array reference.
    pub fn returned_array(&self) -> Option<&ArraySnapshot> {
        match self.return_value {
            Some(Value::ArrayRef(id)) => self.arrays.iter().find(|a| a.id == id),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> ArraySnapshot {
        ArraySnapshot {
            id: ArrayId(0),
            name: "a".into(),
            shape: ArrayShape::matrix(2, 2),
            values: vec![
                Some(Value::Int(1)),
                Some(Value::Float(2.5)),
                None,
                Some(Value::Int(4)),
            ],
        }
    }

    #[test]
    fn snapshot_accessors() {
        let s = snapshot();
        assert_eq!(s.written(), 3);
        assert!(!s.is_complete());
        assert_eq!(s.get(&[0, 1]), Some(Value::Float(2.5)));
        assert_eq!(s.get(&[1, 0]), None);
        assert_eq!(s.get(&[5, 5]), None);
        assert_eq!(s.to_f64(-1.0), vec![1.0, 2.5, -1.0, 4.0]);
    }

    #[test]
    fn result_lookup_by_name_and_return_value() {
        let result = SimulationResult {
            return_value: Some(Value::ArrayRef(ArrayId(0))),
            arrays: vec![snapshot()],
            stats: SimulationStats::new(1),
        };
        assert!(result.array("a").is_some());
        assert!(result.array("b").is_none());
        assert_eq!(result.returned_array().unwrap().id, ArrayId(0));
        assert_eq!(result.elapsed_us(), 0.0);
    }
}
