//! The iPSC/2 timing model of §5.1 of the paper.
//!
//! All times are in microseconds. The constants come straight from the
//! paper: the measured per-instruction execution times of the 16 MHz
//! 80386/80387 nodes, Dunigan's message-time formulas for the
//! Direct-Connect communication hardware, the functional-unit service
//! times (Matching Unit, Memory Manager, Array Manager), and the derived
//! quantities (local array read, fast context switch, batched token cost).
//! Operations the paper does not list (integer multiply, transcendental
//! functions other than `pow`) carry documented estimates of the same
//! order of magnitude as their published neighbours.

use pods_idlang::{BinaryOp, UnaryOp};
use pods_istructure::Value;

/// Timing constants of the simulated machine, in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingModel {
    /// Integer add / subtract / compare (paper: 0.300).
    pub int_alu: f64,
    /// Bitwise and logical operations (paper: 0.558).
    pub logical: f64,
    /// Integer multiply / divide (estimate, not listed in the paper).
    pub int_mul: f64,
    /// Floating-point negate (paper: 0.555).
    pub float_neg: f64,
    /// Floating-point compare (paper: 5.803).
    pub float_cmp: f64,
    /// Floating-point power (paper: 96.418).
    pub float_pow: f64,
    /// Floating-point absolute value (paper: 12.626).
    pub float_abs: f64,
    /// Floating-point square root (paper: 18.929).
    pub float_sqrt: f64,
    /// Floating-point multiply (paper: 7.217).
    pub float_mul: f64,
    /// Floating-point divide (paper: 10.707).
    pub float_div: f64,
    /// Floating-point add (paper: 6.753).
    pub float_add: f64,
    /// Floating-point subtract (paper: 6.757).
    pub float_sub: f64,
    /// Transcendental functions (exp, ln, sin, cos) — estimate between the
    /// published sqrt and pow times.
    pub float_transcendental: f64,
    /// Fast context switch: 80386 `CALL ptr16:32`, 21 cycles at 16 MHz
    /// (paper: 1.312).
    pub context_switch: f64,
    /// Local array read issued by the Execution Unit: offset computation,
    /// three comparisons, and the local read (paper: 2.7).
    pub local_array_access: f64,
    /// Matching Unit hash-table lookup per incoming token (paper: 15.0).
    pub matching_unit: f64,
    /// Memory Manager linked-list add/delete (paper: 0.9).
    pub memory_manager_op: f64,
    /// Local memory read (paper: 0.3).
    pub memory_read: f64,
    /// Local memory write (paper: 0.4).
    pub memory_write: f64,
    /// Signal between functional units on the same PE (paper: 1.0).
    pub unit_signal: f64,
    /// Time to push an early (deferred) read onto the queue (paper: 2.9).
    pub enqueue_read: f64,
    /// Array allocation handled by the Array Manager (paper: 100.0).
    pub array_allocate: f64,
    /// Per-token Routing Unit cost when tokens are batched in groups of 20
    /// (paper: 19.5).
    pub token_route: f64,
    /// Fixed cost of a short (≤ 100 byte) message (Dunigan: 390).
    pub small_message: f64,
    /// Fixed part of a long message (Dunigan: 697).
    pub long_message_base: f64,
    /// Per-byte part of a long message (Dunigan: 0.4).
    pub long_message_per_byte: f64,
    /// Network propagation time, assuming 2.5 hops on average (paper: 2.5).
    pub network_hop: f64,
    /// Bytes per array element when computing page-message lengths.
    pub bytes_per_element: f64,
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel {
            int_alu: 0.300,
            logical: 0.558,
            int_mul: 0.558,
            float_neg: 0.555,
            float_cmp: 5.803,
            float_pow: 96.418,
            float_abs: 12.626,
            float_sqrt: 18.929,
            float_mul: 7.217,
            float_div: 10.707,
            float_add: 6.753,
            float_sub: 6.757,
            float_transcendental: 40.0,
            context_switch: 1.312,
            local_array_access: 2.7,
            matching_unit: 15.0,
            memory_manager_op: 0.9,
            memory_read: 0.3,
            memory_write: 0.4,
            unit_signal: 1.0,
            enqueue_read: 2.9,
            array_allocate: 100.0,
            token_route: 19.5,
            small_message: 390.0,
            long_message_base: 697.0,
            long_message_per_byte: 0.4,
            network_hop: 2.5,
            bytes_per_element: 8.0,
        }
    }
}

impl TimingModel {
    /// Execution-Unit time of a binary operation, depending on whether the
    /// operands are floating point.
    pub fn binary_op(&self, op: BinaryOp, float: bool) -> f64 {
        use BinaryOp::*;
        if float {
            match op {
                Add => self.float_add,
                Sub => self.float_sub,
                Mul => self.float_mul,
                Div | Rem => self.float_div,
                Pow => self.float_pow,
                Eq | Ne | Lt | Le | Gt | Ge | Min | Max => self.float_cmp,
                And | Or => self.logical,
            }
        } else {
            match op {
                Add | Sub | Eq | Ne | Lt | Le | Gt | Ge | Min | Max => self.int_alu,
                Mul | Div | Rem | Pow => self.int_mul,
                And | Or => self.logical,
            }
        }
    }

    /// Execution-Unit time of a unary operation.
    pub fn unary_op(&self, op: UnaryOp, float: bool) -> f64 {
        use UnaryOp::*;
        match op {
            Neg => {
                if float {
                    self.float_neg
                } else {
                    self.int_alu
                }
            }
            Not => self.logical,
            Sqrt => self.float_sqrt,
            Abs => {
                if float {
                    self.float_abs
                } else {
                    self.int_alu
                }
            }
            Exp | Ln | Sin | Cos => self.float_transcendental,
            Floor | Ceil => self.float_neg,
        }
    }

    /// Whether a binary operation on these operand values is charged at
    /// floating-point cost.
    pub fn operands_are_float(lhs: &Value, rhs: &Value) -> bool {
        lhs.is_float() || rhs.is_float()
    }

    /// Dunigan message time for a message of `bytes` payload bytes.
    pub fn message_time(&self, bytes: usize) -> f64 {
        if bytes <= 100 {
            self.small_message
        } else {
            self.long_message_base + self.long_message_per_byte * bytes as f64
        }
    }

    /// Routing-Unit time to ship one page of `page_elements` elements.
    pub fn page_message_time(&self, page_elements: usize) -> f64 {
        self.message_time((page_elements as f64 * self.bytes_per_element) as usize)
    }

    /// Array-Manager time to extract ("send") a page of `page_elements`.
    pub fn send_page(&self, page_elements: usize) -> f64 {
        page_elements as f64 * self.memory_read + self.unit_signal
    }

    /// Array-Manager time to install ("receive") a page of `page_elements`.
    pub fn receive_page(&self, page_elements: usize) -> f64 {
        page_elements as f64 * self.memory_write
    }
}

/// Configuration of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of processing elements.
    pub num_pes: usize,
    /// Page size in array elements (the paper determined 32 elements /
    /// roughly 2 KB to be best for the iPSC/2).
    pub page_size: usize,
    /// Enable the software page cache for remote reads.
    pub remote_page_cache: bool,
    /// The timing constants.
    pub timing: TimingModel,
    /// Safety valve: abort the simulation after this many processed events
    /// (0 disables the limit).
    pub max_events: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            num_pes: 1,
            page_size: 32,
            remote_page_cache: true,
            timing: TimingModel::default(),
            max_events: 0,
        }
    }
}

impl MachineConfig {
    /// A configuration with the given number of PEs and paper defaults for
    /// everything else.
    pub fn with_pes(num_pes: usize) -> Self {
        MachineConfig {
            num_pes: num_pes.max(1),
            ..MachineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_reproduced() {
        let t = TimingModel::default();
        assert_eq!(t.binary_op(BinaryOp::Add, false), 0.300);
        assert_eq!(t.binary_op(BinaryOp::Add, true), 6.753);
        assert_eq!(t.binary_op(BinaryOp::Mul, true), 7.217);
        assert_eq!(t.binary_op(BinaryOp::Div, true), 10.707);
        assert_eq!(t.binary_op(BinaryOp::Pow, true), 96.418);
        assert_eq!(t.binary_op(BinaryOp::Lt, true), 5.803);
        assert_eq!(t.unary_op(UnaryOp::Sqrt, true), 18.929);
        assert_eq!(t.unary_op(UnaryOp::Abs, true), 12.626);
        assert_eq!(t.unary_op(UnaryOp::Neg, true), 0.555);
        assert_eq!(t.unary_op(UnaryOp::Neg, false), 0.300);
        assert_eq!(t.context_switch, 1.312);
        assert_eq!(t.local_array_access, 2.7);
        assert_eq!(t.matching_unit, 15.0);
    }

    #[test]
    fn dunigan_message_times() {
        let t = TimingModel::default();
        assert_eq!(t.message_time(50), 390.0);
        assert_eq!(t.message_time(100), 390.0);
        let long = t.message_time(256);
        assert!((long - (697.0 + 0.4 * 256.0)).abs() < 1e-9);
        // A 32-element page is 256 bytes.
        assert!((t.page_message_time(32) - long).abs() < 1e-9);
    }

    #[test]
    fn page_transfer_costs_scale_with_page_size() {
        let t = TimingModel::default();
        assert!((t.send_page(32) - (32.0 * 0.3 + 1.0)).abs() < 1e-9);
        assert!((t.receive_page(32) - 32.0 * 0.4).abs() < 1e-9);
        assert!(t.send_page(64) > t.send_page(32));
    }

    #[test]
    fn float_detection_for_operand_pairs() {
        assert!(TimingModel::operands_are_float(
            &Value::Float(1.0),
            &Value::Int(2)
        ));
        assert!(!TimingModel::operands_are_float(
            &Value::Int(1),
            &Value::Int(2)
        ));
    }

    #[test]
    fn machine_config_defaults_match_the_paper() {
        let c = MachineConfig::default();
        assert_eq!(c.page_size, 32);
        assert!(c.remote_page_cache);
        assert_eq!(MachineConfig::with_pes(0).num_pes, 1);
        assert_eq!(MachineConfig::with_pes(32).num_pes, 32);
    }
}
