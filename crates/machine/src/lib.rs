//! Instruction-level simulator of the PODS target architecture.
//!
//! The paper evaluates PODS on a simulated Intel iPSC/2: a distributed-memory
//! MIMD machine whose PEs each contain an Execution Unit, Matching Unit,
//! Memory Manager, Array Manager, and Routing Unit (Figure 7), with the
//! timing constants of §5.1. This crate reproduces that simulator:
//!
//! * [`TimingModel`] / [`MachineConfig`] — the published timing constants and
//!   machine parameters (32-element pages, Dunigan message times, ...),
//! * [`Simulation`] / [`simulate`] — a discrete-event simulation that
//!   executes a partitioned [`pods_sp::SpProgram`] on `N` PEs, modelling
//!   split-phase array access, deferred reads, remote page caching, `LD`
//!   spawning, Range Filters, and blocking/re-activation of SP instances,
//! * [`SimulationResult`] / [`SimulationStats`] — final array contents, the
//!   entry SP's return value, per-unit utilizations and event counters (the
//!   raw material for the paper's Figures 8–10).
//!
//! # Example
//!
//! ```
//! use pods_machine::{simulate, MachineConfig};
//! use pods_istructure::Value;
//!
//! let hir = pods_idlang::compile(
//!     "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * i; } return a; }",
//! ).unwrap();
//! let loops = pods_dataflow::analyze_loops(&hir);
//! let mut program = pods_sp::translate(&hir).unwrap();
//! pods_partition::partition(&mut program, &loops, &Default::default());
//!
//! let result = simulate(&program, &[Value::Int(16)], &MachineConfig::with_pes(4)).unwrap();
//! assert!(result.returned_array().unwrap().is_complete());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instance;
pub mod result;
pub mod sim;
pub mod stats;
pub mod timing;

// Scalar evaluation lives in the shared instruction core now
// (`pods_sp::exec`); re-exported here for the historical API surface.
pub use instance::{Instance, InstanceId, InstanceStatus, Waiter};
pub use pods_sp::exec::{eval_binary, eval_unary, EvalError};
pub use result::{ArraySnapshot, SimulationResult};
pub use sim::{simulate, simulate_with_sink, Simulation, SimulationError};
pub use stats::{PeStats, SimulationStats, Unit, UnitState};
pub use timing::{MachineConfig, TimingModel};
