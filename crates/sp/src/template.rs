//! SP templates and programs.
//!
//! A template is the static code of one Subcompact Process: the per-instance
//! frame layout (operand slots), the instruction sequence, and — for
//! loop-level SPs — the metadata the PODS Partitioner needs to insert Range
//! Filters (which slots hold the loop bounds and index, which instructions
//! initialise and test them).

use crate::instr::{Instr, Operand, SlotId, SpId};
use crate::specialize::TemplatePlan;
use std::collections::HashMap;

/// What a template was generated from.
#[derive(Debug, Clone, PartialEq)]
pub enum SpKind {
    /// The body of a user function.
    Function {
        /// Function name.
        name: String,
    },
    /// One level of a loop nest.
    Loop {
        /// The enclosing function.
        function: String,
        /// Preorder ordinal of the loop within its function (matches
        /// `pods_dataflow::LoopKey`).
        ordinal: usize,
        /// The loop index variable.
        var: String,
        /// `true` for descending loops.
        descending: bool,
        /// Nesting depth within the function (0 = outermost loop).
        depth: usize,
    },
}

/// Range-Filter-relevant metadata of a loop template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopMeta {
    /// Parameter slot holding the initial index value.
    pub init_param_slot: SlotId,
    /// Parameter slot holding the final index value (inclusive).
    pub limit_param_slot: SlotId,
    /// Slot holding the circulating index value.
    pub index_slot: SlotId,
    /// Slot holding the effective loop limit used by the termination test.
    pub limit_slot: SlotId,
    /// Program counter of the instruction that initialises the index from
    /// the initial bound.
    pub init_instr: usize,
    /// Program counter of the instruction that initialises the effective
    /// limit from the limit parameter.
    pub limit_init_instr: usize,
    /// Program counter of the loop-termination test instruction.
    pub test_instr: usize,
}

/// Metadata of a *chunked* loop template: the chunking transform groups
/// `chunk` consecutive outer iterations into one SP instance, and the shared
/// driver loop in [`crate::exec`] uses this record to advance the iteration
/// cursor in place instead of letting the instance terminate.
///
/// The parent spawn passes its effective loop limit as an extra trailing
/// argument (received in `limit`), and the driver re-runs the parent's own
/// continuation test (`Le` ascending / `Ge` descending, with the same
/// numeric promotion) before each in-place advance — so a chunked run
/// executes exactly the iterations the unchunked program would, including
/// the faulting out-of-range ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChunkMeta {
    /// Parameter slot holding this instance's iteration cursor (the outer
    /// index value the parent passed).
    pub cursor: SlotId,
    /// Parameter slot receiving the parent's effective loop limit.
    pub limit: SlotId,
    /// Scratch slot counting iterations taken by this instance (absent on
    /// entry; the driver materialises and advances it).
    pub taken: SlotId,
    /// First non-parameter slot: the driver clears `first_scratch..num_slots`
    /// between iterations so stale presence bits never leak across them.
    pub first_scratch: usize,
    /// Total frame slots (upper end of the scratch-clear range).
    pub num_slots: usize,
    /// Iterations per instance (the grain); always ≥ 1.
    pub chunk: usize,
    /// `true` when the chunked loop steps downward (`downto`).
    pub descending: bool,
}

/// The static description of one Subcompact Process.
#[derive(Debug, Clone, PartialEq)]
pub struct SpTemplate {
    /// The template's identifier within its program.
    pub id: SpId,
    /// Human-readable name (`main`, `main.loop0.i`, ...).
    pub name: String,
    /// What the template was generated from.
    pub kind: SpKind,
    /// Names of the parameter slots, in order. Parameters occupy slots
    /// `0..params.len()` of the frame and are filled by the spawn message.
    pub params: Vec<String>,
    /// Total number of frame slots.
    pub num_slots: usize,
    /// Debug names of all slots.
    pub slot_names: Vec<String>,
    /// The instruction sequence.
    pub code: Vec<Instr>,
    /// Loop metadata for loop-level templates.
    pub loop_meta: Option<LoopMeta>,
    /// Chunk metadata, set by the chunking transform when this template
    /// executes several consecutive outer iterations per instance.
    pub chunk_meta: Option<ChunkMeta>,
    /// The pre-resolved execution plan attached by the prepare-time
    /// specialization pass ([`crate::specialize::specialize_program`]);
    /// `None` executes through the plain interpreter loop.
    pub plan: Option<TemplatePlan>,
}

impl SpTemplate {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Returns `true` when the template has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// The slot of a named parameter, if present.
    pub fn param_slot(&self, name: &str) -> Option<SlotId> {
        self.params.iter().position(|p| p == name).map(SlotId)
    }

    /// Returns `true` when this is a loop-level template.
    pub fn is_loop(&self) -> bool {
        matches!(self.kind, SpKind::Loop { .. })
    }

    /// Inserts `prologue` instructions at the start of the code, shifting
    /// every jump target and the loop metadata accordingly. Used by the
    /// partitioner to prepend Range-Filter bound computations.
    pub fn insert_prologue(&mut self, prologue: Vec<Instr>) {
        let shift = prologue.len();
        if shift == 0 {
            return;
        }
        for instr in &mut self.code {
            instr.shift_targets(|t| t + shift);
        }
        if let Some(meta) = &mut self.loop_meta {
            meta.init_instr += shift;
            meta.limit_init_instr += shift;
            meta.test_instr += shift;
        }
        let mut new_code = prologue;
        new_code.append(&mut self.code);
        self.code = new_code;
    }

    /// Adds a fresh slot (used by the partitioner) and returns its id.
    pub fn add_slot(&mut self, name: impl Into<String>) -> SlotId {
        let id = SlotId(self.num_slots);
        self.num_slots += 1;
        self.slot_names.push(name.into());
        id
    }

    /// Validates internal consistency: jump targets in range, slot references
    /// in range, parameters within the frame. Returns a list of problems
    /// (empty when the template is well-formed).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        if self.params.len() > self.num_slots {
            problems.push(format!(
                "{}: {} params but only {} slots",
                self.name,
                self.params.len(),
                self.num_slots
            ));
        }
        if self.slot_names.len() != self.num_slots {
            problems.push(format!(
                "{}: {} slot names for {} slots",
                self.name,
                self.slot_names.len(),
                self.num_slots
            ));
        }
        for (pc, instr) in self.code.iter().enumerate() {
            for slot in instr.read_slots() {
                if slot.index() >= self.num_slots {
                    problems.push(format!("{}@{pc}: reads out-of-range {slot}", self.name));
                }
            }
            if let Some(slot) = instr.written_slot() {
                if slot.index() >= self.num_slots {
                    problems.push(format!("{}@{pc}: writes out-of-range {slot}", self.name));
                }
            }
            match instr {
                Instr::Jump { target } | Instr::BranchIfFalse { target, .. }
                    if *target > self.code.len() =>
                {
                    problems.push(format!(
                        "{}@{pc}: jump target {target} out of range",
                        self.name
                    ));
                }
                _ => {}
            }
        }
        if let Some(chunk) = &self.chunk_meta {
            for (what, slot) in [
                ("cursor", chunk.cursor),
                ("limit", chunk.limit),
                ("taken", chunk.taken),
            ] {
                if slot.index() >= self.num_slots {
                    problems.push(format!(
                        "{}: chunk {what} slot {slot} out of range",
                        self.name
                    ));
                }
            }
            if chunk.num_slots != self.num_slots {
                problems.push(format!(
                    "{}: chunk meta records {} slots, template has {}",
                    self.name, chunk.num_slots, self.num_slots
                ));
            }
            if chunk.chunk == 0 {
                problems.push(format!("{}: chunk size 0", self.name));
            }
        }
        problems
    }

    /// A human-readable disassembly of the template, for debugging and the
    /// example binaries.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} {} ({} slots, {} params)",
            self.id,
            self.name,
            self.num_slots,
            self.params.len()
        );
        for (pc, instr) in self.code.iter().enumerate() {
            let _ = writeln!(out, "  {pc:>3}: {instr:?}");
        }
        out
    }
}

/// A complete translated program: all SP templates plus the entry template.
#[derive(Debug, Clone, PartialEq)]
pub struct SpProgram {
    templates: Vec<SpTemplate>,
    functions: HashMap<String, SpId>,
    entry: SpId,
}

impl SpProgram {
    /// Assembles a program from templates. `entry` is the template executed
    /// first (normally `main`'s).
    pub fn new(templates: Vec<SpTemplate>, functions: HashMap<String, SpId>, entry: SpId) -> Self {
        SpProgram {
            templates,
            functions,
            entry,
        }
    }

    /// All templates, indexed by [`SpId`].
    pub fn templates(&self) -> &[SpTemplate] {
        &self.templates
    }

    /// Mutable access for the partitioner.
    pub fn templates_mut(&mut self) -> &mut [SpTemplate] {
        &mut self.templates
    }

    /// The template with the given id.
    pub fn template(&self, id: SpId) -> &SpTemplate {
        &self.templates[id.index()]
    }

    /// The entry template.
    pub fn entry(&self) -> SpId {
        self.entry
    }

    /// The template of a function body.
    pub fn function(&self, name: &str) -> Option<SpId> {
        self.functions.get(name).copied()
    }

    /// Number of templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Returns `true` when the program has no templates.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// The loop template with the given function/ordinal identity.
    pub fn loop_template(&self, function: &str, ordinal: usize) -> Option<&SpTemplate> {
        self.templates.iter().find(|t| match &t.kind {
            SpKind::Loop {
                function: f,
                ordinal: o,
                ..
            } => f == function && *o == ordinal,
            _ => false,
        })
    }

    /// Validates every template; returns all problems found.
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for t in &self.templates {
            problems.extend(t.validate());
            if t.id.index() >= self.templates.len() {
                problems.push(format!("{}: id out of range", t.name));
            }
        }
        for (pc, instr) in self
            .templates
            .iter()
            .flat_map(|t| t.code.iter().enumerate())
        {
            if let Instr::Spawn { target, args, .. } = instr {
                if target.index() >= self.templates.len() {
                    problems.push(format!("spawn@{pc}: unknown target {target}"));
                } else {
                    let callee = &self.templates[target.index()];
                    if args.len() != callee.params.len() {
                        problems.push(format!(
                            "spawn@{pc}: {} args for {} params of {}",
                            args.len(),
                            callee.params.len(),
                            callee.name
                        ));
                    }
                }
            }
        }
        problems
    }

    /// Total number of instructions across all templates.
    pub fn total_instructions(&self) -> usize {
        self.templates.iter().map(|t| t.code.len()).sum()
    }

    /// A structural fingerprint of the program: a 64-bit hash over the entry
    /// point and every template's name, frame layout, and instruction
    /// sequence. Two programs with equal code (including partitioner
    /// rewrites — `LD` conversion, Range-Filter prologues) fingerprint
    /// equally; any code or layout difference changes the hash with
    /// overwhelming probability. Prepared-program caches use this to
    /// identify and cross-check partitioned programs without comparing
    /// instruction streams.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.entry.hash(&mut h);
        self.templates.len().hash(&mut h);
        for t in &self.templates {
            t.id.hash(&mut h);
            t.name.hash(&mut h);
            t.params.hash(&mut h);
            t.num_slots.hash(&mut h);
            t.code.hash(&mut h);
            // Chunk metadata changes execution (the driver's in-place
            // iteration advance), so it is part of structural identity even
            // when the instruction stream happens to match.
            t.chunk_meta.hash(&mut h);
            // So does the specialization plan (super-op dispatch vs plain
            // interpretation): hash its shape so a specialized program
            // never fingerprints equal to its unspecialized twin. The plan
            // is a pure function of the code, so the shape is enough.
            match &t.plan {
                None => 0u8.hash(&mut h),
                Some(plan) => {
                    1u8.hash(&mut h);
                    plan.hash_shape(&mut h);
                }
            }
        }
        h.finish()
    }
}

/// Convenience helpers for building operands in tests and the translator.
pub fn slot(i: usize) -> Operand {
    Operand::Slot(SlotId(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pods_idlang::BinaryOp;

    fn tiny_loop_template() -> SpTemplate {
        // for i = init to limit { } rendered by hand.
        SpTemplate {
            id: SpId(0),
            name: "loop".into(),
            kind: SpKind::Loop {
                function: "main".into(),
                ordinal: 0,
                var: "i".into(),
                descending: false,
                depth: 0,
            },
            params: vec!["i__init".into(), "i__limit".into()],
            num_slots: 5,
            slot_names: vec![
                "i__init".into(),
                "i__limit".into(),
                "i".into(),
                "limit".into(),
                "cont".into(),
            ],
            code: vec![
                Instr::Move {
                    dst: SlotId(2),
                    src: slot(0),
                },
                Instr::Move {
                    dst: SlotId(3),
                    src: slot(1),
                },
                Instr::Binary {
                    op: BinaryOp::Le,
                    dst: SlotId(4),
                    lhs: slot(2),
                    rhs: slot(3),
                },
                Instr::BranchIfFalse {
                    cond: slot(4),
                    target: 6,
                },
                Instr::Binary {
                    op: BinaryOp::Add,
                    dst: SlotId(2),
                    lhs: slot(2),
                    rhs: Operand::Int(1),
                },
                Instr::Jump { target: 2 },
                Instr::Return { value: None },
            ],
            loop_meta: Some(LoopMeta {
                init_param_slot: SlotId(0),
                limit_param_slot: SlotId(1),
                index_slot: SlotId(2),
                limit_slot: SlotId(3),
                init_instr: 0,
                limit_init_instr: 1,
                test_instr: 2,
            }),
            chunk_meta: None,
            plan: None,
        }
    }

    #[test]
    fn prologue_insertion_shifts_targets_and_meta() {
        let mut t = tiny_loop_template();
        let extra = t.add_slot("rf_lo");
        t.insert_prologue(vec![Instr::Move {
            dst: extra,
            src: Operand::Int(0),
        }]);
        assert_eq!(t.code.len(), 8);
        assert!(matches!(t.code[4], Instr::BranchIfFalse { target: 7, .. }));
        assert!(matches!(t.code[6], Instr::Jump { target: 3 }));
        let meta = t.loop_meta.unwrap();
        assert_eq!(meta.init_instr, 1);
        assert_eq!(meta.test_instr, 3);
        assert!(t.validate().is_empty(), "{:?}", t.validate());
    }

    #[test]
    fn validation_catches_bad_slots_and_targets() {
        let mut t = tiny_loop_template();
        t.code.push(Instr::Jump { target: 99 });
        t.code.push(Instr::Move {
            dst: SlotId(42),
            src: slot(0),
        });
        let problems = t.validate();
        assert_eq!(problems.len(), 2);
    }

    #[test]
    fn program_lookup_and_spawn_arity_validation() {
        let loop_t = tiny_loop_template();
        let main_t = SpTemplate {
            id: SpId(1),
            name: "main".into(),
            kind: SpKind::Function {
                name: "main".into(),
            },
            params: vec![],
            num_slots: 1,
            slot_names: vec!["tmp".into()],
            code: vec![
                Instr::Spawn {
                    target: SpId(0),
                    args: vec![Operand::Int(0), Operand::Int(3)],
                    distributed: false,
                    ret: None,
                },
                Instr::Return {
                    value: Some(Operand::Int(0)),
                },
            ],
            loop_meta: None,
            chunk_meta: None,
            plan: None,
        };
        let mut functions = HashMap::new();
        functions.insert("main".to_string(), SpId(1));
        let program = SpProgram::new(vec![loop_t, main_t], functions, SpId(1));
        assert_eq!(program.entry(), SpId(1));
        assert_eq!(program.function("main"), Some(SpId(1)));
        assert!(program.loop_template("main", 0).is_some());
        assert!(program.loop_template("main", 3).is_none());
        assert!(program.validate().is_empty());
        assert_eq!(program.total_instructions(), 9);
        assert!(!program.is_empty());
        assert!(program.template(SpId(0)).disassemble().contains("SP0"));
    }

    #[test]
    fn fingerprint_tracks_structural_identity() {
        let make = || {
            let loop_t = tiny_loop_template();
            let functions = HashMap::from([("main".to_string(), SpId(0))]);
            SpProgram::new(vec![loop_t], functions, SpId(0))
        };
        let a = make();
        let b = make();
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal code, equal hash");

        // Any partitioner-style rewrite must change the fingerprint.
        let mut c = make();
        c.templates_mut()[0].insert_prologue(vec![Instr::Move {
            dst: SlotId(2),
            src: Operand::Int(0),
        }]);
        assert_ne!(a.fingerprint(), c.fingerprint(), "rewritten code, new hash");

        // Immediate operands participate, including float bit patterns.
        let mut d = make();
        d.templates_mut()[0].code[0] = Instr::Move {
            dst: SlotId(2),
            src: Operand::Float(1.5),
        };
        let mut e = make();
        e.templates_mut()[0].code[0] = Instr::Move {
            dst: SlotId(2),
            src: Operand::Float(2.5),
        };
        assert_ne!(d.fingerprint(), e.fingerprint());
    }

    #[test]
    fn spawn_arity_mismatch_is_reported() {
        let loop_t = tiny_loop_template();
        let main_t = SpTemplate {
            id: SpId(1),
            name: "main".into(),
            kind: SpKind::Function {
                name: "main".into(),
            },
            params: vec![],
            num_slots: 0,
            slot_names: vec![],
            code: vec![Instr::Spawn {
                target: SpId(0),
                args: vec![Operand::Int(0)],
                distributed: false,
                ret: None,
            }],
            loop_meta: None,
            chunk_meta: None,
            plan: None,
        };
        let program = SpProgram::new(
            vec![loop_t, main_t],
            HashMap::from([("main".to_string(), SpId(1))]),
            SpId(1),
        );
        assert_eq!(program.validate().len(), 1);
    }
}
