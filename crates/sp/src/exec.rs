//! The shared SP instruction-execution core.
//!
//! Three schedulers execute SP instructions: the discrete-event machine
//! simulator (`pods-machine`), the native work-stealing thread pool, and the
//! async cooperative executor (both in the `pods` crate). Before this module
//! existed each of them carried its own hand-copied `match instr`
//! interpreter, and the differential test suite was the only thing keeping
//! the three copies from drifting apart — a rule change (or a rule *fix*)
//! had to be applied three times, identically, by hand.
//!
//! This module is the single audited implementation of the *semantics*:
//! operand coercion, the dataflow firing rule, arithmetic evaluation,
//! zero-dimension allocation rejection, split-phase load rules, Range-Filter
//! clamping, spawn argument marshalling, and return routing. Engines differ
//! only in *mechanics*, expressed through two small traits:
//!
//! * [`ArrayOps`] — how I-structure storage is reached: the simulator's
//!   per-PE [`pods_istructure::ArrayMemory`] (with page caching and remote
//!   messages) vs the pooled engines' [`pods_istructure::SharedArrayStore`].
//! * [`ExecCtx`] — the suspension strategy and everything else scheduler
//!   shaped: frame slots, the program counter, cost accounting (the
//!   simulator's timing model), spawning, and the stop signal. When the
//!   firing rule finds an operand absent, [`run_instance`] returns
//!   [`RunExit::Blocked`] and the engine decides what a suspension *is*:
//!   the simulator re-queues the instance on an event, the native pool
//!   parks it in a registry with a mailbox re-check, the async executor
//!   saves the frame in the task and registers a waker.
//!
//! # The unified rules
//!
//! Porting the three interpreters onto this core surfaced divergences;
//! the corrected rule for each is encoded here (and pinned by the
//! table-driven tests below) so it can never silently fork again:
//!
//! * **Split-phase loads** ([`Instr::ArrayLoad`]): issuing a load clears the
//!   destination slot's presence bit and the SP *keeps running* until the
//!   value is actually consumed (the firing rule of a later instruction
//!   blocks on the slot). The simulator always did this; the pooled engines
//!   used to suspend eagerly at the load itself. One consequence is shared
//!   deadlock reporting: the diagnosed pc is always the instruction whose
//!   operands are missing — the consumer — on every engine (previously the
//!   async engine patched its report to the issuing pc instead).
//! * **Range-Filter clamping** ([`Instr::RangeLo`] / [`Instr::RangeHi`]):
//!   the filter *partitions the source iteration range*; it must never
//!   truncate it. A PE whose responsibility touches the array's edge keeps
//!   the original bound, so out-of-range iterations still execute (exactly
//!   once, on the edge PE) and fault in the array access just as the
//!   sequential oracle faults. The old rule clamped to the edge, silently
//!   swallowing out-of-bounds iterations that the oracle reports as errors.
//!   On one PE the filter is now the identity, which is self-evidently the
//!   sequential semantics.
//! * **Branch coercion** ([`Instr::BranchIfFalse`]): numbers are truthy
//!   (non-zero) like the oracle's conditions, but branching on a value with
//!   no truth value (an array reference, unit) is a runtime error — it used
//!   to silently take the false edge.
//! * **Scalar evaluation** ([`eval_binary`] / [`eval_unary`]): integer
//!   arithmetic is uniformly wrapping. Division and remainder previously
//!   used the panicking operators, so `i64::MIN / -1` killed the executing
//!   worker thread (poisoning a whole pool) instead of producing a value;
//!   negation and absolute value overflowed the same way.

use crate::instr::{Instr, Operand, SlotId, SpId};
use crate::specialize::{Fetch, FusedOp, PlanOp, SuperOp, TemplatePlan};
use crate::template::{ChunkMeta, SpProgram};
use pods_idlang::{BinaryOp, UnaryOp};
use pods_istructure::{ArrayHeader, ArrayId, DimRange, PeId, Value};

// ---------------------------------------------------------------------------
// Scalar evaluation (moved here from `pods-machine` so every interpreter —
// including the sequential oracle — shares one implementation).
// ---------------------------------------------------------------------------

/// An arithmetic evaluation error (reported as a runtime error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError(pub String);

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for EvalError {}

fn numeric(v: &Value, what: &str) -> Result<f64, EvalError> {
    v.as_f64()
        .ok_or_else(|| EvalError(format!("{what} is not numeric: {v}")))
}

/// Evaluates a binary operator.
///
/// Integer operands produce integer results for the arithmetic operators;
/// mixing an integer with a float promotes to float, mirroring conventional
/// numeric semantics. Comparison and logical operators produce booleans.
/// Integer arithmetic is uniformly *wrapping* — including division and
/// remainder, so `i64::MIN / -1` wraps instead of panicking (a panic inside
/// a worker thread would poison a whole execution pool).
///
/// # Errors
///
/// Returns an error for non-numeric operands where numbers are required,
/// and for integer division or remainder by zero.
pub fn eval_binary(op: BinaryOp, lhs: Value, rhs: Value) -> Result<Value, EvalError> {
    use BinaryOp::*;
    match op {
        And | Or => {
            let a = lhs
                .as_bool()
                .ok_or_else(|| EvalError(format!("left operand of `{op}` is not boolean")))?;
            let b = rhs
                .as_bool()
                .ok_or_else(|| EvalError(format!("right operand of `{op}` is not boolean")))?;
            Ok(Value::Bool(if op == And { a && b } else { a || b }))
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let a = numeric(&lhs, "left comparison operand")?;
            let b = numeric(&rhs, "right comparison operand")?;
            let r = match op {
                Eq => a == b,
                Ne => a != b,
                Lt => a < b,
                Le => a <= b,
                Gt => a > b,
                Ge => a >= b,
                _ => unreachable!(),
            };
            Ok(Value::Bool(r))
        }
        Add | Sub | Mul | Div | Rem | Min | Max | Pow => match (lhs, rhs) {
            (Value::Int(a), Value::Int(b)) => match op {
                Add => Ok(Value::Int(a.wrapping_add(b))),
                Sub => Ok(Value::Int(a.wrapping_sub(b))),
                Mul => Ok(Value::Int(a.wrapping_mul(b))),
                Div => {
                    if b == 0 {
                        Err(EvalError("integer division by zero".into()))
                    } else {
                        // Wrapping, like the other arms: `i64::MIN / -1`
                        // must not panic the executing worker.
                        Ok(Value::Int(a.wrapping_div(b)))
                    }
                }
                Rem => {
                    if b == 0 {
                        Err(EvalError("integer remainder by zero".into()))
                    } else {
                        Ok(Value::Int(a.wrapping_rem(b)))
                    }
                }
                Min => Ok(Value::Int(a.min(b))),
                Max => Ok(Value::Int(a.max(b))),
                Pow => {
                    if (0..64).contains(&b) {
                        // Wrapping, like the add/sub/mul arms above: integer
                        // overflow must not panic in debug builds.
                        Ok(Value::Int(a.wrapping_pow(b as u32)))
                    } else {
                        Ok(Value::Float((a as f64).powf(b as f64)))
                    }
                }
                _ => unreachable!(),
            },
            (l, r) => {
                let a = numeric(&l, "left arithmetic operand")?;
                let b = numeric(&r, "right arithmetic operand")?;
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Rem => a % b,
                    Min => a.min(b),
                    Max => a.max(b),
                    Pow => a.powf(b),
                    _ => unreachable!(),
                };
                Ok(Value::Float(v))
            }
        },
    }
}

/// Evaluates a unary operator. Integer negation and absolute value wrap on
/// `i64::MIN` instead of panicking.
///
/// # Errors
///
/// Returns an error for non-numeric (or, for `Not`, non-boolean) operands.
pub fn eval_unary(op: UnaryOp, v: Value) -> Result<Value, EvalError> {
    use UnaryOp::*;
    match op {
        Not => Ok(Value::Bool(!v.as_bool().ok_or_else(|| {
            EvalError(format!("operand of `not` is not boolean: {v}"))
        })?)),
        Neg => match v {
            Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
            other => Ok(Value::Float(-numeric(&other, "operand of negation")?)),
        },
        Abs => match v {
            Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
            other => Ok(Value::Float(numeric(&other, "operand of abs")?.abs())),
        },
        Floor => Ok(Value::Int(numeric(&v, "operand of floor")?.floor() as i64)),
        Ceil => Ok(Value::Int(numeric(&v, "operand of ceil")?.ceil() as i64)),
        Sqrt => Ok(Value::Float(numeric(&v, "operand of sqrt")?.sqrt())),
        Exp => Ok(Value::Float(numeric(&v, "operand of exp")?.exp())),
        Ln => Ok(Value::Float(numeric(&v, "operand of ln")?.ln())),
        Sin => Ok(Value::Float(numeric(&v, "operand of sin")?.sin())),
        Cos => Ok(Value::Float(numeric(&v, "operand of cos")?.cos())),
    }
}

// ---------------------------------------------------------------------------
// Cost classes, read-slot tables, and shared helpers.
// ---------------------------------------------------------------------------

/// The abstract cost class of one executed instruction, reported to
/// [`ExecCtx::charge`] *before* the instruction's side effects run. The
/// simulator maps these onto its §5.1 timing table (so which instruction
/// belongs to which cost class is itself part of the shared semantics);
/// the native engines ignore them (the default `charge` is a no-op that
/// monomorphises away).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Cost {
    /// A binary ALU operation; `float` when either operand is a float.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Charged at floating-point rates when set.
        float: bool,
    },
    /// A unary ALU operation; `float` when the operand is a float.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Charged at floating-point rates when set.
        float: bool,
    },
    /// A register-to-register move.
    Move,
    /// An unconditional or conditional jump.
    Control,
    /// Issuing an array allocation request to the Array Manager.
    ArrayAlloc,
    /// Issuing an element load or store.
    ArrayAccess,
    /// A Range-Filter header consultation.
    RangeFilter,
    /// Spawning child instances.
    Spawn,
    /// Terminating the SP.
    Return,
    /// The firing rule found an operand absent: the instance blocks.
    ContextSwitch,
}

/// Precomputed read-slot lists per `(template, pc)`: the firing-rule check
/// runs for every executed instruction, and rebuilding the list (a heap
/// allocation) each time is measurable across millions of instructions.
/// Built once per (prepared) program and shared by every execution.
pub type ReadSlots = Vec<Vec<Vec<SlotId>>>;

/// Builds the [`ReadSlots`] table for a (partitioned) SP program.
pub fn build_read_slots(program: &SpProgram) -> ReadSlots {
    program
        .templates()
        .iter()
        .map(|t| t.code.iter().map(|i| i.read_slots()).collect())
        .collect()
}

/// Row-major element offset of `idx` in the array described by `header`,
/// with the canonical out-of-bounds diagnostic shared by every engine.
///
/// # Errors
///
/// Returns the out-of-bounds message when any index lies outside the shape.
pub fn element_offset(header: &ArrayHeader, idx: &[i64]) -> Result<usize, String> {
    header.offset_of(idx).ok_or_else(|| {
        format!(
            "index {idx:?} out of bounds for {} array `{}`",
            header.shape(),
            header.name()
        )
    })
}

/// The Range-Filter bound rule (one semantics for every engine).
///
/// `default_v` is the source-level loop bound, `range` this PE's area of
/// responsibility for the filtered dimension, `extent` the dimension's full
/// extent, and `is_lo` selects the lower (`max`) or upper (`min`) filter.
///
/// The filter *partitions* the source iteration range across PEs — its
/// union over all PEs must be exactly the source range, never a truncation
/// of it. Interior responsibility edges clamp as in Figure 5; a PE whose
/// responsibility touches the edge of the array keeps the original bound,
/// so iterations outside the array (a program error) still execute — once,
/// on the edge PE — and fault in the array access exactly like the
/// sequential oracle. On a single PE the filter is the identity.
pub fn range_filter_bound(default_v: i64, range: &DimRange, extent: i64, is_lo: bool) -> i64 {
    if range.is_empty() {
        // A PE with no responsibility runs no iterations: clamping an empty
        // range yields lo > hi on this PE regardless of the defaults.
        return if is_lo {
            default_v.max(range.start)
        } else {
            default_v.min(range.end)
        };
    }
    if is_lo {
        if range.start == 0 {
            default_v
        } else {
            default_v.max(range.start)
        }
    } else if range.end == extent - 1 {
        default_v
    } else {
        default_v.min(range.end)
    }
}

// ---------------------------------------------------------------------------
// The two engine-facing traits.
// ---------------------------------------------------------------------------

/// What a split-phase element load produced.
#[derive(Debug, Clone, PartialEq)]
pub enum Loaded {
    /// The element was present; the value is delivered into the destination
    /// slot immediately.
    Ready(Value),
    /// The element has not been written. The implementation has registered
    /// a waiter/waker for the destination slot; the core clears the slot's
    /// presence bit and the SP keeps running until the value is consumed.
    Deferred,
}

/// I-structure access as seen by the instruction core: the abstraction over
/// the simulator's per-PE [`pods_istructure::ArrayMemory`] (page cache,
/// remote read/write messages, allocation broadcasts) and the pooled
/// engines' process-wide [`pods_istructure::SharedArrayStore`].
///
/// All methods take `&mut self` because implementations update statistics,
/// schedule events, or memoise directory lookups.
pub trait ArrayOps {
    /// Allocates an array and routes its [`Value::ArrayRef`] to `dst`. The
    /// core has already validated the dimensions (non-empty extents).
    /// Implementations choose the delivery mechanics: the pooled engines
    /// set the slot synchronously, the simulator clears it and delivers the
    /// reference asynchronously from the Array Manager.
    ///
    /// # Errors
    ///
    /// Returns a runtime-error message on allocation failure.
    fn alloc_array(
        &mut self,
        dst: SlotId,
        name: &str,
        dims: &[usize],
        distributed: bool,
    ) -> Result<(), String>;

    /// Runs `f` against the header of array `id` (shape and responsibility
    /// lookups for offsets and Range Filters).
    ///
    /// # Errors
    ///
    /// Returns a runtime-error message when the array is unknown here.
    fn with_header<R>(
        &mut self,
        id: ArrayId,
        f: impl FnOnce(&ArrayHeader) -> R,
    ) -> Result<R, String>;

    /// Issues the split-phase read of element `offset`. On
    /// [`Loaded::Deferred`] the implementation must have registered a
    /// waiter that will eventually deliver the value into `dst` of the
    /// *current* instance.
    ///
    /// # Errors
    ///
    /// Returns a runtime-error message for invalid accesses.
    fn load_element(&mut self, id: ArrayId, offset: usize, dst: SlotId) -> Result<Loaded, String>;

    /// Writes element `offset`, re-activating (or buffering the wake-ups
    /// of) any deferred readers.
    ///
    /// # Errors
    ///
    /// Returns a runtime-error message for single-assignment violations and
    /// invalid accesses.
    fn store_element(&mut self, id: ArrayId, offset: usize, value: Value) -> Result<(), String>;
}

/// A trace event emitted by the shared execution core itself. These are the
/// events only the core can see — the *reason* an instance suspends (the pc
/// and slot the firing rule blocked on), the split-phase load that will
/// eventually resume it (array id + pc), and in-place chunk advances.
/// Scheduler-level events (spawns, steals, run spans) are emitted by the
/// engines directly; together the two layers form one flight-recorder
/// stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecEvent {
    /// The firing rule found `slot` absent at `pc`: the instance suspends
    /// until that operand arrives.
    Blocked {
        /// Program counter of the blocked (consuming) instruction.
        pc: usize,
        /// The absent operand slot.
        slot: SlotId,
    },
    /// A split-phase array read found no value: `array[...]` at `pc` was
    /// deferred and a waiter was registered.
    DeferredLoad {
        /// The array whose element was absent.
        array: ArrayId,
        /// Program counter of the deferring load.
        pc: usize,
    },
    /// The chunk driver advanced a chunked instance to its next outer
    /// iteration in place (no new instance was spawned).
    ChunkAdvanced,
}

/// A consumer of core-level trace events, threaded through
/// [`ExecCtx::trace_sink`]. Engines implement this on their execution
/// context (which knows the worker, job, and instance identity the core
/// does not) and forward into their flight recorder; the machine simulator
/// carries a boxed sink so simulated runs produce the same events.
pub trait TraceSink {
    /// Records one core event, attributed to virtual/physical PE `pe`.
    fn exec_event(&mut self, pe: usize, ev: ExecEvent);
}

/// The per-engine execution context: one SP instance's frame plus the
/// engine's scheduling hooks. [`execute_instr`] and [`run_instance`] drive
/// this trait; implementations add nothing semantic.
pub trait ExecCtx: ArrayOps {
    /// Current program counter of the instance.
    fn pc(&self) -> usize;

    /// Sets the program counter.
    fn set_pc(&mut self, pc: usize);

    /// The value of a frame slot, if its presence bit is set.
    fn slot(&self, slot: SlotId) -> Option<Value>;

    /// Writes a slot (sets the presence bit).
    fn set_slot(&mut self, slot: SlotId, value: Value);

    /// Clears a slot's presence bit.
    fn clear_slot(&mut self, slot: SlotId);

    /// The virtual PE this instance runs as (drives Range Filters and
    /// single-owner allocation placement).
    fn pe(&self) -> usize;

    /// Cost-accounting hook, called once per executed instruction before
    /// its side effects (and once per firing-rule block with
    /// [`Cost::ContextSwitch`]). Default: free.
    #[inline(always)]
    fn charge(&mut self, cost: Cost) {
        let _ = cost;
    }

    /// Polled between instructions; `true` aborts the run with
    /// [`RunExit::Stopped`] (job failed elsewhere, pool teardown, ...).
    #[inline(always)]
    fn should_stop(&self) -> bool {
        false
    }

    /// Spawns child instances of `target`. `args` are operands of the
    /// *current* frame (resolve them with [`ExecCtx::operand`]; they are
    /// passed unresolved so implementations can marshal into a reusable
    /// scratch buffer). For `distributed` spawns one child runs per PE and
    /// only the child on this instance's own PE carries `return_to`; the
    /// core has already cleared the return slot.
    ///
    /// # Errors
    ///
    /// Returns a runtime-error message on spawn failure.
    fn spawn(
        &mut self,
        target: SpId,
        args: &[Operand],
        distributed: bool,
        return_to: Option<SlotId>,
    ) -> Result<(), String>;

    /// Called by the chunk driver each time it advances the iteration
    /// cursor in place: one chunked outer iteration completed and the next
    /// begins without spawning a new instance. Default: no-op; the pooled
    /// engines count these to report the effective grain.
    #[inline(always)]
    fn chunk_advanced(&mut self) {}

    /// Called by the specialized driver each time a super-op fires (its
    /// hoisted firing check passed and the whole fused run executes).
    /// Default: no-op; the pooled engines count these to report how much of
    /// the warm path ran through pre-resolved plans.
    #[inline(always)]
    fn super_op_fired(&mut self) {}

    /// Flight-recorder hook: the sink core-level [`ExecEvent`]s are
    /// delivered to, or `None` when tracing is disabled. The default is a
    /// constant `None`, so for engines that never trace the event emission
    /// sites monomorphize to nothing — the same zero-cost-when-unused
    /// pattern as [`ExecCtx::charge`].
    #[inline(always)]
    fn trace_sink(&mut self) -> Option<&mut dyn TraceSink> {
        None
    }

    /// Resolves an operand against the frame. Absent slots read as
    /// [`Value::Unit`]; the firing rule makes that unobservable for slots
    /// an instruction declares in [`Instr::read_slots`].
    #[inline(always)]
    fn operand(&self, op: &Operand) -> Value {
        match op {
            Operand::Slot(s) => self.slot(*s).unwrap_or(Value::Unit),
            Operand::Int(v) => Value::Int(*v),
            Operand::Float(v) => Value::Float(*v),
            Operand::Bool(v) => Value::Bool(*v),
        }
    }
}

// ---------------------------------------------------------------------------
// The core interpreter.
// ---------------------------------------------------------------------------

/// What executing one instruction asks the driver loop to do next.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    /// Advance to the next instruction.
    Next,
    /// Continue at the given program counter.
    Jump(usize),
    /// The SP terminated, optionally producing a return value.
    Finished(Option<Value>),
}

/// Why [`run_instance`] stopped executing.
#[derive(Debug, Clone, PartialEq)]
pub enum RunExit {
    /// The SP terminated: an explicit `Return` (carrying its value) or the
    /// program counter running past the end of the template (no value).
    Finished(Option<Value>),
    /// The firing rule found the given operand slot absent. The program
    /// counter addresses the blocked (consuming) instruction — on every
    /// engine, this is the pc deadlock diagnostics report. The engine
    /// suspends the instance its own way and re-enters `run_instance` when
    /// the slot arrives.
    Blocked(SlotId),
    /// [`ExecCtx::should_stop`] returned `true`; the engine abandons or
    /// fails the instance.
    Stopped,
}

fn expect_array(v: Value) -> Result<ArrayId, String> {
    v.as_array()
        .ok_or_else(|| format!("expected an array reference, found {v}"))
}

fn index_values<C: ExecCtx>(ctx: &C, indices: &[Operand]) -> Vec<i64> {
    indices
        .iter()
        .map(|i| ctx.operand(i).as_i64().unwrap_or(-1))
        .collect()
}

/// Executes one instruction against the context. This is the single
/// implementation of SP instruction semantics shared by every engine; see
/// the module docs for the rules it pins down.
///
/// # Errors
///
/// Returns the runtime-error message ending the job (arithmetic errors,
/// invalid array accesses, single-assignment violations, non-boolean
/// branches, ...).
pub fn execute_instr<C: ExecCtx>(ctx: &mut C, instr: &Instr) -> Result<Step, String> {
    match instr {
        Instr::Binary { op, dst, lhs, rhs } => {
            let a = ctx.operand(lhs);
            let b = ctx.operand(rhs);
            ctx.charge(Cost::Binary {
                op: *op,
                float: a.is_float() || b.is_float(),
            });
            let v = eval_binary(*op, a, b).map_err(|e| e.to_string())?;
            ctx.set_slot(*dst, v);
            Ok(Step::Next)
        }
        Instr::Unary { op, dst, src } => {
            let a = ctx.operand(src);
            ctx.charge(Cost::Unary {
                op: *op,
                float: a.is_float(),
            });
            let v = eval_unary(*op, a).map_err(|e| e.to_string())?;
            ctx.set_slot(*dst, v);
            Ok(Step::Next)
        }
        Instr::Move { dst, src } => {
            let v = ctx.operand(src);
            ctx.charge(Cost::Move);
            ctx.set_slot(*dst, v);
            Ok(Step::Next)
        }
        Instr::Jump { target } => {
            ctx.charge(Cost::Control);
            Ok(Step::Jump(*target))
        }
        Instr::BranchIfFalse { cond, target } => {
            let c = ctx.operand(cond);
            ctx.charge(Cost::Control);
            // Numbers are truthy (non-zero), matching the oracle's
            // conditions; values with no truth value are a runtime error,
            // not a silent false edge.
            let c = c
                .as_bool()
                .ok_or_else(|| format!("branch on a non-boolean value {c}"))?;
            if c {
                Ok(Step::Next)
            } else {
                Ok(Step::Jump(*target))
            }
        }
        Instr::ArrayAlloc {
            dst,
            name,
            dims,
            distributed,
        } => {
            let dim_values: Vec<usize> = dims
                .iter()
                .map(|d| ctx.operand(d).as_i64().unwrap_or(0).max(0) as usize)
                .collect();
            if dim_values.is_empty() || dim_values.contains(&0) {
                return Err(format!("array `{name}` allocated with a zero dimension"));
            }
            ctx.charge(Cost::ArrayAlloc);
            ctx.alloc_array(*dst, name, &dim_values, *distributed)?;
            Ok(Step::Next)
        }
        Instr::ArrayLoad {
            dst,
            array,
            indices,
        } => {
            let id = expect_array(ctx.operand(array))?;
            let idx = index_values(ctx, indices);
            let offset = ctx.with_header(id, |h| element_offset(h, &idx))??;
            ctx.charge(Cost::ArrayAccess);
            match ctx.load_element(id, offset, *dst)? {
                Loaded::Ready(v) => ctx.set_slot(*dst, v),
                // Split-phase: clear the presence bit (so a stale value
                // from a previous iteration is never consumed) and keep
                // running; the firing rule of the consuming instruction
                // blocks when it actually needs the value.
                Loaded::Deferred => {
                    ctx.clear_slot(*dst);
                    let (pc, pe) = (ctx.pc(), ctx.pe());
                    if let Some(sink) = ctx.trace_sink() {
                        sink.exec_event(pe, ExecEvent::DeferredLoad { array: id, pc });
                    }
                }
            }
            Ok(Step::Next)
        }
        Instr::ArrayStore {
            array,
            indices,
            value,
        } => {
            let id = expect_array(ctx.operand(array))?;
            let idx = index_values(ctx, indices);
            let v = ctx.operand(value);
            let offset = ctx.with_header(id, |h| element_offset(h, &idx))??;
            ctx.charge(Cost::ArrayAccess);
            ctx.store_element(id, offset, v)?;
            Ok(Step::Next)
        }
        Instr::Spawn {
            target,
            args,
            distributed,
            ret,
        } => {
            ctx.charge(Cost::Spawn);
            let return_to = *ret;
            if let Some(slot) = return_to {
                // The return slot is cleared at issue time (split-phase call):
                // the child's eventual return delivers into it.
                ctx.clear_slot(slot);
            }
            ctx.spawn(*target, args, *distributed, return_to)?;
            Ok(Step::Next)
        }
        Instr::RangeLo {
            dst,
            array,
            dim,
            default,
            outer,
        }
        | Instr::RangeHi {
            dst,
            array,
            dim,
            default,
            outer,
        } => {
            let is_lo = matches!(instr, Instr::RangeLo { .. });
            let array_v = ctx.operand(array);
            let default_v = ctx.operand(default).as_i64().unwrap_or(0);
            let outer_v = outer.as_ref().map(|o| ctx.operand(o).as_i64().unwrap_or(0));
            ctx.charge(Cost::RangeFilter);
            let Some(id) = array_v.as_array() else {
                return Err(format!("range filter on a non-array value {array_v}"));
            };
            let pe = PeId(ctx.pe());
            let dim = *dim;
            let value = ctx.with_header(id, |h| {
                let range = h.responsibility(pe, dim, outer_v);
                let extent = h.shape().dims().get(dim).copied().unwrap_or(1) as i64;
                range_filter_bound(default_v, &range, extent, is_lo)
            })?;
            ctx.set_slot(*dst, Value::Int(value));
            Ok(Step::Next)
        }
        Instr::Return { value } => {
            let v = value.as_ref().map(|op| ctx.operand(op));
            ctx.charge(Cost::Return);
            Ok(Step::Finished(v))
        }
    }
}

/// Advances a chunked instance to its next outer iteration in place, if
/// both the per-instance chunk budget and the loop limit allow.
///
/// This replicates the *parent's* loop circulation exactly: the cursor
/// steps by one (`Add` ascending / `Sub` descending) and continues only
/// while the parent's own continuation test (`Le` / `Ge` against the
/// effective limit the parent passed along) holds — same numeric promotion,
/// same error classes, so a chunked run executes precisely the iterations
/// the unchunked program would. On advance the scratch slots are cleared
/// (no stale presence bits leak between iterations) and the program counter
/// returns to the top of the template, re-running any Range-Filter prologue
/// against the updated outer index.
///
/// # Errors
///
/// Propagates evaluation errors from the replicated increment or test —
/// the same errors the parent's own loop instructions would raise.
fn advance_chunk<C: ExecCtx>(ctx: &mut C, meta: &ChunkMeta) -> Result<bool, String> {
    let taken = match ctx.slot(meta.taken) {
        Some(Value::Int(t)) => t,
        _ => 1,
    };
    if taken >= meta.chunk as i64 {
        return Ok(false);
    }
    let Some(cursor) = ctx.slot(meta.cursor) else {
        return Ok(false);
    };
    let Some(limit) = ctx.slot(meta.limit) else {
        return Ok(false);
    };
    let step = if meta.descending {
        BinaryOp::Sub
    } else {
        BinaryOp::Add
    };
    let next = eval_binary(step, cursor, Value::Int(1)).map_err(|e| e.to_string())?;
    let test = if meta.descending {
        BinaryOp::Ge
    } else {
        BinaryOp::Le
    };
    let cont = eval_binary(test, next, limit).map_err(|e| e.to_string())?;
    if cont != Value::Bool(true) {
        return Ok(false);
    }
    ctx.set_slot(meta.cursor, next);
    ctx.set_slot(meta.taken, Value::Int(taken + 1));
    for s in meta.first_scratch..meta.num_slots {
        ctx.clear_slot(SlotId(s));
    }
    ctx.set_pc(0);
    ctx.chunk_advanced();
    let pe = ctx.pe();
    if let Some(sink) = ctx.trace_sink() {
        sink.exec_event(pe, ExecEvent::ChunkAdvanced);
    }
    Ok(true)
}

/// Runs one SP instance until it terminates, blocks on an absent operand,
/// or the context's stop signal fires.
///
/// When the template carries a specialization `plan` (attached at prepare
/// time by [`crate::specialize::specialize_program`]) the instance executes
/// through the direct-threaded `run_specialized` driver: straight-line
/// runs fire as single super-ops with one hoisted firing check, and only
/// unspecializable instructions (split-phase loads, spawns, branches, RF
/// prologues) fall back to the interpreter. Without a plan the plain
/// interpreter loop runs every instruction, exactly as before.
///
/// For chunked templates (`chunk` is `Some`), a completed pass over the
/// code is not necessarily the end of the instance: the driver advances the
/// iteration cursor in place via [`ChunkMeta`] and re-runs from the top
/// until the chunk budget or the loop limit is exhausted.
///
/// # Errors
///
/// Propagates the first runtime-error message from [`execute_instr`].
pub fn run_instance<C: ExecCtx>(
    ctx: &mut C,
    code: &[Instr],
    read_slots: &[Vec<SlotId>],
    chunk: Option<&ChunkMeta>,
    plan: Option<&TemplatePlan>,
) -> Result<RunExit, String> {
    match plan {
        Some(plan) => run_specialized(ctx, code, read_slots, chunk, plan),
        None => run_interpreted(ctx, code, read_slots, chunk),
    }
}

/// The plain interpreter loop: firing-rule check (against the precomputed
/// `read_slots` table for the instance's template), then [`execute_instr`],
/// then pc update.
fn run_interpreted<C: ExecCtx>(
    ctx: &mut C,
    code: &[Instr],
    read_slots: &[Vec<SlotId>],
    chunk: Option<&ChunkMeta>,
) -> Result<RunExit, String> {
    loop {
        if ctx.should_stop() {
            return Ok(RunExit::Stopped);
        }
        let pc = ctx.pc();
        let Some(instr) = code.get(pc) else {
            if let Some(meta) = chunk {
                if advance_chunk(ctx, meta)? {
                    continue;
                }
            }
            return Ok(RunExit::Finished(None));
        };
        // Dataflow firing rule: every operand the instruction reads must be
        // present; otherwise the instance blocks on the first missing slot.
        if let Some(missing) = read_slots[pc]
            .iter()
            .copied()
            .find(|s| ctx.slot(*s).is_none())
        {
            ctx.charge(Cost::ContextSwitch);
            let pe = ctx.pe();
            if let Some(sink) = ctx.trace_sink() {
                sink.exec_event(pe, ExecEvent::Blocked { pc, slot: missing });
            }
            return Ok(RunExit::Blocked(missing));
        }
        match execute_instr(ctx, instr)? {
            Step::Next => ctx.set_pc(pc + 1),
            Step::Jump(target) => ctx.set_pc(target),
            Step::Finished(v) => {
                if v.is_none() {
                    if let Some(meta) = chunk {
                        if advance_chunk(ctx, meta)? {
                            continue;
                        }
                    }
                }
                return Ok(RunExit::Finished(v));
            }
        }
    }
}

/// Resolves one pre-computed fetch plan against the frame. Slot fetches
/// behind a passed firing check are always present; the [`Value::Unit`]
/// fallback mirrors [`ExecCtx::operand`] and is unobservable. `last` is the
/// value the previous fused op of the run produced, forwarded in a register
/// for [`Fetch::Prev`] operands — the producer also wrote it to its
/// destination slot, so the frame an engine (or a blocked resume) observes
/// is bit-identical to the interpreter's.
#[inline(always)]
fn fetch<C: ExecCtx>(ctx: &C, f: &Fetch, last: Value) -> Value {
    match f {
        Fetch::Slot(s) => ctx.slot(*s).unwrap_or(Value::Unit),
        Fetch::Const(v) => *v,
        Fetch::Prev => last,
    }
}

/// Executes one whole super-op body whose firing check already passed,
/// threading each op's produced value into the next for [`Fetch::Prev`]
/// register chaining. Kept out-of-line so the fused dispatch loop gets its
/// own optimization context, exactly like the standalone [`execute_instr`]
/// the interpreter loop calls into.
#[inline(never)]
fn execute_super<C: ExecCtx>(ctx: &mut C, sup: &SuperOp) -> Result<(), String> {
    let mut last = Value::Unit;
    for op in &sup.ops {
        last = execute_fused(ctx, op, last)?;
    }
    Ok(())
}

/// Executes one fused op from a super-op body and returns the value it
/// produced (for [`Fetch::Prev`] chaining; stores produce nothing). Charges
/// and side effects are identical to the corresponding [`execute_instr`]
/// arm — only the operand resolution (already done at prepare time)
/// differs.
#[inline(always)]
fn execute_fused<C: ExecCtx>(ctx: &mut C, op: &FusedOp, last: Value) -> Result<Value, String> {
    match op {
        FusedOp::Binary { op, dst, lhs, rhs } => {
            let a = fetch(ctx, lhs, last);
            let b = fetch(ctx, rhs, last);
            ctx.charge(Cost::Binary {
                op: *op,
                float: a.is_float() || b.is_float(),
            });
            let v = eval_binary(*op, a, b).map_err(|e| e.to_string())?;
            ctx.set_slot(*dst, v);
            Ok(v)
        }
        FusedOp::Unary { op, dst, src } => {
            let a = fetch(ctx, src, last);
            ctx.charge(Cost::Unary {
                op: *op,
                float: a.is_float(),
            });
            let v = eval_unary(*op, a).map_err(|e| e.to_string())?;
            ctx.set_slot(*dst, v);
            Ok(v)
        }
        FusedOp::Move { dst, src } => {
            let v = fetch(ctx, src, last);
            ctx.charge(Cost::Move);
            ctx.set_slot(*dst, v);
            Ok(v)
        }
        FusedOp::ArrayStore {
            array,
            indices,
            value,
        } => {
            let id = expect_array(fetch(ctx, array, last))?;
            let idx: Vec<i64> = indices
                .iter()
                .map(|i| fetch(ctx, i, last).as_i64().unwrap_or(-1))
                .collect();
            let v = fetch(ctx, value, last);
            let offset = ctx.with_header(id, |h| element_offset(h, &idx))??;
            ctx.charge(Cost::ArrayAccess);
            ctx.store_element(id, offset, v)?;
            Ok(Value::Unit)
        }
    }
}

/// The direct-threaded specialized driver: walks the prepare-time plan,
/// firing whole straight-line runs as single super-ops and deferring to the
/// interpreter for everything the pass left as [`PlanOp::Interp`].
///
/// Super-op semantics are all-or-nothing: the hoisted firing list (every
/// slot the run reads that is not produced inside the run) is checked
/// *before any side effect*, so a blocked run left the frame untouched and
/// simply re-fires from its head pc on resume. The blocked *slot* reported
/// is identical to the interpreter's (instruction order, then operand
/// order); only the blocked *pc* differs — the run head instead of the
/// consuming instruction.
fn run_specialized<C: ExecCtx>(
    ctx: &mut C,
    code: &[Instr],
    read_slots: &[Vec<SlotId>],
    chunk: Option<&ChunkMeta>,
    plan: &TemplatePlan,
) -> Result<RunExit, String> {
    loop {
        if ctx.should_stop() {
            return Ok(RunExit::Stopped);
        }
        let pc = ctx.pc();
        if pc >= code.len() {
            if let Some(meta) = chunk {
                if advance_chunk(ctx, meta)? {
                    continue;
                }
            }
            return Ok(RunExit::Finished(None));
        }
        if let Some(PlanOp::Super(sup)) = plan.ops.get(pc) {
            if let Some(missing) = sup.firing.iter().copied().find(|s| ctx.slot(*s).is_none()) {
                ctx.charge(Cost::ContextSwitch);
                let pe = ctx.pe();
                if let Some(sink) = ctx.trace_sink() {
                    sink.exec_event(pe, ExecEvent::Blocked { pc, slot: missing });
                }
                return Ok(RunExit::Blocked(missing));
            }
            ctx.super_op_fired();
            execute_super(ctx, sup)?;
            ctx.set_pc(pc + sup.ops.len());
            continue;
        }
        // Interpreter fallback for unspecializable instructions (and any
        // mid-run pc a resume could conceivably land on).
        if let Some(missing) = read_slots[pc]
            .iter()
            .copied()
            .find(|s| ctx.slot(*s).is_none())
        {
            ctx.charge(Cost::ContextSwitch);
            let pe = ctx.pe();
            if let Some(sink) = ctx.trace_sink() {
                sink.exec_event(pe, ExecEvent::Blocked { pc, slot: missing });
            }
            return Ok(RunExit::Blocked(missing));
        }
        match execute_instr(ctx, &code[pc])? {
            Step::Next => ctx.set_pc(pc + 1),
            Step::Jump(target) => ctx.set_pc(target),
            Step::Finished(v) => {
                if v.is_none() {
                    if let Some(meta) = chunk {
                        if advance_chunk(ctx, meta)? {
                            continue;
                        }
                    }
                }
                return Ok(RunExit::Finished(v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pods_istructure::{ArrayShape, Partitioning};

    /// A minimal in-memory engine: local single-store arrays, recorded
    /// spawns and deferred waiters, direct slot delivery. Everything the
    /// core needs and nothing scheduler-shaped — so each table case tests
    /// the semantics once, directly, instead of only end-to-end.
    struct TestCtx {
        pc: usize,
        slots: Vec<Option<Value>>,
        pe: usize,
        pes: usize,
        arrays: Vec<(ArrayHeader, Vec<Option<Value>>)>,
        /// Deferred waiters: (array, offset, dst).
        waiters: Vec<(ArrayId, usize, SlotId)>,
        /// Recorded spawns: (template, resolved args, pe, return slot).
        spawns: Vec<(SpId, Vec<Value>, usize, Option<SlotId>)>,
        costs: Vec<Cost>,
        stop: bool,
    }

    impl TestCtx {
        fn new(slots: usize) -> TestCtx {
            TestCtx {
                pc: 0,
                slots: vec![None; slots],
                pe: 0,
                pes: 1,
                arrays: Vec::new(),
                waiters: Vec::new(),
                spawns: Vec::new(),
                costs: Vec::new(),
                stop: false,
            }
        }

        fn with_pes(mut self, pe: usize, pes: usize) -> TestCtx {
            self.pe = pe;
            self.pes = pes;
            self
        }

        fn with_slot(mut self, slot: usize, v: Value) -> TestCtx {
            self.slots[slot] = Some(v);
            self
        }

        /// Allocates a test array directly and returns a ref to slot it in.
        fn with_array(mut self, slot: usize, dims: &[usize], page: usize) -> TestCtx {
            let shape = ArrayShape::new(dims.to_vec());
            let part = Partitioning::new(shape.len(), page, self.pes);
            let id = ArrayId(self.arrays.len());
            let len = shape.len();
            self.arrays
                .push((ArrayHeader::new(id, "t", shape, part), vec![None; len]));
            self.slots[slot] = Some(Value::ArrayRef(id));
            self
        }

        fn write_cell(&mut self, array: usize, offset: usize, v: Value) {
            self.arrays[array].1[offset] = Some(v);
        }
    }

    impl ArrayOps for TestCtx {
        fn alloc_array(
            &mut self,
            dst: SlotId,
            name: &str,
            dims: &[usize],
            distributed: bool,
        ) -> Result<(), String> {
            let shape = ArrayShape::new(dims.to_vec());
            let part = if distributed {
                Partitioning::new(shape.len(), 8, self.pes)
            } else {
                Partitioning::single_owner(shape.len(), 8, self.pes, PeId(self.pe))
            };
            let id = ArrayId(self.arrays.len());
            let len = shape.len();
            self.arrays
                .push((ArrayHeader::new(id, name, shape, part), vec![None; len]));
            self.set_slot(dst, Value::ArrayRef(id));
            Ok(())
        }

        fn with_header<R>(
            &mut self,
            id: ArrayId,
            f: impl FnOnce(&ArrayHeader) -> R,
        ) -> Result<R, String> {
            let (header, _) = self
                .arrays
                .get(id.index())
                .ok_or_else(|| format!("unknown array {id}"))?;
            Ok(f(header))
        }

        fn load_element(
            &mut self,
            id: ArrayId,
            offset: usize,
            dst: SlotId,
        ) -> Result<Loaded, String> {
            match self.arrays[id.index()].1[offset] {
                Some(v) => Ok(Loaded::Ready(v)),
                None => {
                    self.waiters.push((id, offset, dst));
                    Ok(Loaded::Deferred)
                }
            }
        }

        fn store_element(
            &mut self,
            id: ArrayId,
            offset: usize,
            value: Value,
        ) -> Result<(), String> {
            let cell = &mut self.arrays[id.index()].1[offset];
            if cell.is_some() {
                return Err(format!("single-assignment violation on {id}[{offset}]"));
            }
            *cell = Some(value);
            Ok(())
        }
    }

    impl ExecCtx for TestCtx {
        fn pc(&self) -> usize {
            self.pc
        }
        fn set_pc(&mut self, pc: usize) {
            self.pc = pc;
        }
        fn slot(&self, slot: SlotId) -> Option<Value> {
            self.slots.get(slot.index()).copied().flatten()
        }
        fn set_slot(&mut self, slot: SlotId, value: Value) {
            if slot.index() < self.slots.len() {
                self.slots[slot.index()] = Some(value);
            }
        }
        fn clear_slot(&mut self, slot: SlotId) {
            if slot.index() < self.slots.len() {
                self.slots[slot.index()] = None;
            }
        }
        fn pe(&self) -> usize {
            self.pe
        }
        fn charge(&mut self, cost: Cost) {
            self.costs.push(cost);
        }
        fn should_stop(&self) -> bool {
            self.stop
        }
        fn spawn(
            &mut self,
            target: SpId,
            args: &[Operand],
            distributed: bool,
            return_to: Option<SlotId>,
        ) -> Result<(), String> {
            let resolved: Vec<Value> = args.iter().map(|a| self.operand(a)).collect();
            if distributed {
                for q in 0..self.pes {
                    let r = if q == self.pe { return_to } else { None };
                    self.spawns.push((target, resolved.clone(), q, r));
                }
            } else {
                self.spawns.push((target, resolved, self.pe, return_to));
            }
            Ok(())
        }
    }

    fn s(i: usize) -> SlotId {
        SlotId(i)
    }
    fn slot_op(i: usize) -> Operand {
        Operand::Slot(SlotId(i))
    }

    /// One table case per `Instr` variant: the canonical success semantics.
    #[test]
    fn table_every_instr_variant_has_pinned_semantics() {
        struct Case {
            name: &'static str,
            ctx: fn() -> TestCtx,
            instr: fn() -> Instr,
            check: fn(&str, Step, TestCtx),
        }
        let table: Vec<Case> = vec![
            Case {
                name: "binary-int-add",
                ctx: || {
                    TestCtx::new(3)
                        .with_slot(0, Value::Int(2))
                        .with_slot(1, Value::Int(3))
                },
                instr: || Instr::Binary {
                    op: BinaryOp::Add,
                    dst: s(2),
                    lhs: slot_op(0),
                    rhs: slot_op(1),
                },
                check: |n, step, ctx| {
                    assert_eq!(step, Step::Next, "{n}");
                    assert_eq!(ctx.slot(s(2)), Some(Value::Int(5)), "{n}");
                    assert_eq!(
                        ctx.costs,
                        vec![Cost::Binary {
                            op: BinaryOp::Add,
                            float: false
                        }],
                        "{n}: int operands charge integer rates"
                    );
                },
            },
            Case {
                name: "binary-mixed-promotes-and-charges-float",
                ctx: || {
                    TestCtx::new(3)
                        .with_slot(0, Value::Int(2))
                        .with_slot(1, Value::Float(0.5))
                },
                instr: || Instr::Binary {
                    op: BinaryOp::Mul,
                    dst: s(2),
                    lhs: slot_op(0),
                    rhs: slot_op(1),
                },
                check: |n, _, ctx| {
                    assert_eq!(ctx.slot(s(2)), Some(Value::Float(1.0)), "{n}");
                    assert_eq!(
                        ctx.costs,
                        vec![Cost::Binary {
                            op: BinaryOp::Mul,
                            float: true
                        }],
                        "{n}"
                    );
                },
            },
            Case {
                name: "unary",
                ctx: || TestCtx::new(2).with_slot(0, Value::Int(-7)),
                instr: || Instr::Unary {
                    op: UnaryOp::Abs,
                    dst: s(1),
                    src: slot_op(0),
                },
                check: |n, _, ctx| assert_eq!(ctx.slot(s(1)), Some(Value::Int(7)), "{n}"),
            },
            Case {
                name: "move",
                ctx: || TestCtx::new(2),
                instr: || Instr::Move {
                    dst: s(1),
                    src: Operand::Float(2.5),
                },
                check: |n, _, ctx| assert_eq!(ctx.slot(s(1)), Some(Value::Float(2.5)), "{n}"),
            },
            Case {
                name: "jump",
                ctx: || TestCtx::new(1),
                instr: || Instr::Jump { target: 7 },
                check: |n, step, _| assert_eq!(step, Step::Jump(7), "{n}"),
            },
            Case {
                name: "branch-true-falls-through",
                ctx: || TestCtx::new(1).with_slot(0, Value::Bool(true)),
                instr: || Instr::BranchIfFalse {
                    cond: slot_op(0),
                    target: 9,
                },
                check: |n, step, _| assert_eq!(step, Step::Next, "{n}"),
            },
            Case {
                name: "branch-nonzero-number-is-truthy",
                ctx: || TestCtx::new(1).with_slot(0, Value::Int(-3)),
                instr: || Instr::BranchIfFalse {
                    cond: slot_op(0),
                    target: 9,
                },
                check: |n, step, _| assert_eq!(step, Step::Next, "{n}"),
            },
            Case {
                name: "branch-zero-takes-the-false-edge",
                ctx: || TestCtx::new(1).with_slot(0, Value::Float(0.0)),
                instr: || Instr::BranchIfFalse {
                    cond: slot_op(0),
                    target: 9,
                },
                check: |n, step, _| assert_eq!(step, Step::Jump(9), "{n}"),
            },
            Case {
                name: "array-alloc-sets-ref",
                ctx: || TestCtx::new(2).with_slot(0, Value::Int(6)),
                instr: || Instr::ArrayAlloc {
                    dst: s(1),
                    name: "a".into(),
                    dims: vec![slot_op(0), Operand::Int(2)],
                    distributed: true,
                },
                check: |n, _, ctx| {
                    assert_eq!(ctx.slot(s(1)), Some(Value::ArrayRef(ArrayId(0))), "{n}");
                    assert_eq!(ctx.arrays[0].0.shape().dims(), &[6, 2], "{n}");
                },
            },
            Case {
                name: "array-load-present-delivers-now",
                ctx: || {
                    let mut c = TestCtx::new(3).with_array(0, &[4], 8);
                    c.write_cell(0, 2, Value::Int(42));
                    c.slots[1] = Some(Value::Int(2));
                    c
                },
                instr: || Instr::ArrayLoad {
                    dst: s(2),
                    array: slot_op(0),
                    indices: vec![slot_op(1)],
                },
                check: |n, step, ctx| {
                    assert_eq!(step, Step::Next, "{n}");
                    assert_eq!(ctx.slot(s(2)), Some(Value::Int(42)), "{n}");
                    assert!(ctx.waiters.is_empty(), "{n}");
                },
            },
            Case {
                name: "array-load-deferred-is-split-phase",
                ctx: || {
                    // The destination holds a stale value from a previous
                    // iteration; issuing the load must clear it and the SP
                    // must keep running (Step::Next, not a suspension).
                    TestCtx::new(2)
                        .with_array(0, &[4], 8)
                        .with_slot(1, Value::Int(99))
                },
                instr: || Instr::ArrayLoad {
                    dst: s(1),
                    array: slot_op(0),
                    indices: vec![Operand::Int(3)],
                },
                check: |n, step, ctx| {
                    assert_eq!(step, Step::Next, "{n}: split-phase loads keep running");
                    assert_eq!(ctx.slot(s(1)), None, "{n}: presence bit cleared at issue");
                    assert_eq!(ctx.waiters, vec![(ArrayId(0), 3, s(1))], "{n}");
                },
            },
            Case {
                name: "array-store",
                ctx: || TestCtx::new(2).with_array(0, &[4], 8),
                instr: || Instr::ArrayStore {
                    array: slot_op(0),
                    indices: vec![Operand::Int(1)],
                    value: Operand::Int(5),
                },
                check: |n, _, ctx| assert_eq!(ctx.arrays[0].1[1], Some(Value::Int(5)), "{n}"),
            },
            Case {
                name: "spawn-clears-return-slot-at-issue",
                ctx: || {
                    TestCtx::new(2)
                        .with_slot(0, Value::Int(4))
                        .with_slot(1, Value::Int(9))
                },
                instr: || Instr::Spawn {
                    target: SpId(3),
                    args: vec![slot_op(0)],
                    distributed: false,
                    ret: Some(s(1)),
                },
                check: |n, _, ctx| {
                    assert_eq!(ctx.slot(s(1)), None, "{n}: call is split-phase");
                    assert_eq!(
                        ctx.spawns,
                        vec![(SpId(3), vec![Value::Int(4)], 0, Some(s(1)))],
                        "{n}"
                    );
                },
            },
            Case {
                name: "spawn-distributed-returns-only-to-own-pe",
                ctx: || TestCtx::new(2).with_pes(1, 3).with_slot(0, Value::Int(4)),
                instr: || Instr::Spawn {
                    target: SpId(2),
                    args: vec![slot_op(0)],
                    distributed: true,
                    ret: Some(s(1)),
                },
                check: |n, _, ctx| {
                    let rets: Vec<Option<SlotId>> =
                        ctx.spawns.iter().map(|(_, _, _, r)| *r).collect();
                    assert_eq!(rets, vec![None, Some(s(1)), None], "{n}");
                },
            },
            Case {
                name: "range-lo-clamps-interior-edge",
                // 2 PEs over 8 elements (page 4): PE1 owns rows 4..7, an
                // interior lower edge, so lo = max(default, 4).
                ctx: || TestCtx::new(2).with_pes(1, 2).with_array(0, &[8], 4),
                instr: || Instr::RangeLo {
                    dst: s(1),
                    array: slot_op(0),
                    dim: 0,
                    default: Operand::Int(0),
                    outer: None,
                },
                check: |n, _, ctx| assert_eq!(ctx.slot(s(1)), Some(Value::Int(4)), "{n}"),
            },
            Case {
                name: "range-hi-clamps-interior-edge",
                ctx: || TestCtx::new(2).with_pes(0, 2).with_array(0, &[8], 4),
                instr: || Instr::RangeHi {
                    dst: s(1),
                    array: slot_op(0),
                    dim: 0,
                    default: Operand::Int(7),
                    outer: None,
                },
                check: |n, _, ctx| assert_eq!(ctx.slot(s(1)), Some(Value::Int(3)), "{n}"),
            },
            Case {
                name: "range-filter-keeps-out-of-range-bounds-on-edge-pes",
                // The PE owning the array edge keeps the source bound, so
                // out-of-range iterations execute (and fault) exactly like
                // the sequential oracle instead of being silently dropped.
                ctx: || TestCtx::new(3).with_pes(0, 2).with_array(0, &[8], 4),
                instr: || Instr::RangeLo {
                    dst: s(1),
                    array: slot_op(0),
                    dim: 0,
                    default: Operand::Int(-2),
                    outer: None,
                },
                check: |n, _, ctx| {
                    assert_eq!(
                        ctx.slot(s(1)),
                        Some(Value::Int(-2)),
                        "{n}: PE0 owns row 0 and must keep the negative bound"
                    )
                },
            },
            Case {
                name: "range-filter-inner-dim-uses-outer-row",
                // 2 PEs over a 3x8 matrix with 4-element pages: PE0 owns
                // row 0 plus the first half of row 1 (cols 0..3).
                ctx: || {
                    TestCtx::new(3)
                        .with_pes(0, 2)
                        .with_array(0, &[3, 8], 4)
                        .with_slot(1, Value::Int(1))
                },
                instr: || Instr::RangeHi {
                    dst: s(2),
                    array: slot_op(0),
                    dim: 1,
                    default: Operand::Int(7),
                    outer: Some(slot_op(1)),
                },
                check: |n, _, ctx| assert_eq!(ctx.slot(s(2)), Some(Value::Int(3)), "{n}"),
            },
            Case {
                name: "range-filter-invalid-outer-row-lands-on-one-edge-pe",
                // Row 9 of a 3x8 matrix does not exist: its inner iteration
                // space is assigned whole to the PE owning the nearest
                // array edge (here PE1, owner of the last element), which
                // keeps the source bound so the invalid accesses execute
                // and fault like the oracle; every other PE gets nothing.
                ctx: || {
                    TestCtx::new(3)
                        .with_pes(1, 2)
                        .with_array(0, &[3, 8], 4)
                        .with_slot(1, Value::Int(9))
                },
                instr: || Instr::RangeHi {
                    dst: s(2),
                    array: slot_op(0),
                    dim: 1,
                    default: Operand::Int(7),
                    outer: Some(slot_op(1)),
                },
                check: |n, _, ctx| {
                    assert_eq!(
                        ctx.slot(s(2)),
                        Some(Value::Int(7)),
                        "{n}: the edge PE keeps the source bound"
                    )
                },
            },
            Case {
                name: "return-with-value",
                ctx: || TestCtx::new(1).with_slot(0, Value::Int(11)),
                instr: || Instr::Return {
                    value: Some(slot_op(0)),
                },
                check: |n, step, _| assert_eq!(step, Step::Finished(Some(Value::Int(11))), "{n}"),
            },
            Case {
                name: "return-without-value",
                ctx: || TestCtx::new(1),
                instr: || Instr::Return { value: None },
                check: |n, step, _| assert_eq!(step, Step::Finished(None), "{n}"),
            },
        ];
        for case in table {
            let mut ctx = (case.ctx)();
            let step = execute_instr(&mut ctx, &(case.instr)())
                .unwrap_or_else(|e| panic!("{}: unexpected error {e}", case.name));
            (case.check)(case.name, step, ctx);
        }
    }

    /// One table case per pinned *error* rule.
    #[test]
    fn table_error_rules_are_pinned() {
        struct Case {
            name: &'static str,
            ctx: fn() -> TestCtx,
            instr: fn() -> Instr,
            msg: &'static str,
        }
        let table: Vec<Case> = vec![
            Case {
                name: "division-by-zero",
                ctx: || TestCtx::new(1),
                instr: || Instr::Binary {
                    op: BinaryOp::Div,
                    dst: s(0),
                    lhs: Operand::Int(1),
                    rhs: Operand::Int(0),
                },
                msg: "division by zero",
            },
            Case {
                name: "branch-on-non-boolean",
                ctx: || TestCtx::new(1).with_array(0, &[2], 8),
                instr: || Instr::BranchIfFalse {
                    cond: slot_op(0),
                    target: 0,
                },
                msg: "non-boolean",
            },
            Case {
                name: "zero-dimension-alloc",
                ctx: || TestCtx::new(1),
                instr: || Instr::ArrayAlloc {
                    dst: s(0),
                    name: "z".into(),
                    dims: vec![Operand::Int(0)],
                    distributed: false,
                },
                msg: "zero dimension",
            },
            Case {
                name: "negative-dimension-alloc",
                ctx: || TestCtx::new(1),
                instr: || Instr::ArrayAlloc {
                    dst: s(0),
                    name: "z".into(),
                    dims: vec![Operand::Int(-3)],
                    distributed: false,
                },
                msg: "zero dimension",
            },
            Case {
                name: "load-out-of-bounds",
                ctx: || TestCtx::new(2).with_array(0, &[4], 8),
                instr: || Instr::ArrayLoad {
                    dst: s(1),
                    array: slot_op(0),
                    indices: vec![Operand::Int(9)],
                },
                msg: "out of bounds",
            },
            Case {
                name: "non-integer-index-coerces-to-out-of-bounds",
                ctx: || {
                    TestCtx::new(2)
                        .with_array(0, &[4], 8)
                        .with_slot(1, Value::Unit)
                },
                instr: || Instr::ArrayLoad {
                    dst: s(1),
                    array: slot_op(0),
                    indices: vec![slot_op(1)],
                },
                msg: "out of bounds",
            },
            Case {
                name: "store-single-assignment",
                ctx: || {
                    let mut c = TestCtx::new(1).with_array(0, &[4], 8);
                    c.write_cell(0, 1, Value::Int(1));
                    c
                },
                instr: || Instr::ArrayStore {
                    array: slot_op(0),
                    indices: vec![Operand::Int(1)],
                    value: Operand::Int(2),
                },
                msg: "single-assignment",
            },
            Case {
                name: "load-from-non-array",
                ctx: || TestCtx::new(2).with_slot(0, Value::Int(3)),
                instr: || Instr::ArrayLoad {
                    dst: s(1),
                    array: slot_op(0),
                    indices: vec![Operand::Int(0)],
                },
                msg: "expected an array reference",
            },
            Case {
                name: "range-filter-on-non-array",
                ctx: || TestCtx::new(2).with_slot(0, Value::Int(3)),
                instr: || Instr::RangeLo {
                    dst: s(1),
                    array: slot_op(0),
                    dim: 0,
                    default: Operand::Int(0),
                    outer: None,
                },
                msg: "range filter on a non-array value",
            },
        ];
        for case in table {
            let mut ctx = (case.ctx)();
            let err = execute_instr(&mut ctx, &(case.instr)())
                .expect_err(&format!("{}: expected an error", case.name));
            assert!(
                err.contains(case.msg),
                "{}: error `{err}` does not mention `{}`",
                case.name,
                case.msg
            );
        }
    }

    #[test]
    fn range_filter_is_identity_on_a_single_pe() {
        // One PE owns the whole dimension — both edges — so the filter
        // passes any source bound through unchanged, matching the
        // sequential oracle by construction.
        let shape = ArrayShape::new(vec![8]);
        let part = Partitioning::new(8, 4, 1);
        let h = ArrayHeader::new(ArrayId(0), "t", shape, part);
        let range = h.responsibility(PeId(0), 0, None);
        for bound in [-5i64, 0, 3, 7, 12] {
            assert_eq!(range_filter_bound(bound, &range, 8, true), bound);
            assert_eq!(range_filter_bound(bound, &range, 8, false), bound);
        }
    }

    #[test]
    fn range_filter_partitions_the_source_range_across_pes() {
        // Whatever the source range, the union of per-PE filtered ranges
        // must be exactly the source range (no truncation, no overlap).
        let pes = 3usize;
        let n = 10usize;
        let shape = ArrayShape::new(vec![n]);
        let part = Partitioning::new(n, 2, pes);
        let h = ArrayHeader::new(ArrayId(0), "t", shape, part);
        for (lo, hi) in [(0i64, 9i64), (-3, 4), (2, 13), (-2, 12), (3, 3)] {
            let mut covered = std::collections::HashMap::new();
            for pe in 0..pes {
                let range = h.responsibility(PeId(pe), 0, None);
                let flo = range_filter_bound(lo, &range, n as i64, true);
                let fhi = range_filter_bound(hi, &range, n as i64, false);
                for i in flo..=fhi {
                    *covered.entry(i).or_insert(0usize) += 1;
                }
            }
            for i in lo..=hi {
                assert_eq!(
                    covered.get(&i).copied().unwrap_or(0),
                    1,
                    "iteration {i} of source range {lo}..={hi} not covered exactly once"
                );
            }
            assert_eq!(
                covered.len(),
                (hi - lo + 1) as usize,
                "filtered ranges leaked outside the source range {lo}..={hi}"
            );
        }
    }

    #[test]
    fn run_instance_blocks_at_the_consuming_instruction() {
        // load (deferred, split-phase) → binary consuming the slot: the
        // driver must execute *past* the load and block at the consumer,
        // reporting the consumer's pc — the shared deadlock-diagnostic rule.
        let code = vec![
            Instr::ArrayLoad {
                dst: s(1),
                array: slot_op(0),
                indices: vec![Operand::Int(0)],
            },
            Instr::Move {
                dst: s(3),
                src: Operand::Int(1),
            },
            Instr::Binary {
                op: BinaryOp::Add,
                dst: s(2),
                lhs: slot_op(1),
                rhs: slot_op(3),
            },
        ];
        let read_slots: Vec<Vec<SlotId>> = code.iter().map(|i| i.read_slots()).collect();
        let mut ctx = TestCtx::new(4).with_array(0, &[4], 8);
        let exit = run_instance(&mut ctx, &code, &read_slots, None, None).unwrap();
        assert_eq!(exit, RunExit::Blocked(s(1)));
        assert_eq!(ctx.pc, 2, "blocked at the consumer, past the issued load");
        assert_eq!(ctx.waiters.len(), 1, "the load registered its waiter");
        assert!(
            ctx.costs.contains(&Cost::ContextSwitch),
            "blocking charges a context switch"
        );

        // Delivering the value and re-entering finishes the instance.
        ctx.set_slot(s(1), Value::Int(41));
        let exit = run_instance(&mut ctx, &code, &read_slots, None, None).unwrap();
        assert_eq!(exit, RunExit::Finished(None));
        assert_eq!(ctx.slot(s(2)), Some(Value::Int(42)));
    }

    #[test]
    fn run_instance_honours_stop_and_end_of_code() {
        let code = vec![Instr::Move {
            dst: s(0),
            src: Operand::Int(1),
        }];
        let read_slots: Vec<Vec<SlotId>> = code.iter().map(|i| i.read_slots()).collect();
        let mut ctx = TestCtx::new(1);
        ctx.stop = true;
        assert_eq!(
            run_instance(&mut ctx, &code, &read_slots, None, None).unwrap(),
            RunExit::Stopped
        );
        ctx.stop = false;
        assert_eq!(
            run_instance(&mut ctx, &code, &read_slots, None, None).unwrap(),
            RunExit::Finished(None),
            "running off the end finishes with no value"
        );
    }

    /// A hand-built chunked template: params are `a` (s0), the cursor
    /// (s1), and the chunk limit (s2); s3 is the driver-managed `taken`
    /// counter and s4 a scratch temp. The body stores `cursor * 10` into
    /// `a[cursor]` and returns.
    fn chunked_store_template() -> (Vec<Instr>, ChunkMeta) {
        let code = vec![
            Instr::Binary {
                op: BinaryOp::Mul,
                dst: s(4),
                lhs: slot_op(1),
                rhs: Operand::Int(10),
            },
            Instr::ArrayStore {
                array: slot_op(0),
                indices: vec![slot_op(1)],
                value: slot_op(4),
            },
            Instr::Return { value: None },
        ];
        let meta = ChunkMeta {
            cursor: s(1),
            limit: s(2),
            taken: s(3),
            first_scratch: 4,
            num_slots: 5,
            chunk: 3,
            descending: false,
        };
        (code, meta)
    }

    #[test]
    fn chunk_driver_runs_consecutive_iterations_in_one_instance() {
        let (code, meta) = chunked_store_template();
        let read_slots: Vec<Vec<SlotId>> = code.iter().map(|i| i.read_slots()).collect();
        let mut ctx = TestCtx::new(5)
            .with_array(0, &[8], 8)
            .with_slot(1, Value::Int(2))
            .with_slot(2, Value::Int(7));
        let exit = run_instance(&mut ctx, &code, &read_slots, Some(&meta), None).unwrap();
        assert_eq!(exit, RunExit::Finished(None));
        // Chunk budget 3 starting at cursor 2: iterations 2, 3, 4.
        for (i, cell) in ctx.arrays[0].1.iter().enumerate() {
            let expected = (2..=4).contains(&i).then(|| Value::Int(i as i64 * 10));
            assert_eq!(*cell, expected, "a[{i}]");
        }
        assert_eq!(ctx.slot(s(3)), Some(Value::Int(3)), "taken counter");
    }

    #[test]
    fn chunk_driver_stops_at_the_loop_limit() {
        let (code, meta) = chunked_store_template();
        let read_slots: Vec<Vec<SlotId>> = code.iter().map(|i| i.read_slots()).collect();
        // Cursor 6, limit 7, budget 3: only iterations 6 and 7 run.
        let mut ctx = TestCtx::new(5)
            .with_array(0, &[8], 8)
            .with_slot(1, Value::Int(6))
            .with_slot(2, Value::Int(7));
        let exit = run_instance(&mut ctx, &code, &read_slots, Some(&meta), None).unwrap();
        assert_eq!(exit, RunExit::Finished(None));
        assert_eq!(ctx.arrays[0].1[6], Some(Value::Int(60)));
        assert_eq!(ctx.arrays[0].1[7], Some(Value::Int(70)));
        assert_eq!(ctx.arrays[0].1[5], None);
    }

    #[test]
    fn chunk_driver_replicates_the_parent_test_on_float_limits() {
        // `for i = 0 to 2.5` runs i = 0, 1, 2 in the unchunked parent
        // (Int-vs-Float comparison promotes); the chunk driver must agree.
        let (code, mut meta) = chunked_store_template();
        meta.chunk = 10;
        let read_slots: Vec<Vec<SlotId>> = code.iter().map(|i| i.read_slots()).collect();
        let mut ctx = TestCtx::new(5)
            .with_array(0, &[8], 8)
            .with_slot(1, Value::Int(0))
            .with_slot(2, Value::Float(2.5));
        let exit = run_instance(&mut ctx, &code, &read_slots, Some(&meta), None).unwrap();
        assert_eq!(exit, RunExit::Finished(None));
        let written: Vec<usize> = ctx.arrays[0]
            .1
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.is_some().then_some(i))
            .collect();
        assert_eq!(written, vec![0, 1, 2]);
    }

    #[test]
    fn chunk_driver_descends_and_clears_scratch_between_iterations() {
        let (code, mut meta) = chunked_store_template();
        meta.descending = true;
        let read_slots: Vec<Vec<SlotId>> = code.iter().map(|i| i.read_slots()).collect();
        // Cursor 5 descending to limit 4, budget 3: iterations 5 and 4.
        let mut ctx = TestCtx::new(5)
            .with_array(0, &[8], 8)
            .with_slot(1, Value::Int(5))
            .with_slot(2, Value::Int(4));
        let exit = run_instance(&mut ctx, &code, &read_slots, Some(&meta), None).unwrap();
        assert_eq!(exit, RunExit::Finished(None));
        assert_eq!(ctx.arrays[0].1[5], Some(Value::Int(50)));
        assert_eq!(ctx.arrays[0].1[4], Some(Value::Int(40)));
        assert_eq!(ctx.arrays[0].1[3], None);
        // The scratch temp holds the *last* iteration's value — the clear
        // between iterations means each store read a freshly computed s4,
        // never a stale one (the distinct stored values above prove it).
        assert_eq!(ctx.slot(s(4)), Some(Value::Int(40)));
    }

    #[test]
    fn specialized_driver_agrees_with_the_interpreter() {
        // A straight-line ALU run with fused immediates: the specialized
        // driver must produce the same frame *and the same cost stream* as
        // the interpreter — charges are per fused op, not per super-op.
        let code = vec![
            Instr::Move {
                dst: s(2),
                src: Operand::Int(5),
            },
            Instr::Binary {
                op: BinaryOp::Add,
                dst: s(3),
                lhs: slot_op(0),
                rhs: slot_op(2),
            },
            Instr::Binary {
                op: BinaryOp::Mul,
                dst: s(4),
                lhs: slot_op(3),
                rhs: Operand::Int(2),
            },
            Instr::Return { value: None },
        ];
        let read_slots: Vec<Vec<SlotId>> = code.iter().map(|i| i.read_slots()).collect();
        let (plan, _) = crate::specialize::build_plan(&code);
        assert_eq!(plan.super_ops(), 1);

        let mut interp = TestCtx::new(5).with_slot(0, Value::Int(8));
        let exit = run_instance(&mut interp, &code, &read_slots, None, None).unwrap();
        assert_eq!(exit, RunExit::Finished(None));

        let mut spec = TestCtx::new(5).with_slot(0, Value::Int(8));
        let exit = run_instance(&mut spec, &code, &read_slots, None, Some(&plan)).unwrap();
        assert_eq!(exit, RunExit::Finished(None));

        assert_eq!(spec.slots, interp.slots);
        assert_eq!(spec.slot(s(4)), Some(Value::Int(26)));
        assert_eq!(spec.costs, interp.costs, "identical per-op charges");
    }

    #[test]
    fn blocked_super_op_leaves_the_frame_untouched_and_refires() {
        // The run writes s4, stores it into the single-assignment array,
        // then consumes the absent s1. All-or-nothing semantics: the
        // hoisted firing check blocks *before* the store happens, so the
        // resume can re-fire the whole run without a double-store fault.
        let code = vec![
            Instr::Move {
                dst: s(4),
                src: Operand::Int(7),
            },
            Instr::ArrayStore {
                array: slot_op(0),
                indices: vec![Operand::Int(0)],
                value: slot_op(4),
            },
            Instr::Binary {
                op: BinaryOp::Add,
                dst: s(5),
                lhs: slot_op(1),
                rhs: slot_op(4),
            },
            Instr::Return { value: None },
        ];
        let read_slots: Vec<Vec<SlotId>> = code.iter().map(|i| i.read_slots()).collect();
        let (plan, _) = crate::specialize::build_plan(&code);
        assert_eq!(plan.super_ops(), 1);

        let mut ctx = TestCtx::new(6).with_array(0, &[4], 8);
        let exit = run_instance(&mut ctx, &code, &read_slots, None, Some(&plan)).unwrap();
        assert_eq!(exit, RunExit::Blocked(s(1)), "same blocked slot as interp");
        assert_eq!(ctx.pc, 0, "blocked at the run head, ready to re-fire");
        assert_eq!(ctx.slot(s(4)), None, "no partial side effects");
        assert_eq!(ctx.arrays[0].1[0], None, "the store did not happen");
        assert!(ctx.costs.contains(&Cost::ContextSwitch));

        // Delivering the operand re-fires the whole run: the store lands
        // exactly once (a replay would fault the single-assignment cell).
        ctx.set_slot(s(1), Value::Int(35));
        let exit = run_instance(&mut ctx, &code, &read_slots, None, Some(&plan)).unwrap();
        assert_eq!(exit, RunExit::Finished(None));
        assert_eq!(ctx.arrays[0].1[0], Some(Value::Int(7)));
        assert_eq!(ctx.slot(s(5)), Some(Value::Int(42)));
    }

    #[test]
    fn specialized_driver_interoperates_with_the_chunk_driver() {
        // A chunked template whose whole body is one super-op: the chunk
        // driver resets pc to 0 between iterations, which re-enters the
        // super-op at its head — the plan and the chunk cursor compose.
        let (code, meta) = chunked_store_template();
        let read_slots: Vec<Vec<SlotId>> = code.iter().map(|i| i.read_slots()).collect();
        let (plan, _) = crate::specialize::build_plan(&code);
        assert_eq!(plan.super_ops(), 1);

        let mut ctx = TestCtx::new(5)
            .with_array(0, &[8], 8)
            .with_slot(1, Value::Int(2))
            .with_slot(2, Value::Int(7));
        let exit = run_instance(&mut ctx, &code, &read_slots, Some(&meta), Some(&plan)).unwrap();
        assert_eq!(exit, RunExit::Finished(None));
        for (i, cell) in ctx.arrays[0].1.iter().enumerate() {
            let expected = (2..=4).contains(&i).then(|| Value::Int(i as i64 * 10));
            assert_eq!(*cell, expected, "a[{i}]");
        }
        assert_eq!(ctx.slot(s(3)), Some(Value::Int(3)), "taken counter");
    }

    #[test]
    fn wrapping_arithmetic_never_panics() {
        assert_eq!(
            eval_binary(BinaryOp::Div, Value::Int(i64::MIN), Value::Int(-1)).unwrap(),
            Value::Int(i64::MIN)
        );
        assert_eq!(
            eval_binary(BinaryOp::Rem, Value::Int(i64::MIN), Value::Int(-1)).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            eval_unary(UnaryOp::Neg, Value::Int(i64::MIN)).unwrap(),
            Value::Int(i64::MIN)
        );
        assert_eq!(
            eval_unary(UnaryOp::Abs, Value::Int(i64::MIN)).unwrap(),
            Value::Int(i64::MIN)
        );
    }

    #[test]
    fn eval_smoke_matches_conventional_semantics() {
        assert_eq!(
            eval_binary(BinaryOp::Add, Value::Int(2), Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            eval_binary(BinaryOp::Add, Value::Int(2), Value::Float(0.5)).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            eval_binary(BinaryOp::Pow, Value::Int(2), Value::Int(10)).unwrap(),
            Value::Int(1024)
        );
        assert!(eval_binary(BinaryOp::Div, Value::Int(1), Value::Int(0)).is_err());
        let v = eval_binary(BinaryOp::Div, Value::Float(1.0), Value::Float(0.0)).unwrap();
        assert!(matches!(v, Value::Float(x) if x.is_infinite()));
        assert_eq!(
            eval_binary(BinaryOp::Or, Value::Int(1), Value::Bool(false)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_unary(UnaryOp::Floor, Value::Float(2.7)).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_unary(UnaryOp::Sqrt, Value::Int(9)).unwrap(),
            Value::Float(3.0)
        );
        assert!(eval_unary(UnaryOp::Sqrt, Value::Unit).is_err());
        let arr = Value::ArrayRef(ArrayId(0));
        assert!(eval_binary(BinaryOp::Add, arr, Value::Int(1)).is_err());
    }

    #[test]
    fn build_read_slots_matches_per_instruction_lists() {
        let hir = pods_idlang::compile(
            "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i; } return a; }",
        )
        .unwrap();
        let program = crate::translate(&hir).unwrap();
        let table = build_read_slots(&program);
        assert_eq!(table.len(), program.len());
        for (t, template) in program.templates().iter().enumerate() {
            assert_eq!(table[t].len(), template.code.len());
            for (pc, instr) in template.code.iter().enumerate() {
                assert_eq!(table[t][pc], instr.read_slots());
            }
        }
    }
}
