//! The instruction set of Subcompact Processes.
//!
//! A Subcompact Process (SP) is a sequential, program-counter-driven code
//! segment obtained from one dataflow code block (paper §3). Instructions
//! read *operands* — either immediates or operand slots of the SP instance's
//! frame — and write results back into slots. Every slot has a presence bit;
//! an instruction that needs an absent slot blocks the SP, and the arrival of
//! the missing token (an array value, a function result) re-activates it.
//! Array accesses are split-phase: the load is issued and the SP keeps
//! running until the value is actually consumed.

use pods_idlang::{BinaryOp, UnaryOp};

/// Identifier of an operand slot within an SP frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub usize);

impl SlotId {
    /// Numeric index of the slot.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for SlotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of an SP template within an [`crate::SpProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpId(pub usize);

impl SpId {
    /// Numeric index of the template.
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for SpId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SP{}", self.0)
    }
}

/// An instruction operand: an immediate constant or a frame slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A frame slot (must be present for the instruction to execute).
    Slot(SlotId),
    /// An immediate integer.
    Int(i64),
    /// An immediate float.
    Float(f64),
    /// An immediate boolean.
    Bool(bool),
}

impl std::hash::Hash for Operand {
    /// Structural hash used by [`crate::SpProgram::fingerprint`].
    /// Hand-written because `f64` has no `Hash`; float immediates hash by
    /// bit pattern. Note this is *stricter* than the derived `PartialEq`:
    /// `0.0` and `-0.0` compare equal but hash differently, and NaNs with
    /// one payload compare unequal but hash equally — so this type must not
    /// be used as a hash-map key. For fingerprinting that skew is harmless:
    /// identical translations produce bit-identical immediates, and a
    /// spurious fingerprint difference can at worst miss a cache, never
    /// alias two different programs.
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Operand::Slot(s) => s.hash(state),
            Operand::Int(v) => v.hash(state),
            Operand::Float(v) => v.to_bits().hash(state),
            Operand::Bool(v) => v.hash(state),
        }
    }
}

impl Operand {
    /// The slot read by this operand, if any.
    pub fn slot(&self) -> Option<SlotId> {
        match self {
            Operand::Slot(s) => Some(*s),
            _ => None,
        }
    }
}

impl From<SlotId> for Operand {
    fn from(value: SlotId) -> Self {
        Operand::Slot(value)
    }
}

impl std::fmt::Display for Operand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Operand::Slot(s) => write!(f, "{s}"),
            Operand::Int(v) => write!(f, "{v}"),
            Operand::Float(v) => write!(f, "{v}"),
            Operand::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// One instruction of an SP template.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Instr {
    /// `dst <- op(lhs, rhs)`.
    Binary {
        /// The ALU operation.
        op: BinaryOp,
        /// Destination slot.
        dst: SlotId,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst <- op(src)`.
    Unary {
        /// The ALU operation.
        op: UnaryOp,
        /// Destination slot.
        dst: SlotId,
        /// Operand.
        src: Operand,
    },
    /// `dst <- src`.
    Move {
        /// Destination slot.
        dst: SlotId,
        /// Source operand.
        src: Operand,
    },
    /// Continue at `target` when `cond` is false, otherwise fall through.
    /// This is the sequential rendering of the dataflow switch operator.
    BranchIfFalse {
        /// The predicate operand.
        cond: Operand,
        /// Jump target (program-counter value) when the predicate is false.
        target: usize,
    },
    /// Unconditional jump (loop back edge or joining conditional arms).
    Jump {
        /// Jump target (program-counter value).
        target: usize,
    },
    /// Allocate an I-structure array. The array reference is produced
    /// asynchronously by the Array Manager and delivered into `dst`; the SP
    /// keeps executing until it actually needs `dst` (§4.1).
    ArrayAlloc {
        /// Slot that will receive the array reference.
        dst: SlotId,
        /// Source-level array name (diagnostics and headers).
        name: String,
        /// Dimension extents.
        dims: Vec<Operand>,
        /// `true` once the partitioner converted this into the distributing
        /// allocate operator.
        distributed: bool,
    },
    /// Split-phase I-structure element read: issue the request and continue;
    /// the value is delivered into `dst` later. Issuing clears `dst`'s
    /// presence bit so a stale value from a previous iteration is never
    /// consumed.
    ArrayLoad {
        /// Slot that will receive the element value.
        dst: SlotId,
        /// The array reference operand.
        array: Operand,
        /// Element indices (zero-based).
        indices: Vec<Operand>,
    },
    /// I-structure element write.
    ArrayStore {
        /// The array reference operand.
        array: Operand,
        /// Element indices (zero-based).
        indices: Vec<Operand>,
        /// The value to store.
        value: Operand,
    },
    /// Spawn a child SP instance (the `L` operator) or, after partitioning,
    /// replicate it on every PE (the `LD` operator).
    Spawn {
        /// The template to instantiate.
        target: SpId,
        /// Argument operands copied into the child's parameter slots.
        args: Vec<Operand>,
        /// `true` for the distributing `LD` form.
        distributed: bool,
        /// Slot of *this* frame that receives the child's return value, for
        /// function calls. Loop spawns carry `None`.
        ret: Option<SlotId>,
    },
    /// Range-Filter lower bound: `dst <- max(default, start of this PE's
    /// responsibility range)` for the given array and dimension (Figure 5).
    RangeLo {
        /// Destination slot.
        dst: SlotId,
        /// The array whose header is consulted.
        array: Operand,
        /// The dimension of the index space being filtered.
        dim: usize,
        /// The original loop bound.
        default: Operand,
        /// The enclosing loop index, needed when `dim > 0`.
        outer: Option<Operand>,
    },
    /// Range-Filter upper bound: `dst <- min(default, end of this PE's
    /// responsibility range)`.
    RangeHi {
        /// Destination slot.
        dst: SlotId,
        /// The array whose header is consulted.
        array: Operand,
        /// The dimension of the index space being filtered.
        dim: usize,
        /// The original loop bound.
        default: Operand,
        /// The enclosing loop index, needed when `dim > 0`.
        outer: Option<Operand>,
    },
    /// Terminate the SP and (for function bodies) send the result token back
    /// to the parent instance.
    Return {
        /// The returned value, if the SP produces one.
        value: Option<Operand>,
    },
}

impl Instr {
    /// The slots this instruction *reads* (and therefore needs present).
    pub fn read_slots(&self) -> Vec<SlotId> {
        let mut out = Vec::new();
        let mut push = |op: &Operand| {
            if let Some(s) = op.slot() {
                if !out.contains(&s) {
                    out.push(s);
                }
            }
        };
        match self {
            Instr::Binary { lhs, rhs, .. } => {
                push(lhs);
                push(rhs);
            }
            Instr::Unary { src, .. } => push(src),
            Instr::Move { src, .. } => push(src),
            Instr::BranchIfFalse { cond, .. } => push(cond),
            Instr::Jump { .. } => {}
            Instr::ArrayAlloc { dims, .. } => {
                for d in dims {
                    push(d);
                }
            }
            Instr::ArrayLoad { array, indices, .. } => {
                push(array);
                for i in indices {
                    push(i);
                }
            }
            Instr::ArrayStore {
                array,
                indices,
                value,
            } => {
                push(array);
                for i in indices {
                    push(i);
                }
                push(value);
            }
            Instr::Spawn { args, .. } => {
                for a in args {
                    push(a);
                }
            }
            Instr::RangeLo {
                array,
                default,
                outer,
                ..
            }
            | Instr::RangeHi {
                array,
                default,
                outer,
                ..
            } => {
                push(array);
                push(default);
                if let Some(o) = outer {
                    push(o);
                }
            }
            Instr::Return { value } => {
                if let Some(v) = value {
                    push(v);
                }
            }
        }
        out
    }

    /// The slot this instruction writes, if any.
    pub fn written_slot(&self) -> Option<SlotId> {
        match self {
            Instr::Binary { dst, .. }
            | Instr::Unary { dst, .. }
            | Instr::Move { dst, .. }
            | Instr::ArrayAlloc { dst, .. }
            | Instr::ArrayLoad { dst, .. }
            | Instr::RangeLo { dst, .. }
            | Instr::RangeHi { dst, .. } => Some(*dst),
            Instr::Spawn { ret, .. } => *ret,
            _ => None,
        }
    }

    /// Rewrites jump targets with the provided function (used when the
    /// partitioner inserts prologue instructions).
    pub fn shift_targets(&mut self, f: impl Fn(usize) -> usize) {
        match self {
            Instr::BranchIfFalse { target, .. } | Instr::Jump { target } => {
                *target = f(*target);
            }
            _ => {}
        }
    }

    /// Rewrites every slot reference — destinations, operands, and return
    /// slots — with the provided function. Used by the chunking transform
    /// when it inserts slots into the middle of a frame layout.
    pub fn map_slots(&mut self, f: impl Fn(SlotId) -> SlotId) {
        let map_op = |op: &mut Operand| {
            if let Operand::Slot(s) = op {
                *s = f(*s);
            }
        };
        match self {
            Instr::Binary { dst, lhs, rhs, .. } => {
                *dst = f(*dst);
                map_op(lhs);
                map_op(rhs);
            }
            Instr::Unary { dst, src, .. } => {
                *dst = f(*dst);
                map_op(src);
            }
            Instr::Move { dst, src } => {
                *dst = f(*dst);
                map_op(src);
            }
            Instr::BranchIfFalse { cond, .. } => map_op(cond),
            Instr::Jump { .. } => {}
            Instr::ArrayAlloc { dst, dims, .. } => {
                *dst = f(*dst);
                for d in dims {
                    map_op(d);
                }
            }
            Instr::ArrayLoad {
                dst,
                array,
                indices,
            } => {
                *dst = f(*dst);
                map_op(array);
                for i in indices {
                    map_op(i);
                }
            }
            Instr::ArrayStore {
                array,
                indices,
                value,
            } => {
                map_op(array);
                for i in indices {
                    map_op(i);
                }
                map_op(value);
            }
            Instr::Spawn { args, ret, .. } => {
                for a in args {
                    map_op(a);
                }
                if let Some(r) = ret {
                    *r = f(*r);
                }
            }
            Instr::RangeLo {
                dst,
                array,
                default,
                outer,
                ..
            }
            | Instr::RangeHi {
                dst,
                array,
                default,
                outer,
                ..
            } => {
                *dst = f(*dst);
                map_op(array);
                map_op(default);
                if let Some(o) = outer {
                    map_op(o);
                }
            }
            Instr::Return { value } => {
                if let Some(v) = value {
                    map_op(v);
                }
            }
        }
    }

    /// `true` for instructions that complete asynchronously (split-phase).
    pub fn is_split_phase(&self) -> bool {
        matches!(
            self,
            Instr::ArrayAlloc { .. } | Instr::ArrayLoad { .. } | Instr::Spawn { ret: Some(_), .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pods_idlang::BinaryOp;

    #[test]
    fn read_and_written_slots_are_reported() {
        let i = Instr::Binary {
            op: BinaryOp::Add,
            dst: SlotId(2),
            lhs: Operand::Slot(SlotId(0)),
            rhs: Operand::Int(1),
        };
        assert_eq!(i.read_slots(), vec![SlotId(0)]);
        assert_eq!(i.written_slot(), Some(SlotId(2)));

        let store = Instr::ArrayStore {
            array: Operand::Slot(SlotId(0)),
            indices: vec![Operand::Slot(SlotId(1)), Operand::Slot(SlotId(1))],
            value: Operand::Slot(SlotId(3)),
        };
        assert_eq!(store.read_slots(), vec![SlotId(0), SlotId(1), SlotId(3)]);
        assert_eq!(store.written_slot(), None);
    }

    #[test]
    fn split_phase_classification() {
        assert!(Instr::ArrayLoad {
            dst: SlotId(0),
            array: Operand::Slot(SlotId(1)),
            indices: vec![]
        }
        .is_split_phase());
        assert!(!Instr::Jump { target: 3 }.is_split_phase());
        assert!(Instr::Spawn {
            target: SpId(1),
            args: vec![],
            distributed: false,
            ret: Some(SlotId(4))
        }
        .is_split_phase());
        assert!(!Instr::Spawn {
            target: SpId(1),
            args: vec![],
            distributed: false,
            ret: None
        }
        .is_split_phase());
    }

    #[test]
    fn shift_targets_only_affects_jumps() {
        let mut j = Instr::Jump { target: 5 };
        j.shift_targets(|t| t + 2);
        assert_eq!(j, Instr::Jump { target: 7 });
        let mut b = Instr::BranchIfFalse {
            cond: Operand::Bool(true),
            target: 1,
        };
        b.shift_targets(|t| t + 2);
        assert!(matches!(b, Instr::BranchIfFalse { target: 3, .. }));
        let mut m = Instr::Move {
            dst: SlotId(0),
            src: Operand::Int(1),
        };
        let before = m.clone();
        m.shift_targets(|t| t + 2);
        assert_eq!(m, before);
    }

    #[test]
    fn map_slots_rewrites_every_slot_reference() {
        let bump = |s: SlotId| SlotId(s.0 + 10);
        let mut b = Instr::Binary {
            op: BinaryOp::Add,
            dst: SlotId(0),
            lhs: Operand::Slot(SlotId(1)),
            rhs: Operand::Int(3),
        };
        b.map_slots(bump);
        assert_eq!(
            b,
            Instr::Binary {
                op: BinaryOp::Add,
                dst: SlotId(10),
                lhs: Operand::Slot(SlotId(11)),
                rhs: Operand::Int(3),
            }
        );
        let mut sp = Instr::Spawn {
            target: SpId(1),
            args: vec![Operand::Slot(SlotId(2)), Operand::Bool(true)],
            distributed: true,
            ret: Some(SlotId(5)),
        };
        sp.map_slots(bump);
        assert_eq!(
            sp,
            Instr::Spawn {
                target: SpId(1),
                args: vec![Operand::Slot(SlotId(12)), Operand::Bool(true)],
                distributed: true,
                ret: Some(SlotId(15)),
            }
        );
        let mut rl = Instr::RangeLo {
            dst: SlotId(0),
            array: Operand::Slot(SlotId(1)),
            dim: 1,
            default: Operand::Slot(SlotId(2)),
            outer: Some(Operand::Slot(SlotId(3))),
        };
        rl.map_slots(bump);
        assert_eq!(rl.written_slot(), Some(SlotId(10)));
        assert_eq!(rl.read_slots(), vec![SlotId(11), SlotId(12), SlotId(13)]);
    }

    #[test]
    fn display_impls() {
        assert_eq!(SlotId(3).to_string(), "s3");
        assert_eq!(SpId(2).to_string(), "SP2");
        assert_eq!(Operand::Slot(SlotId(1)).to_string(), "s1");
        assert_eq!(Operand::Int(7).to_string(), "7");
        assert_eq!(Operand::from(SlotId(4)), Operand::Slot(SlotId(4)));
    }
}
