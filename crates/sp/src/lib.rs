//! Subcompact Processes: the PODS Translator and SP program representation.
//!
//! The paper's central execution abstraction is the *Subcompact Process*
//! (SP): a sequential thread obtained from one dataflow code block, driven by
//! a program counter, which blocks when an operand it needs has not arrived
//! and is re-activated by the arrival of that operand (a dataflow / von
//! Neumann hybrid, §3). This crate defines:
//!
//! * the SP instruction set ([`Instr`], [`Operand`], [`SlotId`]),
//! * SP templates and programs ([`SpTemplate`], [`SpProgram`]), including the
//!   loop metadata the partitioner uses to insert Range Filters,
//! * the translator from the `idlang` HIR to SP templates ([`translate()`]),
//!   which makes each function and each loop-nest level a separate SP,
//! * the prepare-time specialization pass ([`specialize_program`]): operand
//!   fetches pre-resolved, straight-line runs collapsed into super-ops with
//!   one hoisted firing check, carried per template as a [`TemplatePlan`]
//!   that the shared driver executes directly, and
//! * the shared instruction-execution core ([`exec`]): the single audited
//!   implementation of SP semantics (operand coercion, the firing rule,
//!   split-phase loads, Range-Filter clamping), generic over a suspension
//!   strategy ([`exec::ExecCtx`]) and an I-structure access strategy
//!   ([`exec::ArrayOps`]) so every engine — the machine simulator, the
//!   native thread pool, the async cooperative executor — executes the
//!   *same* semantics and differs only in scheduling mechanics.
//!
//! # Example
//!
//! ```
//! let hir = pods_idlang::compile(
//!     "def main() { a = array(8); for i = 0 to 7 { a[i] = i * i; } return a; }",
//! ).unwrap();
//! let program = pods_sp::translate(&hir).unwrap();
//! assert_eq!(program.len(), 2);                 // main + the i-loop
//! assert!(program.validate().is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod exec;
pub mod instr;
pub mod specialize;
pub mod template;
pub mod translate;

pub use chunk::{chunk_loop_spawns, ChunkPolicy, ChunkSummary};
pub use instr::{Instr, Operand, SlotId, SpId};
pub use specialize::{specialize_program, SpecializeSummary, TemplatePlan};
pub use template::{ChunkMeta, LoopMeta, SpKind, SpProgram, SpTemplate};
pub use translate::{translate, TranslateError};
