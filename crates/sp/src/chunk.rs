//! Grain-size control: chunking inner-loop SP spawns.
//!
//! The translator spawns one SP instance per outer iteration (one `L`
//! operator firing per index value, §3 of the paper), so tiny loop bodies
//! pay per-instance spawn/steal/wake-up overhead that dwarfs the useful
//! work at small problem sizes. The transform in this module groups `chunk`
//! consecutive outer iterations into one SP instance: the parent loop's
//! increment steps by `chunk` instead of `1`, the parent passes its
//! *effective* loop limit along as one extra spawn argument, and the child
//! template gains a [`ChunkMeta`] record that the shared driver loop in
//! [`crate::exec`] uses to advance the iteration cursor in place — re-running
//! the child's code (including any Range-Filter prologue, against the
//! updated outer index) until the chunk budget or the parent's own
//! continuation test says stop.
//!
//! Because the driver replicates the parent's circulation *exactly* (same
//! `Add`/`Sub` step, same `Le`/`Ge` test against the same limit value, same
//! numeric promotion), a chunked program executes precisely the iterations
//! the unchunked one would — including out-of-range iterations that fault,
//! which is what keeps chunked runs pinned to the sequential oracle.
//!
//! The transform is deliberately conservative: a spawn site is chunked only
//! when the parent loop has the translator's exact circulation skeleton, the
//! body between test and increment consists of pure scalar moves plus
//! exactly one child-loop spawn carrying the index once (as a free-variable
//! argument, not a loop bound), and the child is spawned from no other site.
//! Everything else keeps grain 1 and is untouched.

use crate::instr::{Instr, Operand, SlotId, SpId};
use crate::template::{ChunkMeta, SpKind, SpProgram};
use pods_idlang::BinaryOp;

/// How many iterations one child instance should execute before the auto
/// policy considers the scheduling overhead amortised.
const AUTO_TARGET_INSTRS: usize = 64;

/// Ceiling for the base auto chunk (before retune boosts).
const AUTO_MAX_CHUNK: usize = 16;

/// Ceiling for a boosted auto chunk (after retuning).
const AUTO_MAX_BOOSTED: usize = 64;

/// The grain-size policy: how many consecutive outer iterations one SP
/// instance executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkPolicy {
    /// A fixed chunk size. `Fixed(1)` — the default — disables chunking
    /// entirely: the program is left byte-identical to the untransformed
    /// translation.
    Fixed(usize),
    /// Pick the chunk per spawn site from the child template's body size
    /// (small bodies get large chunks), refined after a first run by the
    /// runtime's prepared-program cache.
    Auto,
}

impl Default for ChunkPolicy {
    fn default() -> Self {
        ChunkPolicy::Fixed(1)
    }
}

impl std::fmt::Display for ChunkPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkPolicy::Fixed(n) => write!(f, "{n}"),
            ChunkPolicy::Auto => write!(f, "auto"),
        }
    }
}

impl std::str::FromStr for ChunkPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("auto") {
            return Ok(ChunkPolicy::Auto);
        }
        match s.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(ChunkPolicy::Fixed(n)),
            _ => Err(format!(
                "invalid chunk policy `{s}` (expected `auto` or a positive integer)"
            )),
        }
    }
}

/// What [`chunk_loop_spawns`] did to the program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkSummary {
    /// Number of spawn sites converted to chunked form.
    pub sites: usize,
    /// The largest chunk size in effect (1 when nothing was chunked).
    pub max_chunk: usize,
}

/// One eligible spawn site, recorded before any rewriting starts.
struct Site {
    parent: SpId,
    spawn_pc: usize,
    child: SpId,
    /// Argument position at which the parent passes its loop index.
    cursor_pos: usize,
    descending: bool,
    chunk: usize,
}

/// Applies the grain-size transform to every eligible loop-spawn site.
///
/// `boost` multiplies the auto policy's base chunk (the runtime's retune
/// path doubles it per generation); it has no effect on `Fixed` chunks.
/// Returns a summary of what was chunked. `ChunkPolicy::Fixed(1)` is a
/// guaranteed no-op.
pub fn chunk_loop_spawns(
    program: &mut SpProgram,
    policy: ChunkPolicy,
    boost: usize,
) -> ChunkSummary {
    if policy == ChunkPolicy::Fixed(1) {
        return ChunkSummary {
            sites: 0,
            max_chunk: 1,
        };
    }
    let sites = find_sites(program, policy, boost);
    if sites.is_empty() {
        return ChunkSummary {
            sites: 0,
            max_chunk: 1,
        };
    }
    // Parent-role rewrites first, child-role rewrites second: a template
    // that is both (a three-deep nest) gets its appended limit argument
    // remapped correctly when its own frame is widened.
    for site in &sites {
        rewrite_parent(program, site);
    }
    for site in &sites {
        rewrite_child(program, site);
    }
    ChunkSummary {
        sites: sites.len(),
        max_chunk: sites.iter().map(|s| s.chunk).max().unwrap_or(1),
    }
}

/// Scans the program for chunk-eligible spawn sites.
fn find_sites(program: &SpProgram, policy: ChunkPolicy, boost: usize) -> Vec<Site> {
    // A child is only chunkable when spawned from exactly one site: its
    // frame layout changes, so every spawn of it must pass the extra limit
    // argument — which only the one rewritten parent does.
    let mut spawn_counts = vec![0usize; program.len()];
    for t in program.templates() {
        for instr in &t.code {
            if let Instr::Spawn { target, .. } = instr {
                spawn_counts[target.index()] += 1;
            }
        }
    }

    let mut sites = Vec::new();
    for parent in program.templates() {
        let Some(site) = eligible_site(program, parent, &spawn_counts) else {
            continue;
        };
        let child = program.template(site.0);
        let chunk = resolve_chunk(policy, boost, child.code.len());
        if chunk <= 1 {
            continue;
        }
        sites.push(Site {
            parent: parent.id,
            spawn_pc: site.1,
            child: site.0,
            cursor_pos: site.2,
            descending: site.3,
            chunk,
        });
    }
    sites
}

/// The chunk size for one site under the given policy.
fn resolve_chunk(policy: ChunkPolicy, boost: usize, child_code_len: usize) -> usize {
    match policy {
        ChunkPolicy::Fixed(n) => n.max(1),
        ChunkPolicy::Auto => {
            let base = (AUTO_TARGET_INSTRS / child_code_len.max(1)).clamp(1, AUTO_MAX_CHUNK);
            (base * boost.max(1)).clamp(1, AUTO_MAX_BOOSTED)
        }
    }
}

/// Checks one template for the eligible-parent shape; returns the child id,
/// the spawn pc, the cursor argument position, and the loop direction.
fn eligible_site(
    program: &SpProgram,
    parent: &crate::template::SpTemplate,
    spawn_counts: &[usize],
) -> Option<(SpId, usize, usize, bool)> {
    let SpKind::Loop { descending, .. } = &parent.kind else {
        return None;
    };
    let descending = *descending;
    let lm = parent.loop_meta.as_ref()?;
    let code = &parent.code;
    // The translator's circulation skeleton: test, exit branch, body,
    // increment, back jump, return — possibly behind a Range-Filter
    // prologue (loop_meta tracks the shifted positions).
    if code.len() < 7 {
        return None;
    }
    let ret_pc = code.len() - 1;
    let jump_pc = code.len() - 2;
    let inc_pc = code.len() - 3;
    if !matches!(code[ret_pc], Instr::Return { value: None }) {
        return None;
    }
    if code[jump_pc]
        != (Instr::Jump {
            target: lm.test_instr,
        })
    {
        return None;
    }
    let step_op = if descending {
        BinaryOp::Sub
    } else {
        BinaryOp::Add
    };
    if code[inc_pc]
        != (Instr::Binary {
            op: step_op,
            dst: lm.index_slot,
            lhs: Operand::Slot(lm.index_slot),
            rhs: Operand::Int(1),
        })
    {
        return None;
    }
    let test_op = if descending {
        BinaryOp::Ge
    } else {
        BinaryOp::Le
    };
    let Instr::Binary {
        op, dst, lhs, rhs, ..
    } = &code[lm.test_instr]
    else {
        return None;
    };
    if *op != test_op
        || *lhs != Operand::Slot(lm.index_slot)
        || *rhs != Operand::Slot(lm.limit_slot)
    {
        return None;
    }
    let cont_slot = *dst;
    if code.get(lm.test_instr + 1)
        != Some(&Instr::BranchIfFalse {
            cond: Operand::Slot(cont_slot),
            target: ret_pc,
        })
    {
        return None;
    }

    // The body: pure scalar computation (never touching the index or the
    // effective limit) plus exactly one spawn of a child loop, carrying the
    // index exactly once — as a free-variable argument, not a loop bound.
    let mut spawn: Option<(SpId, usize, usize)> = None;
    for (off, instr) in code[lm.test_instr + 2..inc_pc].iter().enumerate() {
        let pc = lm.test_instr + 2 + off;
        match instr {
            Instr::Binary { .. } | Instr::Unary { .. } | Instr::Move { .. } => {
                if instr.written_slot() == Some(lm.index_slot)
                    || instr.written_slot() == Some(lm.limit_slot)
                    || instr.read_slots().contains(&lm.index_slot)
                {
                    return None;
                }
            }
            Instr::Spawn {
                target,
                args,
                ret: None,
                ..
            } => {
                if spawn.is_some() {
                    return None;
                }
                let index_uses: Vec<usize> = args
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| **a == Operand::Slot(lm.index_slot))
                    .map(|(i, _)| i)
                    .collect();
                let [cursor_pos] = index_uses[..] else {
                    return None;
                };
                // Positions 0/1 are the child's own loop bounds: chunking a
                // child whose *bounds* depend on the outer index would run
                // later iterations against stale bounds.
                if cursor_pos < 2 {
                    return None;
                }
                spawn = Some((*target, pc, cursor_pos));
            }
            _ => return None,
        }
    }
    let (child_id, spawn_pc, cursor_pos) = spawn?;
    if child_id == parent.id || spawn_counts[child_id.index()] != 1 {
        return None;
    }
    let child = program.template(child_id);
    if !child.is_loop() || child.loop_meta.is_none() || child.chunk_meta.is_some() {
        return None;
    }
    // The driver re-runs the child's code from the top per iteration, so
    // every parameter must survive untouched across a pass.
    let child_params = child.params.len();
    for instr in &child.code {
        if let Some(dst) = instr.written_slot() {
            if dst.index() < child_params {
                return None;
            }
        }
    }
    Some((child_id, spawn_pc, cursor_pos, descending))
}

/// Parent-side rewrite: step the index by `chunk` and pass the effective
/// limit along as one extra trailing spawn argument.
fn rewrite_parent(program: &mut SpProgram, site: &Site) {
    let parent = &mut program.templates_mut()[site.parent.index()];
    let limit_slot = parent
        .loop_meta
        .as_ref()
        .expect("eligible parent")
        .limit_slot;
    let inc_pc = parent.code.len() - 3;
    if let Instr::Binary { rhs, .. } = &mut parent.code[inc_pc] {
        *rhs = Operand::Int(site.chunk as i64);
    }
    if let Instr::Spawn { args, .. } = &mut parent.code[site.spawn_pc] {
        args.push(Operand::Slot(limit_slot));
    }
}

/// Child-side rewrite: widen the frame with the chunk-limit parameter and
/// the driver-managed taken counter, remapping every existing scratch slot.
fn rewrite_child(program: &mut SpProgram, site: &Site) {
    let child = &mut program.templates_mut()[site.child.index()];
    let p = child.params.len();
    let shift = |s: SlotId| {
        if s.index() >= p {
            SlotId(s.index() + 2)
        } else {
            s
        }
    };
    for instr in &mut child.code {
        instr.map_slots(shift);
    }
    if let Some(lm) = &mut child.loop_meta {
        lm.init_param_slot = shift(lm.init_param_slot);
        lm.limit_param_slot = shift(lm.limit_param_slot);
        lm.index_slot = shift(lm.index_slot);
        lm.limit_slot = shift(lm.limit_slot);
    }
    let var = match &child.kind {
        SpKind::Loop { var, .. } => var.clone(),
        SpKind::Function { name } => name.clone(),
    };
    child.params.push(format!("{var}__chunk_limit"));
    child.slot_names.insert(p, format!("{var}__chunk_limit"));
    child
        .slot_names
        .insert(p + 1, format!("{var}__chunk_taken"));
    child.num_slots += 2;
    child.chunk_meta = Some(ChunkMeta {
        cursor: SlotId(site.cursor_pos),
        limit: SlotId(p),
        taken: SlotId(p + 1),
        first_scratch: p + 2,
        num_slots: child.num_slots,
        chunk: site.chunk,
        descending: site.descending,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn translate_src(src: &str) -> SpProgram {
        crate::translate(&pods_idlang::compile(src).unwrap()).unwrap()
    }

    const NEST: &str = "def main(n) {
        a = matrix(8, 8);
        for i = 0 to n { for j = 0 to 7 { a[i, j] = i * 8 + j; } }
        return a;
    }";

    #[test]
    fn fixed_one_is_a_guaranteed_noop() {
        let mut program = translate_src(NEST);
        let before = program.fingerprint();
        let summary = chunk_loop_spawns(&mut program, ChunkPolicy::Fixed(1), 1);
        assert_eq!(
            summary,
            ChunkSummary {
                sites: 0,
                max_chunk: 1
            }
        );
        assert_eq!(program.fingerprint(), before);
    }

    #[test]
    fn nest_spawn_site_is_chunked_with_consistent_metadata() {
        let mut program = translate_src(NEST);
        let summary = chunk_loop_spawns(&mut program, ChunkPolicy::Fixed(4), 1);
        assert_eq!(summary.sites, 1);
        assert_eq!(summary.max_chunk, 4);
        assert!(program.validate().is_empty(), "{:?}", program.validate());

        // The child (the j-loop) carries the chunk metadata and one extra
        // parameter; the parent (the i-loop) steps by 4 and passes its
        // effective limit.
        let child = program.loop_template("main", 1).unwrap();
        let meta = child.chunk_meta.expect("child is chunked");
        assert_eq!(meta.chunk, 4);
        assert!(!meta.descending);
        assert_eq!(meta.limit.index(), child.params.len() - 1);
        assert_eq!(meta.taken.index(), child.params.len());
        assert_eq!(meta.first_scratch, child.params.len() + 1);
        assert!(child.params.last().unwrap().ends_with("__chunk_limit"));
        // The cursor is the child's `i` parameter.
        assert_eq!(child.params[meta.cursor.index()], "i");

        let parent = program.loop_template("main", 0).unwrap();
        assert!(parent.chunk_meta.is_none(), "parent keeps its own grain");
        let inc_pc = parent.code.len() - 3;
        assert!(matches!(
            parent.code[inc_pc],
            Instr::Binary {
                rhs: Operand::Int(4),
                ..
            }
        ));
        let lm = parent.loop_meta.unwrap();
        let spawn_args = parent
            .code
            .iter()
            .find_map(|i| match i {
                Instr::Spawn { args, .. } => Some(args.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(*spawn_args.last().unwrap(), Operand::Slot(lm.limit_slot));
    }

    #[test]
    fn single_level_loops_and_function_calls_are_not_chunked() {
        // fill: one loop, no inner spawn. The call loop spawns a function,
        // not a loop. Neither is eligible.
        let mut fill = translate_src(
            "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i; } return a; }",
        );
        assert_eq!(
            chunk_loop_spawns(&mut fill, ChunkPolicy::Fixed(8), 1).sites,
            0
        );

        let mut calls = translate_src(
            "def main(n) {
                 a = array(n);
                 for i = 0 to n - 1 { a[i] = f(i); }
                 return a;
             }
             def f(i) { return i * 2; }",
        );
        assert_eq!(
            chunk_loop_spawns(&mut calls, ChunkPolicy::Fixed(8), 1).sites,
            0
        );
    }

    #[test]
    fn index_dependent_inner_bounds_are_rejected() {
        // The inner loop's upper bound depends on the outer index: the
        // child's bounds are spawn-time parameters, so chunking would run
        // later iterations against stale bounds. Must stay grain 1.
        let mut program = translate_src(
            "def main(n) {
                 a = matrix(8, 8);
                 for i = 0 to n { for j = 0 to i { a[i, j] = j; } }
                 return a;
             }",
        );
        assert_eq!(
            chunk_loop_spawns(&mut program, ChunkPolicy::Fixed(8), 1).sites,
            0
        );
    }

    #[test]
    fn auto_policy_sizes_the_chunk_from_the_child_body() {
        let mut program = translate_src(NEST);
        let child_len = program.loop_template("main", 1).unwrap().code.len();
        let summary = chunk_loop_spawns(&mut program, ChunkPolicy::Auto, 1);
        assert_eq!(summary.sites, 1);
        let expected = (AUTO_TARGET_INSTRS / child_len).clamp(1, AUTO_MAX_CHUNK);
        assert_eq!(summary.max_chunk, expected);

        // A boost doubles the resolved chunk (up to the boosted ceiling).
        let mut boosted = translate_src(NEST);
        let summary2 = chunk_loop_spawns(&mut boosted, ChunkPolicy::Auto, 2);
        assert_eq!(
            summary2.max_chunk,
            (expected * 2).clamp(1, AUTO_MAX_BOOSTED)
        );
    }

    #[test]
    fn three_deep_nests_chunk_both_inner_sites() {
        // i spawns j, j spawns k: j is both chunk-child (of i) and
        // chunk-parent (of k). Parent rewrites happen before child frame
        // widening, so j's appended limit argument is remapped with the
        // rest of its scratch slots.
        let mut program = translate_src(
            "def main(n) {
                 a = matrix(4, 4);
                 for i = 0 to n {
                     for j = 0 to 3 {
                         for k = 0 to 0 { a[i, j] = i + j; }
                     }
                 }
                 return a;
             }",
        );
        let summary = chunk_loop_spawns(&mut program, ChunkPolicy::Fixed(2), 1);
        assert_eq!(summary.sites, 2);
        assert!(program.validate().is_empty(), "{:?}", program.validate());
        let j = program.loop_template("main", 1).unwrap();
        let k = program.loop_template("main", 2).unwrap();
        assert!(j.chunk_meta.is_some());
        assert!(k.chunk_meta.is_some());
        // j's spawn of k still passes j's (remapped) effective limit last.
        let jm = j.loop_meta.unwrap();
        let spawn_args = j
            .code
            .iter()
            .find_map(|i| match i {
                Instr::Spawn { args, .. } => Some(args.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(*spawn_args.last().unwrap(), Operand::Slot(jm.limit_slot));
    }

    #[test]
    fn chunk_policy_parses_and_displays() {
        assert_eq!("auto".parse::<ChunkPolicy>().unwrap(), ChunkPolicy::Auto);
        assert_eq!("AUTO".parse::<ChunkPolicy>().unwrap(), ChunkPolicy::Auto);
        assert_eq!("4".parse::<ChunkPolicy>().unwrap(), ChunkPolicy::Fixed(4));
        assert!("0".parse::<ChunkPolicy>().is_err());
        assert!("-3".parse::<ChunkPolicy>().is_err());
        assert!("fast".parse::<ChunkPolicy>().is_err());
        assert_eq!(ChunkPolicy::Auto.to_string(), "auto");
        assert_eq!(ChunkPolicy::Fixed(8).to_string(), "8");
        assert_eq!(ChunkPolicy::default(), ChunkPolicy::Fixed(1));
    }
}
