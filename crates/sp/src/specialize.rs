//! Prepare-time specialization of SP templates.
//!
//! The shared driver loop in [`crate::exec`] pays a per-instruction tax on
//! every warm run: match on the [`Instr`] variant, re-resolve each operand
//! (slot vs immediate), and re-run the firing-rule scan — all work whose
//! outcome is fixed once the template's code is fixed. This pass runs once,
//! at prepare time, and compiles each template into a [`TemplatePlan`] the
//! driver executes instead of re-interpreting `Instr`:
//!
//! * **Operand fetch plans** ([`Fetch`]): slot/immediate resolution is done
//!   here, once; immediates are converted to runtime [`Value`]s and fused in
//!   place, so the warm path never touches [`crate::instr::Operand`] again.
//!   Within a run, an operand that reads the slot the previous fused op just
//!   wrote becomes [`Fetch::Prev`] — the driver forwards the value in a
//!   register instead of round-tripping it through the frame.
//! * **Super-ops** ([`SuperOp`]): maximal straight-line runs of fusible
//!   instructions (ALU ops, moves, element stores) collapse into a single
//!   plan op with one hoisted firing-rule list for the whole run — slots a
//!   run reads before writing them locally. One presence scan replaces one
//!   scan per instruction. Runs are width-bounded (`MAX_FIRING` external
//!   reads): an all-or-nothing run must not make a wide join wait for its
//!   last operand before doing any work.
//! * **Interpreter fallback** ([`PlanOp::Interp`]): everything with
//!   scheduler-visible or split-phase behaviour — jumps and branches, array
//!   allocation, split-phase loads, spawns, Range-Filter prologues, returns
//!   — keeps its exact current semantics by executing through
//!   [`crate::exec::execute_instr`], unchanged.
//!
//! The plan preserves the interpreter's observable semantics: a super-op
//! fires all-or-nothing (the hoisted check runs *before* any side effect,
//! so a blocked run can safely re-fire from its head after the missing
//! operand arrives — no element store or slot write happens twice), each
//! fused instruction charges the same [`crate::exec::Cost`] class the
//! interpreter charges, and the blocked *slot* reported to the engine is
//! the one the per-instruction firing rule would have found (the hoisted
//! list is ordered instruction-by-instruction, operand order within each).
//! The only visible difference is the program counter a blocked super-op
//! reports: the head of the run rather than the consuming instruction
//! inside it, which is where execution will resume.
//!
//! Runs never extend across a jump target: every pc reachable by a jump,
//! branch, chunk re-entry (pc 0), or fall-through from an interpreter op is
//! the head of a plan op, so the driver can always dispatch on `ops[pc]`.

use crate::instr::{Instr, Operand, SlotId};
use crate::template::SpProgram;
use pods_idlang::{BinaryOp, UnaryOp};
use pods_istructure::Value;

/// A pre-resolved operand fetch: the slot/immediate decision is made at
/// prepare time instead of per execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Fetch {
    /// Read a frame slot. Absent slots read as [`Value::Unit`], exactly as
    /// [`crate::exec::ExecCtx::operand`] reads them; the firing list makes
    /// that unobservable for slots the run declares it reads.
    Slot(SlotId),
    /// An immediate, converted to its runtime value once, here.
    Const(Value),
    /// The value produced by the immediately preceding fused op of the same
    /// super-op — register chaining past the frame. The producer still
    /// writes its destination slot (frames stay bit-identical to the
    /// interpreter's), but the consumer skips the load: on ALU chains this
    /// removes the store-to-load round-trip the interpreter pays per
    /// instruction. Only emitted when the previous op's destination slot is
    /// exactly the slot this operand reads.
    Prev,
}

/// One fused instruction of a super-op: the specializable subset of
/// [`Instr`] with operands pre-resolved into [`Fetch`] plans.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// `dst <- op(lhs, rhs)`.
    Binary {
        /// The ALU operation.
        op: BinaryOp,
        /// Destination slot.
        dst: SlotId,
        /// Left operand fetch.
        lhs: Fetch,
        /// Right operand fetch.
        rhs: Fetch,
    },
    /// `dst <- op(src)`.
    Unary {
        /// The ALU operation.
        op: UnaryOp,
        /// Destination slot.
        dst: SlotId,
        /// Operand fetch.
        src: Fetch,
    },
    /// `dst <- src`.
    Move {
        /// Destination slot.
        dst: SlotId,
        /// Source fetch.
        src: Fetch,
    },
    /// I-structure element write.
    ArrayStore {
        /// The array reference fetch.
        array: Fetch,
        /// Element index fetches (zero-based).
        indices: Vec<Fetch>,
        /// The value fetch.
        value: Fetch,
    },
}

/// A maximal straight-line run of fused instructions, executed with one
/// firing-rule check for the whole run.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperOp {
    /// Slots that must be present before the run fires: the union of the
    /// run's read slots minus slots a strictly earlier fused instruction of
    /// the same run writes, in instruction-then-operand order — so the
    /// first missing entry is the slot the per-instruction firing rule
    /// would have blocked on.
    pub firing: Vec<SlotId>,
    /// The fused instructions, in original code order.
    pub ops: Vec<FusedOp>,
}

/// What the specialized driver does at one program counter.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOp {
    /// The head of a fused run: check `firing` once, then execute every
    /// fused op, then continue at `pc + ops.len()`.
    Super(SuperOp),
    /// Execute `code[pc]` through the interpreter
    /// ([`crate::exec::execute_instr`]), with its own firing-rule check —
    /// split-phase instructions, control flow, Range Filters, and the
    /// interior of a run (unreachable, but safe) all take this path.
    Interp,
}

/// The pre-resolved execution plan of one template: one [`PlanOp`] per
/// instruction, indexed by program counter (`ops.len() == code.len()`).
#[derive(Debug, Clone, PartialEq)]
pub struct TemplatePlan {
    /// The plan ops, indexed by pc.
    pub ops: Vec<PlanOp>,
}

impl TemplatePlan {
    /// Number of super-ops (fused runs) in the plan.
    pub fn super_ops(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, PlanOp::Super(_)))
            .count()
    }

    /// Feeds the plan's shape into a structural hash: the `(pc, run
    /// length)` of every super-op. The plan is a pure function of the code,
    /// so this is enough to distinguish a specialized program from an
    /// unspecialized one in [`SpProgram::fingerprint`].
    pub fn hash_shape<H: std::hash::Hasher>(&self, state: &mut H) {
        use std::hash::Hash;
        for (pc, op) in self.ops.iter().enumerate() {
            if let PlanOp::Super(s) = op {
                pc.hash(state);
                s.ops.len().hash(state);
            }
        }
    }
}

/// Counts reported by [`specialize_program`], merged into the partition
/// report by the pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpecializeSummary {
    /// Templates whose plan contains at least one super-op.
    pub specialized_templates: usize,
    /// Immediate operands converted to runtime values at prepare time.
    pub fused_consts: usize,
    /// Total super-ops (fused straight-line runs) across all templates.
    pub super_ops: usize,
}

/// `true` for instructions a super-op may absorb: synchronous, side-effect
/// complete, and control-linear. Everything split-phase
/// ([`Instr::is_split_phase`]), control flow, and the Range-Filter
/// prologues stay on the interpreter path.
fn fusible(instr: &Instr) -> bool {
    matches!(
        instr,
        Instr::Binary { .. } | Instr::Unary { .. } | Instr::Move { .. } | Instr::ArrayStore { .. }
    )
}

fn resolve(op: &Operand, prev_dst: Option<SlotId>, consts: &mut usize) -> Fetch {
    match op {
        Operand::Slot(s) if Some(*s) == prev_dst => Fetch::Prev,
        Operand::Slot(s) => Fetch::Slot(*s),
        Operand::Int(v) => {
            *consts += 1;
            Fetch::Const(Value::Int(*v))
        }
        Operand::Float(v) => {
            *consts += 1;
            Fetch::Const(Value::Float(*v))
        }
        Operand::Bool(v) => {
            *consts += 1;
            Fetch::Const(Value::Bool(*v))
        }
    }
}

fn fuse(instr: &Instr, prev_dst: Option<SlotId>, consts: &mut usize) -> FusedOp {
    match instr {
        Instr::Binary { op, dst, lhs, rhs } => FusedOp::Binary {
            op: *op,
            dst: *dst,
            lhs: resolve(lhs, prev_dst, consts),
            rhs: resolve(rhs, prev_dst, consts),
        },
        Instr::Unary { op, dst, src } => FusedOp::Unary {
            op: *op,
            dst: *dst,
            src: resolve(src, prev_dst, consts),
        },
        Instr::Move { dst, src } => FusedOp::Move {
            dst: *dst,
            src: resolve(src, prev_dst, consts),
        },
        Instr::ArrayStore {
            array,
            indices,
            value,
        } => FusedOp::ArrayStore {
            array: resolve(array, prev_dst, consts),
            indices: indices
                .iter()
                .map(|i| resolve(i, prev_dst, consts))
                .collect(),
            value: resolve(value, prev_dst, consts),
        },
        _ => unreachable!("fuse() is only called on fusible instructions"),
    }
}

/// Upper bound on a super-op's hoisted firing list. A run fires
/// all-or-nothing, so every external read it absorbs widens the wait: a
/// 64-way reduction fused whole would re-scan all 64 slots on every resume
/// and execute nothing until the *last* operand arrives — O(n²) presence
/// checks and no incremental progress, measurably slower than the
/// interpreter on gather-style joins. Capping the list splits wide joins
/// into bounded sub-runs (each fires as soon as its few inputs are ready
/// and advances the pc), while compute-dense straight lines — whose
/// external reads are a handful of loop variables — still fuse whole.
const MAX_FIRING: usize = 8;

/// Builds the plan for one instruction sequence. Returns the plan and the
/// number of immediates fused into it.
pub(crate) fn build_plan(code: &[Instr]) -> (TemplatePlan, usize) {
    // Every jump target must stay a plan-op head: a run absorbing one would
    // make the target unreachable by indexed dispatch.
    let mut is_target = vec![false; code.len() + 1];
    for instr in code {
        match instr {
            Instr::Jump { target } | Instr::BranchIfFalse { target, .. } => {
                if let Some(t) = is_target.get_mut(*target) {
                    *t = true;
                }
            }
            _ => {}
        }
    }

    let mut consts = 0usize;
    let mut ops: Vec<PlanOp> = Vec::with_capacity(code.len());
    let mut pc = 0;
    while pc < code.len() {
        if !fusible(&code[pc]) {
            ops.push(PlanOp::Interp);
            pc += 1;
            continue;
        }
        let start = pc;
        let mut firing: Vec<SlotId> = Vec::new();
        let mut written: Vec<SlotId> = Vec::new();
        let mut fused = Vec::new();
        let mut prev_dst: Option<SlotId> = None;
        let mut end = start;
        while end < code.len() && fusible(&code[end]) && (end == start || !is_target[end]) {
            let instr = &code[end];
            let fresh: Vec<SlotId> = instr
                .read_slots()
                .into_iter()
                .filter(|s| !written.contains(s) && !firing.contains(s))
                .collect();
            // A run's firing list is bounded: absorbing this instruction
            // must not push it past MAX_FIRING (the head instruction always
            // joins — a one-op run can't be subdivided further).
            if !fused.is_empty() && firing.len() + fresh.len() > MAX_FIRING {
                break;
            }
            firing.extend(fresh);
            fused.push(fuse(instr, prev_dst, &mut consts));
            if let Some(d) = instr.written_slot() {
                if !written.contains(&d) {
                    written.push(d);
                }
            }
            prev_dst = instr.written_slot();
            end += 1;
        }
        ops.push(PlanOp::Super(SuperOp { firing, ops: fused }));
        // Interior pcs of the run are unreachable (no jump lands there and
        // the run is executed whole); give them interpreter entries so even
        // an unexpected resume stays semantically correct.
        ops.extend(std::iter::repeat_with(|| PlanOp::Interp).take(end - start - 1));
        pc = end;
    }
    (TemplatePlan { ops }, consts)
}

/// Specializes every template of a (partitioned) program in place,
/// attaching a [`TemplatePlan`] to each. Run once at prepare time, after
/// partitioning and chunking — the plan is built from the final instruction
/// stream, so Range-Filter prologues and chunk rewrites are already in it.
pub fn specialize_program(program: &mut SpProgram) -> SpecializeSummary {
    let mut summary = SpecializeSummary::default();
    for t in program.templates_mut() {
        let (plan, consts) = build_plan(&t.code);
        let supers = plan.super_ops();
        if supers > 0 {
            summary.specialized_templates += 1;
        }
        summary.fused_consts += consts;
        summary.super_ops += supers;
        t.plan = Some(plan);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::slot;

    fn plan_of(code: Vec<Instr>) -> TemplatePlan {
        build_plan(&code).0
    }

    #[test]
    fn straight_line_alu_runs_collapse_into_one_super_op() {
        // t0 = a + b; t1 = t0 * 2; store a[i] = t1 — one run, one firing
        // list, immediates fused.
        let code = vec![
            Instr::Binary {
                op: BinaryOp::Add,
                dst: SlotId(3),
                lhs: slot(0),
                rhs: slot(1),
            },
            Instr::Binary {
                op: BinaryOp::Mul,
                dst: SlotId(4),
                lhs: slot(3),
                rhs: Operand::Int(2),
            },
            Instr::ArrayStore {
                array: slot(2),
                indices: vec![slot(0)],
                value: slot(4),
            },
        ];
        let (plan, consts) = build_plan(&code);
        assert_eq!(plan.ops.len(), 3);
        assert_eq!(plan.super_ops(), 1);
        assert_eq!(consts, 1, "the literal 2 is fused");
        let PlanOp::Super(s) = &plan.ops[0] else {
            panic!("run head must be a super-op");
        };
        assert_eq!(s.ops.len(), 3);
        // s3 and s4 are written before they are read; s0, s1, s2 must be
        // present at fire time — in interpreter discovery order.
        assert_eq!(s.firing, vec![SlotId(0), SlotId(1), SlotId(2)]);
        assert!(matches!(plan.ops[1], PlanOp::Interp));
        assert!(matches!(plan.ops[2], PlanOp::Interp));
    }

    #[test]
    fn jump_targets_break_runs() {
        // pc 2 is a branch target: the Move at pc 1 cannot be fused past
        // it, so the plan keeps pc 2 as a separate head.
        let code = vec![
            Instr::BranchIfFalse {
                cond: slot(0),
                target: 2,
            },
            Instr::Move {
                dst: SlotId(1),
                src: Operand::Int(1),
            },
            Instr::Move {
                dst: SlotId(2),
                src: Operand::Int(9),
            },
            Instr::Return { value: None },
        ];
        let plan = plan_of(code);
        assert!(matches!(plan.ops[0], PlanOp::Interp), "branch interprets");
        let PlanOp::Super(a) = &plan.ops[1] else {
            panic!("pc 1 heads a run")
        };
        assert_eq!(a.ops.len(), 1, "run must stop at the jump target");
        let PlanOp::Super(b) = &plan.ops[2] else {
            panic!("the jump target heads its own run")
        };
        assert_eq!(b.ops.len(), 1);
        assert!(matches!(plan.ops[3], PlanOp::Interp), "return interprets");
    }

    #[test]
    fn split_phase_instructions_stay_on_the_interpreter_path() {
        let code = vec![
            Instr::ArrayAlloc {
                dst: SlotId(0),
                name: "a".into(),
                dims: vec![Operand::Int(4)],
                distributed: true,
            },
            Instr::ArrayLoad {
                dst: SlotId(1),
                array: slot(0),
                indices: vec![Operand::Int(0)],
            },
            Instr::Spawn {
                target: crate::instr::SpId(1),
                args: vec![],
                distributed: false,
                ret: Some(SlotId(2)),
            },
            Instr::RangeLo {
                dst: SlotId(3),
                array: slot(0),
                dim: 0,
                default: Operand::Int(0),
                outer: None,
            },
        ];
        let plan = plan_of(code);
        assert_eq!(plan.super_ops(), 0);
        assert!(plan.ops.iter().all(|o| matches!(o, PlanOp::Interp)));
    }

    #[test]
    fn locally_written_slots_are_hoisted_out_of_the_firing_list() {
        // s1 <- s0 + 1; s2 <- s1 * s1: s1 is produced inside the run, so
        // only s0 gates firing.
        let code = vec![
            Instr::Binary {
                op: BinaryOp::Add,
                dst: SlotId(1),
                lhs: slot(0),
                rhs: Operand::Int(1),
            },
            Instr::Binary {
                op: BinaryOp::Mul,
                dst: SlotId(2),
                lhs: slot(1),
                rhs: slot(1),
            },
        ];
        let plan = plan_of(code);
        let PlanOp::Super(s) = &plan.ops[0] else {
            panic!("expected a super-op")
        };
        assert_eq!(s.firing, vec![SlotId(0)]);
    }

    #[test]
    fn chained_operands_become_prev_fetches() {
        // s1 <- s0 + 1; s2 <- s1 * s1; store a[s3] = s2: each op consumes
        // what the one before it just produced, so those reads chain
        // through the register instead of the frame. Reads of anything
        // *older* than the immediately preceding op stay slot fetches.
        let code = vec![
            Instr::Binary {
                op: BinaryOp::Add,
                dst: SlotId(1),
                lhs: slot(0),
                rhs: Operand::Int(1),
            },
            Instr::Binary {
                op: BinaryOp::Mul,
                dst: SlotId(2),
                lhs: slot(1),
                rhs: slot(1),
            },
            Instr::ArrayStore {
                array: slot(4),
                indices: vec![slot(3)],
                value: slot(2),
            },
            Instr::Move {
                dst: SlotId(5),
                src: slot(2),
            },
        ];
        let plan = plan_of(code);
        let PlanOp::Super(s) = &plan.ops[0] else {
            panic!("expected a super-op")
        };
        assert_eq!(
            s.ops[1],
            FusedOp::Binary {
                op: BinaryOp::Mul,
                dst: SlotId(2),
                lhs: Fetch::Prev,
                rhs: Fetch::Prev,
            },
            "both reads of the just-written s1 chain"
        );
        let FusedOp::ArrayStore { value, .. } = &s.ops[2] else {
            panic!("expected the store")
        };
        assert_eq!(*value, Fetch::Prev, "the stored value chains from the Mul");
        let FusedOp::Move { src, .. } = &s.ops[3] else {
            panic!("expected the move")
        };
        assert_eq!(
            *src,
            Fetch::Slot(SlotId(2)),
            "a store produces nothing, so the read after it goes to the frame"
        );
    }

    #[test]
    fn wide_joins_split_into_firing_bounded_sub_runs() {
        // A 24-way reduction: acc <- acc + s_k for fresh external slots
        // s_k. Fused whole it would hoist 24 slots into one firing list;
        // the cap must split it so each sub-run waits on at most
        // MAX_FIRING inputs and the pc advances between sub-runs.
        let mut code = vec![Instr::Move {
            dst: SlotId(0),
            src: Operand::Int(0),
        }];
        for k in 1..=24u32 {
            code.push(Instr::Binary {
                op: BinaryOp::Add,
                dst: SlotId(0),
                lhs: slot(0),
                rhs: slot(k as usize),
            });
        }
        let plan = plan_of(code);
        assert!(plan.super_ops() > 1, "the chain must split");
        let mut covered = 0;
        for op in &plan.ops {
            if let PlanOp::Super(s) = op {
                assert!(
                    s.firing.len() <= MAX_FIRING,
                    "firing list exceeds the cap: {:?}",
                    s.firing
                );
                covered += s.ops.len();
            }
        }
        assert_eq!(covered, 25, "every instruction still lives in some run");
    }

    #[test]
    fn specialize_program_attaches_plans_and_counts() {
        let hir = pods_idlang::compile(
            "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * 3 + 1; } return a; }",
        )
        .unwrap();
        let mut program = crate::translate(&hir).unwrap();
        assert!(program.templates().iter().all(|t| t.plan.is_none()));
        let before = program.fingerprint();
        let summary = specialize_program(&mut program);
        assert!(summary.specialized_templates >= 1);
        assert!(summary.super_ops >= 1);
        assert!(summary.fused_consts >= 2, "the literals 3 and 1 fuse");
        for t in program.templates() {
            let plan = t.plan.as_ref().expect("every template gets a plan");
            assert_eq!(plan.ops.len(), t.code.len());
        }
        assert_ne!(
            before,
            program.fingerprint(),
            "specialization is part of structural identity"
        );
    }
}
