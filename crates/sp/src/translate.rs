//! The PODS Translator: HIR → Subcompact Process templates.
//!
//! Following §3 of the paper, the translator makes *each function* and *each
//! loop-nest level* a separate SP. Within an SP, instructions are ordered
//! sequentially according to their data dependencies (the structured HIR
//! already provides such an order) and driven by a program counter; the
//! switch operators of the dataflow graph become conditional branches, and
//! the loop circulation subgraph (initial value, increment, `D` test) becomes
//! a counted-loop skeleton whose bounds the partitioner can later wrap in
//! Range Filters.

use crate::instr::{Instr, Operand, SlotId, SpId};
use crate::template::{LoopMeta, SpKind, SpProgram, SpTemplate};
use pods_dataflow::collect_free_vars_stmts;
use pods_idlang::{BinaryOp, HirExpr, HirFunction, HirProgram, HirStmt};
use std::collections::HashMap;

/// Errors produced by the translator.
///
/// Programs that pass [`pods_idlang::sema::check`] never trigger these, but
/// the translator still validates its inputs so that hand-constructed HIR is
/// diagnosed cleanly.
#[derive(Debug, Clone, PartialEq)]
pub enum TranslateError {
    /// A variable was referenced but never bound in the enclosing SP.
    UndefinedVariable {
        /// The variable name.
        name: String,
        /// The SP being compiled.
        context: String,
    },
    /// A called function does not exist in the program.
    UnknownFunction {
        /// The callee name.
        name: String,
    },
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TranslateError::UndefinedVariable { name, context } => {
                write!(f, "variable `{name}` is not defined in SP `{context}`")
            }
            TranslateError::UnknownFunction { name } => {
                write!(f, "function `{name}` is not defined")
            }
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translates an HIR program into SP templates.
///
/// # Errors
///
/// Returns a [`TranslateError`] for undefined variables or unknown callees
/// (normally prevented by semantic analysis).
pub fn translate(hir: &HirProgram) -> Result<SpProgram, TranslateError> {
    let mut translator = Translator {
        templates: Vec::new(),
        functions: HashMap::new(),
    };
    // Pass 1: reserve an SpId per function so calls can be resolved while
    // bodies are being generated.
    for function in &hir.functions {
        let id = SpId(translator.templates.len());
        translator.functions.insert(function.name.clone(), id);
        translator.templates.push(placeholder(id, &function.name));
    }
    // Pass 2: generate the bodies (loop templates are appended on the fly).
    for function in &hir.functions {
        translator.build_function(function)?;
    }
    let entry = translator.functions.get("main").copied().unwrap_or(SpId(0));
    Ok(SpProgram::new(
        translator.templates,
        translator.functions,
        entry,
    ))
}

fn placeholder(id: SpId, name: &str) -> SpTemplate {
    SpTemplate {
        id,
        name: name.to_string(),
        kind: SpKind::Function {
            name: name.to_string(),
        },
        params: Vec::new(),
        num_slots: 0,
        slot_names: Vec::new(),
        code: Vec::new(),
        loop_meta: None,
        chunk_meta: None,
        plan: None,
    }
}

struct Translator {
    templates: Vec<SpTemplate>,
    functions: HashMap<String, SpId>,
}

impl Translator {
    fn build_function(&mut self, function: &HirFunction) -> Result<(), TranslateError> {
        let id = self.functions[&function.name];
        let mut builder = TemplateBuilder::new(
            id,
            function.name.clone(),
            SpKind::Function {
                name: function.name.clone(),
            },
            function.params.clone(),
            function.name.clone(),
        );
        let mut counter = 0usize;
        builder.compile_stmts(&function.body, self, &mut counter)?;
        // A function that falls off the end returns no value.
        if !matches!(builder.code.last(), Some(Instr::Return { .. })) {
            builder.code.push(Instr::Return { value: None });
        }
        self.templates[id.index()] = builder.finish();
        Ok(())
    }

    /// Builds a loop-level template and returns its id.
    #[allow(clippy::too_many_arguments)]
    fn build_loop(
        &mut self,
        function: &str,
        ordinal: usize,
        depth: usize,
        var: &str,
        descending: bool,
        free_vars: &[String],
        body: &[HirStmt],
        counter: &mut usize,
    ) -> Result<SpId, TranslateError> {
        let id = SpId(self.templates.len());
        let name = format!("{function}.loop{ordinal}.{var}");
        let mut params = vec![format!("{var}__init"), format!("{var}__limit")];
        params.extend(free_vars.iter().cloned());
        self.templates.push(placeholder(id, &name));

        let mut builder = TemplateBuilder::new(
            id,
            name,
            SpKind::Loop {
                function: function.to_string(),
                ordinal,
                var: var.to_string(),
                descending,
                depth,
            },
            params,
            function.to_string(),
        );

        let init_param = builder.env[&format!("{var}__init")];
        let limit_param = builder.env[&format!("{var}__limit")];
        let index_slot = builder.alloc_slot(var);
        builder.env.insert(var.to_string(), index_slot);
        let limit_slot = builder.alloc_slot(format!("{var}__limit_eff"));
        let cont_slot = builder.alloc_slot(format!("{var}__continue"));

        // Index circulation skeleton (Figure 2 / Figure 5 of the paper).
        builder.code.push(Instr::Move {
            dst: index_slot,
            src: Operand::Slot(init_param),
        });
        builder.code.push(Instr::Move {
            dst: limit_slot,
            src: Operand::Slot(limit_param),
        });
        let test_pc = builder.code.len();
        builder.code.push(Instr::Binary {
            op: if descending {
                BinaryOp::Ge
            } else {
                BinaryOp::Le
            },
            dst: cont_slot,
            lhs: Operand::Slot(index_slot),
            rhs: Operand::Slot(limit_slot),
        });
        let exit_branch_pc = builder.code.len();
        builder.code.push(Instr::BranchIfFalse {
            cond: Operand::Slot(cont_slot),
            target: usize::MAX, // patched below
        });

        builder.loop_meta = Some(LoopMeta {
            init_param_slot: init_param,
            limit_param_slot: limit_param,
            index_slot,
            limit_slot,
            init_instr: 0,
            limit_init_instr: 1,
            test_instr: test_pc,
        });

        builder.compile_stmts(body, self, counter)?;

        // Increment (or decrement) and loop back to the test.
        builder.code.push(Instr::Binary {
            op: if descending {
                BinaryOp::Sub
            } else {
                BinaryOp::Add
            },
            dst: index_slot,
            lhs: Operand::Slot(index_slot),
            rhs: Operand::Int(1),
        });
        builder.code.push(Instr::Jump { target: test_pc });
        let end_pc = builder.code.len();
        builder.code.push(Instr::Return { value: None });
        if let Instr::BranchIfFalse { target, .. } = &mut builder.code[exit_branch_pc] {
            *target = end_pc;
        }

        self.templates[id.index()] = builder.finish();
        Ok(id)
    }
}

struct TemplateBuilder {
    id: SpId,
    name: String,
    kind: SpKind,
    params: Vec<String>,
    slot_names: Vec<String>,
    env: HashMap<String, SlotId>,
    code: Vec<Instr>,
    loop_meta: Option<LoopMeta>,
    /// The function this template belongs to (for loop ordinals).
    function: String,
    temp_counter: usize,
}

impl TemplateBuilder {
    fn new(id: SpId, name: String, kind: SpKind, params: Vec<String>, function: String) -> Self {
        let mut builder = TemplateBuilder {
            id,
            name,
            kind,
            params: params.clone(),
            slot_names: Vec::new(),
            env: HashMap::new(),
            code: Vec::new(),
            loop_meta: None,
            function,
            temp_counter: 0,
        };
        for p in params {
            let slot = builder.alloc_slot(&p);
            builder.env.insert(p, slot);
        }
        builder
    }

    fn alloc_slot(&mut self, name: impl Into<String>) -> SlotId {
        let id = SlotId(self.slot_names.len());
        self.slot_names.push(name.into());
        id
    }

    fn temp(&mut self) -> SlotId {
        let n = self.temp_counter;
        self.temp_counter += 1;
        self.alloc_slot(format!("%t{n}"))
    }

    fn lookup(&self, name: &str) -> Result<SlotId, TranslateError> {
        self.env
            .get(name)
            .copied()
            .ok_or_else(|| TranslateError::UndefinedVariable {
                name: name.to_string(),
                context: self.name.clone(),
            })
    }

    fn finish(self) -> SpTemplate {
        SpTemplate {
            id: self.id,
            name: self.name,
            kind: self.kind,
            params: self.params,
            num_slots: self.slot_names.len(),
            slot_names: self.slot_names,
            code: self.code,
            loop_meta: self.loop_meta,
            chunk_meta: None,
            plan: None,
        }
    }

    fn compile_stmts(
        &mut self,
        stmts: &[HirStmt],
        translator: &mut Translator,
        counter: &mut usize,
    ) -> Result<(), TranslateError> {
        for stmt in stmts {
            self.compile_stmt(stmt, translator, counter)?;
        }
        Ok(())
    }

    fn compile_stmt(
        &mut self,
        stmt: &HirStmt,
        translator: &mut Translator,
        counter: &mut usize,
    ) -> Result<(), TranslateError> {
        match stmt {
            HirStmt::Let { name, value } => {
                let src = self.compile_expr(value, translator)?;
                let dst = match self.env.get(name) {
                    Some(slot) => *slot,
                    None => {
                        let slot = self.alloc_slot(name);
                        self.env.insert(name.clone(), slot);
                        slot
                    }
                };
                self.code.push(Instr::Move { dst, src });
            }
            HirStmt::Alloc { name, dims } => {
                let dim_ops = dims
                    .iter()
                    .map(|d| self.compile_expr(d, translator))
                    .collect::<Result<Vec<_>, _>>()?;
                let dst = self.alloc_slot(name);
                self.env.insert(name.clone(), dst);
                self.code.push(Instr::ArrayAlloc {
                    dst,
                    name: name.clone(),
                    dims: dim_ops,
                    distributed: false,
                });
            }
            HirStmt::Store {
                array,
                indices,
                value,
            } => {
                let array_op = Operand::Slot(self.lookup(array)?);
                let index_ops = indices
                    .iter()
                    .map(|i| self.compile_expr(i, translator))
                    .collect::<Result<Vec<_>, _>>()?;
                let value_op = self.compile_expr(value, translator)?;
                self.code.push(Instr::ArrayStore {
                    array: array_op,
                    indices: index_ops,
                    value: value_op,
                });
            }
            HirStmt::For {
                var,
                from,
                to,
                descending,
                body,
            } => {
                let ordinal = *counter;
                *counter += 1;
                let depth = match &self.kind {
                    SpKind::Loop { depth, .. } => depth + 1,
                    SpKind::Function { .. } => 0,
                };
                let from_op = self.compile_expr(from, translator)?;
                let to_op = self.compile_expr(to, translator)?;
                let mut free = Vec::new();
                collect_free_vars_stmts(body, &mut free);
                free.retain(|name| name != var);
                // Arguments: bounds first, then the free variables in order.
                let mut args = vec![from_op, to_op];
                for name in &free {
                    args.push(Operand::Slot(self.lookup(name)?));
                }
                let child = translator.build_loop(
                    &self.function,
                    ordinal,
                    depth,
                    var,
                    *descending,
                    &free,
                    body,
                    counter,
                )?;
                self.code.push(Instr::Spawn {
                    target: child,
                    args,
                    distributed: false,
                    ret: None,
                });
            }
            HirStmt::If {
                cond,
                then_body,
                else_body,
            } => {
                let cond_op = self.compile_expr(cond, translator)?;
                let branch_pc = self.code.len();
                self.code.push(Instr::BranchIfFalse {
                    cond: cond_op,
                    target: usize::MAX,
                });
                self.compile_stmts(then_body, translator, counter)?;
                let jump_pc = self.code.len();
                self.code.push(Instr::Jump { target: usize::MAX });
                let else_start = self.code.len();
                self.compile_stmts(else_body, translator, counter)?;
                let end = self.code.len();
                if let Instr::BranchIfFalse { target, .. } = &mut self.code[branch_pc] {
                    *target = else_start;
                }
                if let Instr::Jump { target } = &mut self.code[jump_pc] {
                    *target = end;
                }
            }
            HirStmt::Return { value } => {
                let op = self.compile_expr(value, translator)?;
                self.code.push(Instr::Return { value: Some(op) });
            }
            HirStmt::Call { function, args } => {
                let target = *translator.functions.get(function).ok_or_else(|| {
                    TranslateError::UnknownFunction {
                        name: function.clone(),
                    }
                })?;
                let arg_ops = args
                    .iter()
                    .map(|a| self.compile_expr(a, translator))
                    .collect::<Result<Vec<_>, _>>()?;
                self.code.push(Instr::Spawn {
                    target,
                    args: arg_ops,
                    distributed: false,
                    ret: None,
                });
            }
        }
        Ok(())
    }

    fn compile_expr(
        &mut self,
        expr: &HirExpr,
        translator: &mut Translator,
    ) -> Result<Operand, TranslateError> {
        Ok(match expr {
            HirExpr::Int(v) => Operand::Int(*v),
            HirExpr::Float(v) => Operand::Float(*v),
            HirExpr::Bool(v) => Operand::Bool(*v),
            HirExpr::Var(name) => Operand::Slot(self.lookup(name)?),
            HirExpr::Load { array, indices } => {
                let array_op = Operand::Slot(self.lookup(array)?);
                let index_ops = indices
                    .iter()
                    .map(|i| self.compile_expr(i, translator))
                    .collect::<Result<Vec<_>, _>>()?;
                let dst = self.temp();
                self.code.push(Instr::ArrayLoad {
                    dst,
                    array: array_op,
                    indices: index_ops,
                });
                Operand::Slot(dst)
            }
            HirExpr::Unary { op, operand } => {
                let src = self.compile_expr(operand, translator)?;
                let dst = self.temp();
                self.code.push(Instr::Unary { op: *op, dst, src });
                Operand::Slot(dst)
            }
            HirExpr::Binary { op, lhs, rhs } => {
                let l = self.compile_expr(lhs, translator)?;
                let r = self.compile_expr(rhs, translator)?;
                let dst = self.temp();
                self.code.push(Instr::Binary {
                    op: *op,
                    dst,
                    lhs: l,
                    rhs: r,
                });
                Operand::Slot(dst)
            }
            HirExpr::Call { function, args } => {
                let target = *translator.functions.get(function).ok_or_else(|| {
                    TranslateError::UnknownFunction {
                        name: function.clone(),
                    }
                })?;
                let arg_ops = args
                    .iter()
                    .map(|a| self.compile_expr(a, translator))
                    .collect::<Result<Vec<_>, _>>()?;
                let dst = self.temp();
                self.code.push(Instr::Spawn {
                    target,
                    args: arg_ops,
                    distributed: false,
                    ret: Some(dst),
                });
                Operand::Slot(dst)
            }
            HirExpr::Select {
                cond,
                then_value,
                else_value,
            } => {
                let cond_op = self.compile_expr(cond, translator)?;
                let dst = self.temp();
                let branch_pc = self.code.len();
                self.code.push(Instr::BranchIfFalse {
                    cond: cond_op,
                    target: usize::MAX,
                });
                let t = self.compile_expr(then_value, translator)?;
                self.code.push(Instr::Move { dst, src: t });
                let jump_pc = self.code.len();
                self.code.push(Instr::Jump { target: usize::MAX });
                let else_start = self.code.len();
                let e = self.compile_expr(else_value, translator)?;
                self.code.push(Instr::Move { dst, src: e });
                let end = self.code.len();
                if let Instr::BranchIfFalse { target, .. } = &mut self.code[branch_pc] {
                    *target = else_start;
                }
                if let Instr::Jump { target } = &mut self.code[jump_pc] {
                    *target = end;
                }
                Operand::Slot(dst)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pods_idlang::compile;

    const PAPER_EXAMPLE: &str = r#"
        def main() {
            a = matrix(50, 10);
            for i = 0 to 49 {
                for j = 0 to 9 {
                    a[i, j] = f(i, j);
                }
            }
            return a;
        }
        def f(i, j) { return i * 10 + j; }
    "#;

    fn translate_src(src: &str) -> SpProgram {
        translate(&compile(src).unwrap()).unwrap()
    }

    #[test]
    fn paper_example_yields_four_sps() {
        let program = translate_src(PAPER_EXAMPLE);
        // main, f, i-loop, j-loop.
        assert_eq!(program.len(), 4);
        assert!(program.validate().is_empty(), "{:?}", program.validate());
        assert_eq!(program.entry(), program.function("main").unwrap());
        let main = program.template(program.entry());
        assert!(matches!(main.kind, SpKind::Function { .. }));
        // main allocates the array and spawns the i-loop.
        assert!(main
            .code
            .iter()
            .any(|i| matches!(i, Instr::ArrayAlloc { .. })));
        assert_eq!(
            main.code
                .iter()
                .filter(|i| matches!(i, Instr::Spawn { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn loop_templates_have_circulation_skeleton_and_meta() {
        let program = translate_src(PAPER_EXAMPLE);
        let i_loop = program.loop_template("main", 0).unwrap();
        assert!(i_loop.is_loop());
        let meta = i_loop.loop_meta.unwrap();
        assert!(matches!(i_loop.code[meta.init_instr], Instr::Move { .. }));
        assert!(matches!(
            i_loop.code[meta.test_instr],
            Instr::Binary {
                op: BinaryOp::Le,
                ..
            }
        ));
        // The i-loop spawns the j-loop once per iteration.
        assert_eq!(
            i_loop
                .code
                .iter()
                .filter(|i| matches!(i, Instr::Spawn { .. }))
                .count(),
            1
        );
        let j_loop = program.loop_template("main", 1).unwrap();
        // The j-loop calls f and stores into a.
        assert!(j_loop
            .code
            .iter()
            .any(|i| matches!(i, Instr::Spawn { ret: Some(_), .. })));
        assert!(j_loop
            .code
            .iter()
            .any(|i| matches!(i, Instr::ArrayStore { .. })));
    }

    #[test]
    fn loop_bounds_and_free_vars_become_parameters() {
        let program = translate_src(PAPER_EXAMPLE);
        let i_loop = program.loop_template("main", 0).unwrap();
        assert_eq!(i_loop.params[0], "i__init");
        assert_eq!(i_loop.params[1], "i__limit");
        assert!(i_loop.params.contains(&"a".to_string()));
        let j_loop = program.loop_template("main", 1).unwrap();
        assert!(j_loop.params.contains(&"a".to_string()));
        assert!(j_loop.params.contains(&"i".to_string()));
    }

    #[test]
    fn descending_loops_use_ge_and_subtract() {
        let program = translate_src(
            "def main(n, b) { a = array(n); for i = n - 1 downto 0 { a[i] = b[i]; } return a; }",
        );
        let t = program.loop_template("main", 0).unwrap();
        let meta = t.loop_meta.unwrap();
        assert!(matches!(
            t.code[meta.test_instr],
            Instr::Binary {
                op: BinaryOp::Ge,
                ..
            }
        ));
        assert!(t.code.iter().any(|i| matches!(
            i,
            Instr::Binary {
                op: BinaryOp::Sub,
                rhs: Operand::Int(1),
                ..
            }
        )));
    }

    #[test]
    fn conditionals_and_selects_backpatch_targets() {
        let program = translate_src(
            r#"
            def main(c) {
                y = if c > 0 then 1 else 2;
                if y == 1 { z = 10; } else { z = 20; }
                return z;
            }
        "#,
        );
        assert!(program.validate().is_empty(), "{:?}", program.validate());
        let main = program.template(program.entry());
        // No unpatched placeholder targets remain.
        for instr in &main.code {
            if let Instr::Jump { target } | Instr::BranchIfFalse { target, .. } = instr {
                assert!(*target <= main.code.len());
            }
        }
    }

    #[test]
    fn call_statements_spawn_without_return_slot() {
        let program = translate_src(
            r#"
            def main(n) {
                a = array(n);
                fill(a, n);
                return a;
            }
            def fill(arr, n) {
                for i = 0 to n - 1 { arr[i] = i; }
                return 0;
            }
        "#,
        );
        let main = program.template(program.entry());
        let spawns: Vec<&Instr> = main
            .code
            .iter()
            .filter(|i| matches!(i, Instr::Spawn { .. }))
            .collect();
        assert_eq!(spawns.len(), 1);
        assert!(matches!(spawns[0], Instr::Spawn { ret: None, .. }));
        assert!(program.validate().is_empty());
    }

    #[test]
    fn loop_ordinals_match_dataflow_analysis_numbering() {
        let src = r#"
            def main(n) {
                a = array(n);
                b = array(n);
                for i = 0 to n - 1 { a[i] = i; }
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 { b[j] = i + j; }
                }
                return b;
            }
        "#;
        let hir = compile(src).unwrap();
        let program = translate(&hir).unwrap();
        let infos = pods_dataflow::analyze_loops(&hir);
        for info in &infos {
            let t = program
                .loop_template(&info.key.function, info.key.ordinal)
                .unwrap_or_else(|| panic!("no template for {}", info.key));
            if let SpKind::Loop { var, .. } = &t.kind {
                assert_eq!(var, &info.var, "ordinal mismatch for {}", info.key);
            }
        }
    }

    #[test]
    fn undefined_names_are_reported() {
        // Hand-built HIR with an undefined variable (sema would reject the
        // source form, so construct the HIR directly).
        use pods_idlang::{HirFunction, HirProgram};
        let hir = HirProgram {
            functions: vec![HirFunction {
                name: "main".into(),
                params: vec![],
                body: vec![HirStmt::Return {
                    value: HirExpr::Var("ghost".into()),
                }],
            }],
        };
        assert!(matches!(
            translate(&hir),
            Err(TranslateError::UndefinedVariable { .. })
        ));
        let hir = HirProgram {
            functions: vec![HirFunction {
                name: "main".into(),
                params: vec![],
                body: vec![HirStmt::Call {
                    function: "nope".into(),
                    args: vec![],
                }],
            }],
        };
        assert!(matches!(
            translate(&hir),
            Err(TranslateError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn programs_without_main_use_first_function_as_entry() {
        let program = translate_src("def helper(x) { return x + 1; }");
        assert_eq!(program.entry(), SpId(0));
    }
}
