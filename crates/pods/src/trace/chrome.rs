//! Chrome/Perfetto `trace_event` JSON serialization of a [`JobTrace`].
//!
//! The output is the stable "JSON object format" both `chrome://tracing`
//! and Perfetto load: a `traceEvents` array of metadata records (process
//! and per-lane thread names), `"B"`/`"E"` duration events for instance
//! runs (one lane per worker, so spans nest correctly — a worker executes
//! one task at a time), and `"i"` instant events for everything punctual
//! (spawns, steals, suspensions, deferred loads, resumptions, chunk
//! advances, job lifecycle). Timestamps are microseconds, which is the
//! unit the format defines. Serialized by hand — the workspace carries no
//! JSON dependency, and the vocabulary is closed (fixed ASCII names, no
//! escaping needed).

use super::events::TraceEventKind;
use super::JobTrace;
use std::fmt::Write;

/// Renders `trace` as Chrome-trace JSON (see module docs).
pub(crate) fn render(trace: &JobTrace) -> String {
    let mut out = String::with_capacity(64 + trace.events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"pods\"}}",
    );
    for lane in 0..trace.lanes {
        let name = if lane + 1 == trace.lanes {
            "service".to_string()
        } else {
            format!("worker {lane}")
        };
        let _ = write!(
            out,
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{lane},\"args\":{{\"name\":\"{name}\"}}}}"
        );
    }
    // Per-lane span depth: a ring that overflowed may have dropped a span's
    // opening `RunBegin`; skipping the orphaned `RunEnd` keeps the B/E
    // stream balanced for the viewer.
    let mut depth = vec![0u32; trace.lanes];
    for e in &trace.events {
        let (t, lane, job, inst) = (e.t_us, e.lane, e.job, e.instance);
        match e.kind {
            TraceEventKind::RunBegin => {
                depth[lane as usize] += 1;
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"instance {inst}\",\"cat\":\"run\",\"ph\":\"B\",\"pid\":1,\"tid\":{lane},\"ts\":{t},\"args\":{{\"job\":{job},\"instance\":{inst}}}}}"
                );
            }
            TraceEventKind::RunEnd => {
                if depth[lane as usize] == 0 {
                    continue;
                }
                depth[lane as usize] -= 1;
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"instance {inst}\",\"cat\":\"run\",\"ph\":\"E\",\"pid\":1,\"tid\":{lane},\"ts\":{t}}}"
                );
            }
            kind => {
                let name = kind.name();
                let cat = match kind {
                    TraceEventKind::Suspended { .. }
                    | TraceEventKind::DeferredLoad { .. }
                    | TraceEventKind::ChunkAdvanced => "core",
                    TraceEventKind::JobAdmitted
                    | TraceEventKind::JobDispatched
                    | TraceEventKind::JobStarted
                    | TraceEventKind::JobFinished
                    | TraceEventKind::JobCancelled
                    | TraceEventKind::JobDeadline
                    | TraceEventKind::ChunkRetuned { .. } => "job",
                    _ => "sched",
                };
                let _ = write!(
                    out,
                    ",\n{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{lane},\"ts\":{t},\"args\":{{\"job\":{job},\"instance\":{inst}"
                );
                match kind {
                    TraceEventKind::Suspended { pc, slot } => {
                        let _ = write!(out, ",\"pc\":{pc},\"slot\":{slot}");
                    }
                    TraceEventKind::DeferredLoad { array, pc } => {
                        let _ = write!(out, ",\"array\":{array},\"pc\":{pc}");
                    }
                    TraceEventKind::Steal { from } => {
                        let _ = write!(out, ",\"from\":{from}");
                    }
                    TraceEventKind::ChunkRetuned { generation } => {
                        let _ = write!(out, ",\"generation\":{generation}");
                    }
                    _ => {}
                }
                out.push_str("}}");
            }
        }
    }
    let dropped = trace.dropped;
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":{dropped}}}}}"
    );
    out
}
