//! The recorder itself: bounded per-lane rings, drop-oldest overflow with
//! exact drop accounting, and the merged, time-ordered drain.
//!
//! One lane per worker plus one service lane. Each lane is a bounded
//! `VecDeque` behind its own mutex; on the hot path the lock is touched by
//! exactly one producer (the worker that owns the lane), so it is
//! uncontended — the mutex buys the crate-wide `forbid(unsafe_code)`
//! guarantee at the cost of one uncontended atomic pair per event, which
//! the `tracing_overhead` bench group keeps honest. When a ring is full the
//! oldest event is dropped and counted, so a long run degrades to "the most
//! recent window of events" instead of unbounded memory.

use super::events::{TraceEvent, TraceEventKind};
use super::JobTrace;
use pods_sp::exec::{ExecEvent, TraceSink};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-lane ring capacity (events).
const DEFAULT_BUFFER: usize = 4096;

/// Configuration of the flight recorder, passed to
/// `RuntimeBuilder::trace`. The environment equivalent is `PODS_TRACE=1`
/// with `PODS_TRACE_BUF` overriding the per-worker buffer size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Per-worker ring-buffer capacity in events (clamped to at least 16).
    /// When a lane overflows, the oldest events are dropped and counted in
    /// [`JobTrace::dropped`].
    pub buffer_size: usize,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            buffer_size: DEFAULT_BUFFER,
        }
    }
}

impl TraceConfig {
    /// The default configuration (4096-event rings).
    pub fn new() -> TraceConfig {
        TraceConfig::default()
    }

    /// Sets the per-worker ring capacity (clamped to at least 16).
    pub fn buffer_size(mut self, events: usize) -> TraceConfig {
        self.buffer_size = events.max(16);
        self
    }

    /// The configuration requested by the environment: `Some` when
    /// `PODS_TRACE` is set to a truthy value (anything but `0`, `false`,
    /// `off`, or empty), with `PODS_TRACE_BUF` overriding the buffer size.
    pub(crate) fn from_env() -> Option<TraceConfig> {
        let v = std::env::var("PODS_TRACE").ok()?;
        if v.is_empty()
            || v == "0"
            || v.eq_ignore_ascii_case("false")
            || v.eq_ignore_ascii_case("off")
        {
            return None;
        }
        let mut cfg = TraceConfig::default();
        if let Some(n) = std::env::var("PODS_TRACE_BUF")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            cfg = cfg.buffer_size(n);
        }
        Some(cfg)
    }
}

/// One lane's bounded ring.
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// The per-runtime flight recorder (see module docs).
pub(crate) struct TraceRecorder {
    epoch: Instant,
    cap: usize,
    /// Worker lanes `0..workers`, then one service lane.
    lanes: Vec<Mutex<Ring>>,
    next_job: AtomicU64,
}

impl TraceRecorder {
    pub(crate) fn new(workers: usize, buffer_size: usize) -> TraceRecorder {
        let cap = buffer_size.max(16);
        TraceRecorder {
            epoch: Instant::now(),
            cap,
            lanes: (0..workers.max(1) + 1)
                .map(|_| {
                    Mutex::new(Ring {
                        events: VecDeque::with_capacity(cap.min(1024)),
                        dropped: 0,
                    })
                })
                .collect(),
            next_job: AtomicU64::new(1),
        }
    }

    /// The extra lane job-lifecycle (service) events are recorded on.
    pub(crate) fn service_lane(&self) -> u32 {
        (self.lanes.len() - 1) as u32
    }

    /// Allocates the next trace-job id (ids start at 1; 0 means untraced).
    pub(crate) fn next_job_id(&self) -> u64 {
        self.next_job.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one event on `lane` (clamped to the service lane when out of
    /// range, e.g. a simulated PE count above the recorder's worker count).
    pub(crate) fn emit(&self, lane: u32, job: u64, instance: u64, kind: TraceEventKind) {
        let idx = (lane as usize).min(self.lanes.len() - 1);
        let mut ring = self.lanes[idx].lock().expect("trace lane poisoned");
        // Timestamp under the lane lock so each lane is monotonically
        // ordered even when several producers share the service lane.
        let t_us = self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64;
        if ring.events.len() >= self.cap {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TraceEvent {
            t_us,
            lane: idx as u32,
            job,
            instance,
            kind,
        });
    }

    /// Takes every recorded event, merged into one time-ordered stream,
    /// and resets the rings (and drop counters).
    pub(crate) fn drain(&self) -> JobTrace {
        self.collect(true)
    }

    /// A merged snapshot that leaves the rings intact (used to attach
    /// diagnostics to job outcomes without consuming the trace).
    pub(crate) fn peek(&self) -> JobTrace {
        self.collect(false)
    }

    fn collect(&self, take: bool) -> JobTrace {
        let mut events = Vec::new();
        let mut dropped = 0;
        for lane in &self.lanes {
            let mut ring = lane.lock().expect("trace lane poisoned");
            dropped += ring.dropped;
            if take {
                ring.dropped = 0;
                events.extend(ring.events.drain(..));
            } else {
                events.extend(ring.events.iter().copied());
            }
        }
        // Each lane is time-ordered; a stable sort on the timestamp (lane
        // as tie-break) merges them into one ordered stream.
        events.sort_by_key(|e| (e.t_us, e.lane));
        JobTrace {
            events,
            dropped,
            lanes: self.lanes.len(),
        }
    }
}

/// A cloneable per-job handle into the recorder: the recorder plus the
/// trace-job id the service assigned at admission. Travels in `JobSpec`
/// (like the completion hook) so both pooled engines can emit without
/// knowing about the service.
#[derive(Clone)]
pub(crate) struct TraceHandle {
    pub(crate) rec: Arc<TraceRecorder>,
    pub(crate) job: u64,
}

impl TraceHandle {
    /// Records one event for this job.
    pub(crate) fn emit(&self, lane: u32, instance: u64, kind: TraceEventKind) {
        self.rec.emit(lane, self.job, instance, kind);
    }

    /// The recorder's service lane.
    pub(crate) fn service_lane(&self) -> u32 {
        self.rec.service_lane()
    }
}

impl std::fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHandle")
            .field("job", &self.job)
            .finish()
    }
}

/// Adapts a [`TraceHandle`] into the exec core's [`TraceSink`], attributing
/// events to the PE lane the core reports. This is how the machine
/// simulator produces the same core events as the pooled engines: the
/// runtime boxes one of these and threads it into the simulation.
pub(crate) struct RecorderExecSink {
    pub(crate) handle: TraceHandle,
}

impl TraceSink for RecorderExecSink {
    fn exec_event(&mut self, pe: usize, ev: ExecEvent) {
        self.handle
            .emit(pe as u32, 0, TraceEventKind::from_exec(ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_drops_oldest_keeps_newest_and_counts_exactly() {
        let rec = TraceRecorder::new(1, 16);
        for i in 0..40u64 {
            rec.emit(0, 1, i, TraceEventKind::InstanceSpawned);
        }
        let trace = rec.drain();
        assert_eq!(trace.dropped, 24, "40 events into a 16-slot ring");
        assert_eq!(trace.events.len(), 16);
        // Drop-oldest: the survivors are exactly the newest 16, in order.
        let kept: Vec<u64> = trace.events.iter().map(|e| e.instance).collect();
        assert_eq!(kept, (24..40).collect::<Vec<u64>>());
    }

    #[test]
    fn drain_resets_rings_and_drop_counters() {
        let rec = TraceRecorder::new(1, 16);
        for i in 0..20u64 {
            rec.emit(0, 1, i, TraceEventKind::InstanceSpawned);
        }
        assert_eq!(rec.drain().dropped, 4);
        let second = rec.drain();
        assert!(second.is_empty());
        assert_eq!(second.dropped, 0);
    }

    #[test]
    fn peek_leaves_the_rings_intact() {
        let rec = TraceRecorder::new(2, 16);
        rec.emit(0, 1, 0, TraceEventKind::RunBegin);
        rec.emit(1, 1, 0, TraceEventKind::RunBegin);
        assert_eq!(rec.peek().len(), 2);
        assert_eq!(rec.drain().len(), 2);
        assert!(rec.drain().is_empty());
    }

    #[test]
    fn out_of_range_lanes_clamp_to_the_service_lane() {
        let rec = TraceRecorder::new(2, 16);
        rec.emit(99, 0, 0, TraceEventKind::JobAdmitted);
        let trace = rec.drain();
        assert_eq!(trace.events[0].lane, rec.service_lane());
    }

    #[test]
    fn merged_drain_is_time_ordered_across_lanes() {
        let rec = TraceRecorder::new(4, 64);
        for i in 0..40u64 {
            rec.emit((i % 5) as u32, 1, i, TraceEventKind::InstanceSpawned);
        }
        let trace = rec.drain();
        assert_eq!(trace.lanes, 5);
        assert!(trace
            .events
            .windows(2)
            .all(|w| (w[0].t_us, w[0].lane) <= (w[1].t_us, w[1].lane)));
    }

    #[test]
    fn trace_config_clamps_tiny_buffers() {
        assert_eq!(TraceConfig::new().buffer_size(3).buffer_size, 16);
        assert_eq!(TraceConfig::new().buffer_size(64).buffer_size, 64);
    }
}
