//! Slow-job diagnostics: a compact per-job breakdown derived from the
//! recorded events, answering "where did this job's time go?" — queue wait
//! vs dispatch delay vs actual run time vs blocked time.

use super::events::TraceEventKind;
use super::JobTrace;

/// A compact per-job time breakdown, computed by [`JobTrace::breakdown`]
/// and attached to pooled job outcomes (and deadline/deadlock errors) when
/// tracing is enabled.
///
/// `run_us` sums the instance-run spans of the job across all workers, so
/// on a multi-worker pool it can exceed the job's wall time; `blocked_us`
/// sums suspension→resumption gaps per instance. Both are derived from the
/// bounded rings, so a long job with dropped events underreports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct JobBreakdown {
    /// The trace-job id the breakdown describes.
    pub job: u64,
    /// Admission → dispatch (time spent waiting in the fair queue).
    pub queue_us: u64,
    /// Dispatch → first instance running on a worker.
    pub dispatch_us: u64,
    /// Total busy time: the sum of this job's instance-run spans.
    pub run_us: u64,
    /// Total blocked time: the sum of suspension → resumption gaps.
    pub blocked_us: u64,
    /// Instances spawned for the job (as far as the rings recorded).
    pub instances: u64,
    /// Tasks of this job stolen across workers.
    pub steals: u64,
    /// Firing-rule suspensions recorded for the job.
    pub suspensions: u64,
    /// Events the recorder dropped (ring overflow) while the job ran —
    /// non-zero means the other fields are lower bounds.
    pub dropped: u64,
}

impl std::fmt::Display for JobBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {}: queue {}µs, dispatch {}µs, run {}µs, blocked {}µs \
             ({} instances, {} steals, {} suspensions)",
            self.job,
            self.queue_us,
            self.dispatch_us,
            self.run_us,
            self.blocked_us,
            self.instances,
            self.steals,
            self.suspensions,
        )?;
        if self.dropped > 0 {
            write!(f, " [{} events dropped]", self.dropped)?;
        }
        Ok(())
    }
}

/// Computes the breakdown for `job` from a merged trace; `None` when the
/// trace holds no event attributed to that job.
pub(crate) fn breakdown(trace: &JobTrace, job: u64) -> Option<JobBreakdown> {
    let mut seen = false;
    let mut admitted: Option<u64> = None;
    let mut dispatched: Option<u64> = None;
    let mut first_run: Option<u64> = None;
    let mut out = JobBreakdown {
        job,
        dropped: trace.dropped,
        ..JobBreakdown::default()
    };
    // Open run spans / suspensions keyed by (lane, instance) and instance.
    let mut open_runs: Vec<(u32, u64, u64)> = Vec::new();
    let mut open_suspends: Vec<(u64, u64)> = Vec::new();
    for e in trace.events.iter().filter(|e| e.job == job) {
        seen = true;
        match e.kind {
            TraceEventKind::JobAdmitted => admitted = admitted.or(Some(e.t_us)),
            TraceEventKind::JobDispatched => dispatched = dispatched.or(Some(e.t_us)),
            TraceEventKind::RunBegin => {
                first_run = first_run.or(Some(e.t_us));
                open_runs.push((e.lane, e.instance, e.t_us));
            }
            TraceEventKind::RunEnd => {
                if let Some(i) = open_runs
                    .iter()
                    .rposition(|(l, inst, _)| *l == e.lane && *inst == e.instance)
                {
                    let (_, _, begin) = open_runs.swap_remove(i);
                    out.run_us += e.t_us.saturating_sub(begin);
                }
            }
            TraceEventKind::InstanceSpawned => out.instances += 1,
            TraceEventKind::Steal { .. } => out.steals += 1,
            TraceEventKind::Suspended { .. } => {
                out.suspensions += 1;
                open_suspends.push((e.instance, e.t_us));
            }
            TraceEventKind::Resumed => {
                if let Some(i) = open_suspends
                    .iter()
                    .position(|(inst, _)| *inst == e.instance)
                {
                    let (_, begin) = open_suspends.swap_remove(i);
                    out.blocked_us += e.t_us.saturating_sub(begin);
                }
            }
            _ => {}
        }
    }
    if !seen {
        return None;
    }
    if let (Some(a), Some(d)) = (admitted, dispatched) {
        out.queue_us = d.saturating_sub(a);
    }
    if let (Some(d), Some(r)) = (dispatched, first_run) {
        out.dispatch_us = r.saturating_sub(d);
    }
    Some(out)
}
