//! The flight recorder's event vocabulary: [`TraceEvent`] and
//! [`TraceEventKind`].
//!
//! Events are small `Copy` records — a microsecond timestamp relative to
//! the recorder's epoch, a lane (worker index, with one extra lane for the
//! service dispatcher), the job and instance they are attributed to, and a
//! kind. The kinds mirror the runtime's layers: job lifecycle events come
//! from the service, scheduling events (spawn, run spans, steals,
//! resumptions) from the pooled engines, and core events (suspension with
//! pc + slot, deferred loads with array id + pc, chunk advances) from the
//! shared instruction core via [`pods_sp::exec::TraceSink`].

use pods_sp::exec::ExecEvent;

/// What happened, with the kind-specific payload inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// The service admitted a submission (queued or fast-path dispatched).
    JobAdmitted,
    /// The dispatcher handed the job to the worker pool.
    JobDispatched,
    /// The pool accepted the job and spawned its entry instance.
    JobStarted,
    /// The job reached a terminal state (success, error, or cancellation).
    JobFinished,
    /// The job was cancelled (`JobHandle::cancel` or runtime shutdown).
    JobCancelled,
    /// The deadline watchdog expired the job.
    JobDeadline,
    /// A new SP instance was created and enqueued.
    InstanceSpawned,
    /// A worker began executing an instance (span open; closed by
    /// [`TraceEventKind::RunEnd`] on the same lane).
    RunBegin,
    /// The worker stopped executing the instance: it finished, suspended,
    /// or was stopped (span close).
    RunEnd,
    /// The firing rule suspended the instance at `pc` on absent `slot`
    /// (emitted by the shared exec core).
    Suspended {
        /// Program counter of the blocked instruction.
        pc: u32,
        /// The absent operand slot.
        slot: u32,
    },
    /// A split-phase array read was deferred (emitted by the exec core).
    DeferredLoad {
        /// The array whose element was absent.
        array: u64,
        /// Program counter of the deferring load.
        pc: u32,
    },
    /// A suspended instance was woken by the arrival of its operand.
    Resumed,
    /// The worker on this lane stole a task from worker `from`.
    Steal {
        /// The victim worker the task was taken from.
        from: u32,
    },
    /// The chunk driver advanced a chunked instance in place (emitted by
    /// the exec core).
    ChunkAdvanced,
    /// Adaptive grain control re-partitioned the program at a coarser
    /// chunk (`generation` retunes applied so far).
    ChunkRetuned {
        /// The autotune generation after this retune.
        generation: u32,
    },
}

impl TraceEventKind {
    /// Stable lower-case name, used for Chrome-trace event names.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::JobAdmitted => "job-admitted",
            TraceEventKind::JobDispatched => "job-dispatched",
            TraceEventKind::JobStarted => "job-started",
            TraceEventKind::JobFinished => "job-finished",
            TraceEventKind::JobCancelled => "job-cancelled",
            TraceEventKind::JobDeadline => "job-deadline",
            TraceEventKind::InstanceSpawned => "spawn",
            TraceEventKind::RunBegin => "run",
            TraceEventKind::RunEnd => "run",
            TraceEventKind::Suspended { .. } => "suspend",
            TraceEventKind::DeferredLoad { .. } => "deferred-load",
            TraceEventKind::Resumed => "resume",
            TraceEventKind::Steal { .. } => "steal",
            TraceEventKind::ChunkAdvanced => "chunk-advance",
            TraceEventKind::ChunkRetuned { .. } => "chunk-retune",
        }
    }

    /// Maps a core-level [`ExecEvent`] into the recorder's vocabulary.
    pub(crate) fn from_exec(ev: ExecEvent) -> TraceEventKind {
        match ev {
            ExecEvent::Blocked { pc, slot } => TraceEventKind::Suspended {
                pc: pc as u32,
                slot: slot.0 as u32,
            },
            ExecEvent::DeferredLoad { array, pc } => TraceEventKind::DeferredLoad {
                array: array.0 as u64,
                pc: pc as u32,
            },
            ExecEvent::ChunkAdvanced => TraceEventKind::ChunkAdvanced,
        }
    }
}

/// One recorded flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Microseconds since the recorder's epoch (the runtime's build time).
    pub t_us: u64,
    /// The lane the event was recorded on: worker index for pool/core
    /// events, the extra service lane for job-lifecycle events.
    pub lane: u32,
    /// The traced job this event belongs to (`0` = not job-attributed).
    pub job: u64,
    /// The SP instance involved (`0` when not instance-scoped).
    pub instance: u64,
    /// What happened.
    pub kind: TraceEventKind,
}
