//! The flight recorder: low-overhead, per-worker event tracing across
//! every layer of the runtime.
//!
//! Tracing is **off by default** and costs ~nothing while off: the exec
//! core's [`pods_sp::exec::ExecCtx::trace_sink`] hook defaults to a
//! constant `None` (monomorphized away for engines that never trace), and
//! the pooled engines guard every emission site with one branch on an
//! `Option` carried by the job. Enable it with
//! [`crate::RuntimeBuilder::trace`] or `PODS_TRACE=1` (per-worker ring
//! size via `PODS_TRACE_BUF`); the `tracing_overhead` bench group verifies
//! the disabled path stays within noise of no recorder at all.
//!
//! # Anatomy
//!
//! * [`events`](self) — [`TraceEvent`] / [`TraceEventKind`]: the closed
//!   event vocabulary, spanning the service (job lifecycle), the pooled
//!   schedulers (spawns, run spans, steals, resumptions), and the shared
//!   exec core (suspension pc + slot, deferred loads with array id, chunk
//!   advances) — the machine simulator emits the same core events through
//!   the same [`pods_sp::exec::TraceSink`] hook.
//! * `recorder` — [`TraceConfig`] and the bounded per-lane rings
//!   (drop-oldest, exact drop counting).
//! * `chrome` — [`JobTrace::chrome_trace`], the Chrome/Perfetto
//!   `trace_event` JSON serializer.
//! * `diag` — [`JobBreakdown`], the slow-job diagnostic attached to pooled
//!   outcomes and deadline/deadlock errors.
//!
//! ```
//! use pods::{compile, EngineKind, Runtime, TraceConfig, Value};
//!
//! let program = compile(
//!     "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i; } return a; }",
//! )?;
//! let runtime = Runtime::builder(EngineKind::Native)
//!     .workers(2)
//!     .trace(TraceConfig::new())
//!     .build();
//! runtime.run(&program, &[Value::Int(32)])?;
//! let trace = runtime.take_trace();
//! assert!(!trace.is_empty());
//! let json = trace.chrome_trace(); // load this in Perfetto / chrome://tracing
//! assert!(json.starts_with("{\"traceEvents\":"));
//! # Ok::<(), pods::PodsError>(())
//! ```

mod chrome;
mod diag;
mod events;
mod recorder;

pub use diag::JobBreakdown;
pub use events::{TraceEvent, TraceEventKind};
pub use recorder::TraceConfig;
pub(crate) use recorder::{RecorderExecSink, TraceHandle, TraceRecorder};

/// Every event a runtime's flight recorder captured, merged across lanes
/// into one time-ordered stream. Produced by [`crate::Runtime::take_trace`]
/// (which drains the recorder — a second call returns only newer events).
#[derive(Debug, Clone, Default)]
pub struct JobTrace {
    /// The events, ordered by timestamp (lane index as tie-break).
    pub events: Vec<TraceEvent>,
    /// Events lost to ring overflow since the last drain. Non-zero means
    /// the stream shows the most recent window, not the whole run.
    pub dropped: u64,
    /// Number of lanes (worker count + 1 service lane).
    pub lanes: usize,
}

impl JobTrace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events (tracing disabled, or nothing ran
    /// since the last drain).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serializes the trace as Chrome/Perfetto `trace_event` JSON: one lane
    /// per worker (plus a service lane), `B`/`E` spans for instance runs,
    /// instants for spawns, steals, suspensions, deferred loads, and job
    /// lifecycle. Load the string (saved as a `.json` file) in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    pub fn chrome_trace(&self) -> String {
        chrome::render(self)
    }

    /// The per-job time breakdown for `job` (trace-job ids are assigned at
    /// admission, starting from 1), or `None` when no event of that job was
    /// recorded.
    pub fn breakdown(&self, job: u64) -> Option<JobBreakdown> {
        diag::breakdown(self, job)
    }
}
