//! The unified error type of the top-level PODS library.

use pods_baseline::BaselineError;
use pods_idlang::CompileError;
use pods_machine::SimulationError;
use pods_sp::TranslateError;

/// Any error the PODS pipeline can produce, from parsing the declarative
/// source all the way to executing it on any engine.
#[derive(Debug, Clone, PartialEq)]
pub enum PodsError {
    /// The source program failed to compile (lexing, parsing, or semantic
    /// analysis).
    Compile(CompileError),
    /// The HIR could not be translated into Subcompact Processes.
    Translate(TranslateError),
    /// Execution failed (deadlock, run-time error, event/task limit) — on
    /// the machine simulator or the native thread-pool engine, which share
    /// the error vocabulary.
    Simulation(SimulationError),
    /// The sequential interpreter (or the cost model driven by it) failed.
    Baseline(BaselineError),
    /// No engine is registered under the requested name.
    UnknownEngine {
        /// The name that failed to resolve.
        name: String,
    },
    /// A [`crate::PreparedProgram`] was submitted to a runtime whose
    /// partitioning configuration differs from the one it was prepared
    /// with (worker counts may differ freely — partitioning is
    /// machine-size-independent — but the partitioner switches must
    /// match).
    PreparedMismatch,
    /// The program has no `main` entry function.
    MissingEntry,
    /// The number of `main` arguments does not match the declaration.
    ArgumentMismatch {
        /// Parameters declared by `main`.
        expected: usize,
        /// Arguments supplied to the run.
        got: usize,
    },
}

impl std::fmt::Display for PodsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PodsError::Compile(e) => write!(f, "{e}"),
            PodsError::Translate(e) => write!(f, "{e}"),
            PodsError::Simulation(e) => write!(f, "{e}"),
            PodsError::Baseline(e) => write!(f, "{e}"),
            PodsError::UnknownEngine { name } => {
                write!(
                    f,
                    "unknown engine `{name}` (valid engines: {}; aliases: {})",
                    crate::engine::ENGINE_NAMES.join(", "),
                    crate::engine::EngineKind::ALL
                        .into_iter()
                        .flat_map(|k| k.aliases().iter().skip(1).copied())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            PodsError::PreparedMismatch => write!(
                f,
                "prepared program does not match this runtime's partition \
                 configuration; call `Runtime::prepare` on this runtime (or \
                 pass the raw compiled program and let the runtime's cache \
                 prepare it)"
            ),
            PodsError::MissingEntry => write!(f, "program has no `main` function"),
            PodsError::ArgumentMismatch { expected, got } => write!(
                f,
                "`main` takes {expected} argument(s) but {got} were supplied"
            ),
        }
    }
}

impl std::error::Error for PodsError {}

impl From<CompileError> for PodsError {
    fn from(value: CompileError) -> Self {
        PodsError::Compile(value)
    }
}

impl From<TranslateError> for PodsError {
    fn from(value: TranslateError) -> Self {
        PodsError::Translate(value)
    }
}

impl From<SimulationError> for PodsError {
    fn from(value: SimulationError) -> Self {
        PodsError::Simulation(value)
    }
}

impl From<BaselineError> for PodsError {
    fn from(value: BaselineError) -> Self {
        PodsError::Baseline(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<PodsError> = vec![
            PodsError::MissingEntry,
            PodsError::ArgumentMismatch {
                expected: 2,
                got: 1,
            },
            PodsError::Simulation(SimulationError::Runtime("boom".into())),
            PodsError::Baseline(BaselineError::Runtime("boom".into())),
            PodsError::UnknownEngine {
                name: "warp".into(),
            },
            PodsError::PreparedMismatch,
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_from_stage_errors() {
        let ce = pods_idlang::compile("def main() { return $; }").unwrap_err();
        let pe: PodsError = ce.into();
        assert!(matches!(pe, PodsError::Compile(_)));
    }
}
