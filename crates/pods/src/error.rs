//! The unified error type of the top-level PODS library.

use pods_baseline::BaselineError;
use pods_idlang::CompileError;
use pods_machine::SimulationError;
use pods_sp::TranslateError;

/// Any error the PODS pipeline can produce, from parsing the declarative
/// source all the way to executing it on any engine.
#[derive(Debug, Clone, PartialEq)]
pub enum PodsError {
    /// The source program failed to compile (lexing, parsing, or semantic
    /// analysis).
    Compile(CompileError),
    /// The HIR could not be translated into Subcompact Processes.
    Translate(TranslateError),
    /// Execution failed (deadlock, run-time error, event/task limit) — on
    /// the machine simulator or the native thread-pool engine, which share
    /// the error vocabulary.
    Simulation(SimulationError),
    /// The sequential interpreter (or the cost model driven by it) failed.
    Baseline(BaselineError),
    /// No engine is registered under the requested name.
    UnknownEngine {
        /// The name that failed to resolve.
        name: String,
    },
    /// A [`crate::PreparedProgram`] was submitted to a runtime whose
    /// partitioning configuration differs from the one it was prepared
    /// with (worker counts may differ freely — partitioning is
    /// machine-size-independent — but the partitioner switches must
    /// match).
    PreparedMismatch,
    /// The program has no `main` entry function.
    MissingEntry,
    /// The number of `main` arguments does not match the declaration.
    ArgumentMismatch {
        /// Parameters declared by `main`.
        expected: usize,
        /// Arguments supplied to the run.
        got: usize,
    },
    /// The runtime's bounded admission queue was full when the job arrived.
    ///
    /// Returned by `Runtime::try_submit` immediately and by
    /// `Runtime::submit_timeout` once the timeout elapses without a slot
    /// freeing up. Only runtimes built with a non-zero
    /// `RuntimeBuilder::admission_capacity` ever produce it. The rejected
    /// job never entered the queue; resubmit later or use the blocking
    /// `Runtime::submit` to wait for space.
    QueueFull {
        /// The configured admission capacity the queue was at.
        capacity: usize,
        /// Jobs queued (not yet dispatched to the pool) at rejection time.
        depth: usize,
    },
    /// The job outlived the deadline configured via
    /// `RuntimeBuilder::deadline` and was cancelled.
    ///
    /// A queued job past its deadline is cancelled before ever reaching the
    /// pool; a running job is stopped at its next instruction boundary via
    /// the same stop-flag machinery that drop-cancellation uses. Either way
    /// `JobHandle::wait` surfaces this variant instead of hanging.
    DeadlineExceeded {
        /// The deadline the job was admitted under.
        deadline: std::time::Duration,
        /// Where the job's time went (queue wait, dispatch, run, blocked),
        /// rendered from the flight recorder. `None` when tracing was off.
        breakdown: Option<String>,
    },
}

impl std::fmt::Display for PodsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PodsError::Compile(e) => write!(f, "{e}"),
            PodsError::Translate(e) => write!(f, "{e}"),
            PodsError::Simulation(e) => write!(f, "{e}"),
            PodsError::Baseline(e) => write!(f, "{e}"),
            PodsError::UnknownEngine { name } => {
                write!(
                    f,
                    "unknown engine `{name}` (valid engines: {}; aliases: {})",
                    crate::engine::ENGINE_NAMES.join(", "),
                    crate::engine::EngineKind::ALL
                        .into_iter()
                        .flat_map(|k| k.aliases().iter().skip(1).copied())
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            }
            PodsError::PreparedMismatch => write!(
                f,
                "prepared program does not match this runtime's partition \
                 configuration; call `Runtime::prepare` on this runtime (or \
                 pass the raw compiled program and let the runtime's cache \
                 prepare it)"
            ),
            PodsError::MissingEntry => write!(f, "program has no `main` function"),
            PodsError::ArgumentMismatch { expected, got } => write!(
                f,
                "`main` takes {expected} argument(s) but {got} were supplied"
            ),
            PodsError::QueueFull { capacity, depth } => write!(
                f,
                "admission queue is full: {depth} job(s) waiting at capacity \
                 {capacity}; retry later, use the blocking `submit`, or raise \
                 `RuntimeBuilder::admission_capacity`"
            ),
            PodsError::DeadlineExceeded {
                deadline,
                breakdown,
            } => {
                write!(
                    f,
                    "job cancelled: deadline of {deadline:?} exceeded before \
                     the job completed"
                )?;
                if let Some(b) = breakdown {
                    write!(f, " ({b})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PodsError {}

impl From<CompileError> for PodsError {
    fn from(value: CompileError) -> Self {
        PodsError::Compile(value)
    }
}

impl From<TranslateError> for PodsError {
    fn from(value: TranslateError) -> Self {
        PodsError::Translate(value)
    }
}

impl From<SimulationError> for PodsError {
    fn from(value: SimulationError) -> Self {
        PodsError::Simulation(value)
    }
}

impl From<BaselineError> for PodsError {
    fn from(value: BaselineError) -> Self {
        PodsError::Baseline(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<PodsError> = vec![
            PodsError::MissingEntry,
            PodsError::ArgumentMismatch {
                expected: 2,
                got: 1,
            },
            PodsError::Simulation(SimulationError::Runtime("boom".into())),
            PodsError::Baseline(BaselineError::Runtime("boom".into())),
            PodsError::UnknownEngine {
                name: "warp".into(),
            },
            PodsError::PreparedMismatch,
            PodsError::QueueFull {
                capacity: 8,
                depth: 8,
            },
            PodsError::DeadlineExceeded {
                deadline: std::time::Duration::from_millis(250),
                breakdown: None,
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn queue_full_display_round_trips_its_fields() {
        let e = PodsError::QueueFull {
            capacity: 32,
            depth: 17,
        };
        let msg = e.to_string();
        assert!(msg.contains("17"), "depth missing from: {msg}");
        assert!(msg.contains("32"), "capacity missing from: {msg}");
        assert!(msg.contains("admission queue"), "context missing: {msg}");
    }

    #[test]
    fn deadline_exceeded_display_round_trips_the_deadline() {
        let e = PodsError::DeadlineExceeded {
            deadline: std::time::Duration::from_millis(250),
            breakdown: None,
        };
        let msg = e.to_string();
        assert!(msg.contains("250ms"), "deadline missing from: {msg}");
        // Drop-cancellation tests and callers match on "cancelled".
        assert!(msg.contains("cancelled"), "cancel marker missing: {msg}");
    }

    #[test]
    fn deadline_exceeded_display_appends_the_breakdown() {
        let e = PodsError::DeadlineExceeded {
            deadline: std::time::Duration::from_millis(250),
            breakdown: Some("job 3: queue 10µs, dispatch 2µs".into()),
        };
        let msg = e.to_string();
        assert!(msg.contains("250ms"), "deadline missing from: {msg}");
        assert!(msg.contains("queue 10µs"), "breakdown missing: {msg}");
    }

    #[test]
    fn conversions_from_stage_errors() {
        let ce = pods_idlang::compile("def main() { return $; }").unwrap_err();
        let pe: PodsError = ce.into();
        assert!(matches!(pe, PodsError::Compile(_)));
    }
}
