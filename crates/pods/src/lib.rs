//! PODS — a Process-Oriented Dataflow System.
//!
//! This crate is the top-level library of the reproduction of *Exploiting
//! Iteration-Level Parallelism in Dataflow Programs* (Bic, Roy, Nagel). It
//! wires together the full pipeline of the paper's Figure 3:
//!
//! 1. **`idlang` front end** — a small Id-Nouveau-like declarative,
//!    single-assignment language ([`pods_idlang`]),
//! 2. **dataflow graphs and loop analysis** ([`pods_dataflow`]),
//! 3. **the PODS Translator** — each function and loop level becomes a
//!    Subcompact Process ([`pods_sp`]),
//! 4. **the PODS Partitioner** — distributing allocate, `LD` operators, and
//!    Range Filters ([`pods_partition`]),
//! 5. **the machine simulator** — an instruction-level model of an
//!    iPSC/2-like distributed-memory multiprocessor with I-structure memory
//!    ([`pods_machine`], [`pods_istructure`]).
//!
//! # Quick start
//!
//! Compile once, then execute any number of times on a persistent
//! [`Runtime`] — the native runtime keeps one work-stealing worker pool
//! alive across runs, so per-run cost is a job submission, not a thread
//! spawn:
//!
//! ```
//! use pods::{compile, EngineKind, Runtime, Value};
//!
//! let program = compile(
//!     "def main(n) {
//!          a = matrix(n, n);
//!          for i = 0 to n - 1 {
//!              for j = 0 to n - 1 { a[i, j] = i * n + j; }
//!          }
//!          return a;
//!      }",
//! )?;
//! let runtime = Runtime::builder(EngineKind::Sim).workers(4).build();
//! let outcome = runtime.run(&program, &[Value::Int(8)])?;
//! assert!(outcome.returned_array().unwrap().is_complete());
//!
//! // Batched submission: many jobs share one native pool concurrently.
//! let native = Runtime::builder(EngineKind::Native).workers(2).build();
//! let args8: &[Value] = &[Value::Int(8)];
//! let args12: &[Value] = &[Value::Int(12)];
//! for outcome in native.run_many(&[(&program, args8), (&program, args12)]) {
//!     assert!(outcome?.returned_array().unwrap().is_complete());
//! }
//! # Ok::<(), pods::PodsError>(())
//! ```
//!
//! The pre-`Runtime` entry points ([`CompiledProgram::run`],
//! [`CompiledProgram::run_on`], [`compile_and_run_on`]) remain as thin
//! compatibility wrappers; each call builds a throwaway runtime.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
mod error;
mod pipeline;
pub mod report;
mod runtime;
mod service;
pub mod trace;

pub use engine::{
    engine_by_name, AsyncCoopEngine, AsyncStats, Engine, EngineKind, EngineOutcome, EngineStats,
    NativeParallelEngine, NativeStats, PrEstimateEngine, SequentialEngine, SimEngine, ENGINE_NAMES,
};
pub use error::PodsError;
pub use pipeline::{
    compile, compile_and_run, compile_and_run_on, speedup_sweep, speedup_sweep_on,
    speedup_sweep_with, CompiledProgram, RunOptions, RunOutcome, SpeedupPoint,
};
pub use runtime::{JobHandle, PreparedProgram, ProgramSource, Runtime, RuntimeBuilder};
pub use service::{ClientId, ServiceMetrics};
pub use trace::{JobBreakdown, JobTrace, TraceConfig, TraceEvent, TraceEventKind};

// Re-export the pieces a downstream user needs to drive runs and interpret
// results without depending on every sub-crate explicitly.
pub use pods_baseline::{BaselineError, PrModel, PrPoint, SequentialRun};
pub use pods_istructure::{ArrayId, ArrayShape, SharedArrayStore, StoreStats, Value};
pub use pods_machine::{
    ArraySnapshot, MachineConfig, SimulationError, SimulationResult, SimulationStats, TimingModel,
    Unit,
};
pub use pods_partition::{ChunkPolicy, LoopDecision, PartitionConfig, PartitionReport};
