//! Text rendering of experiment results (utilization and speed-up tables).
//!
//! The benchmark harness uses these helpers to print the rows behind the
//! paper's figures in a uniform, easily diffable format.

use crate::pipeline::SpeedupPoint;
use pods_machine::{SimulationStats, Unit};

/// Renders a functional-unit utilization row for one machine size
/// (Figure 8 of the paper).
pub fn utilization_row(pes: usize, stats: &SimulationStats) -> String {
    let mut cells: Vec<String> = vec![format!("{pes:>4}")];
    for unit in Unit::ALL {
        cells.push(format!("{:>7.2}%", stats.utilization(unit) * 100.0));
    }
    cells.join(" | ")
}

/// Header matching [`utilization_row`].
pub fn utilization_header() -> String {
    let mut cells: Vec<String> = vec![" PEs".to_string()];
    for unit in Unit::ALL {
        cells.push(format!("{:>8}", unit.label()));
    }
    cells.join(" | ")
}

/// Renders a speed-up table (Figure 10 of the paper): one row per PE count
/// with elapsed time, speed-up, and EU utilization (Figure 9).
pub fn speedup_table(label: &str, points: &[SpeedupPoint]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{label}");
    let _ = writeln!(
        out,
        "{:>4} | {:>14} | {:>8} | {:>8}",
        "PEs", "elapsed (ms)", "speedup", "EU util"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:>4} | {:>14.3} | {:>8.2} | {:>7.1}%",
            p.pes,
            p.elapsed_us / 1000.0,
            p.speedup,
            p.eu_utilization * 100.0
        );
    }
    out
}

/// Formats a comparison of two elapsed times (the §5.3.4 efficiency
/// comparison).
pub fn efficiency_comparison(label_a: &str, us_a: f64, label_b: &str, us_b: f64) -> String {
    let ratio = if us_b > 0.0 { us_a / us_b } else { 0.0 };
    format!(
        "{label_a}: {:.3} ms\n{label_b}: {:.3} ms\nratio ({label_a} / {label_b}): {ratio:.2}x",
        us_a / 1000.0,
        us_b / 1000.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render_expected_columns() {
        assert!(utilization_header().contains("EU"));
        let stats = SimulationStats::new(2);
        let row = utilization_row(4, &stats);
        assert!(row.starts_with("   4"));
        assert_eq!(row.matches('|').count(), 5);

        let points = vec![
            SpeedupPoint {
                pes: 1,
                elapsed_us: 1000.0,
                speedup: 1.0,
                eu_utilization: 0.7,
            },
            SpeedupPoint {
                pes: 2,
                elapsed_us: 550.0,
                speedup: 1.81,
                eu_utilization: 0.6,
            },
        ];
        let table = speedup_table("SIMPLE 16x16", &points);
        assert!(table.contains("SIMPLE 16x16"));
        assert!(table.contains("1.81"));

        let cmp = efficiency_comparison("PODS", 1720.0 * 1000.0, "sequential C", 900.0 * 1000.0);
        assert!(cmp.contains("1.91x"));
    }
}
