//! The end-to-end PODS pipeline: source → HIR → dataflow graphs → SPs →
//! partitioned SPs → execution (paper Figure 3).
//!
//! Execution goes through the [`crate::Runtime`] layer: the historical
//! simulator entry points ([`CompiledProgram::run`], [`compile_and_run`],
//! [`speedup_sweep`]) are thin wrappers over [`SimEngine`], and the
//! `*_on` variants parse the name into an [`EngineKind`] and run on a
//! throwaway [`crate::Runtime`]. New code should build one `Runtime` and
//! reuse it — the native engine's worker pool is only amortised that way.

use crate::engine::{Engine, EngineKind, EngineOutcome, EngineStats, SimEngine};
use crate::error::PodsError;
use crate::runtime::Runtime;
use pods_dataflow::{analyze_loops, build_program, DataflowProgram, LoopInfo};
use pods_idlang::HirProgram;
use pods_istructure::Value;
use pods_machine::{MachineConfig, SimulationResult};
use pods_partition::{partition_with_chunk_boost, PartitionConfig, PartitionReport};
use pods_sp::{translate, SpProgram};

/// Options controlling a PODS run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Number of processing elements.
    pub num_pes: usize,
    /// Array page size in elements (paper default: 32).
    pub page_size: usize,
    /// Enable the software cache for remote pages.
    pub remote_page_cache: bool,
    /// Partitioner configuration (distribution, Range Filters, LCD
    /// handling).
    pub partition: PartitionConfig,
    /// Safety limit on run-time work (0 = unlimited). Every engine
    /// enforces it against its own unit of progress: `sim` counts
    /// simulation events, `native` counts task executions, and `seq` / `pr`
    /// count interpreted statements. Exhaustion is always reported as
    /// [`pods_machine::SimulationError::EventLimitExceeded`].
    pub max_events: u64,
    /// Native engine only: maximum number of I-structure wake-ups a worker
    /// buffers before delivering them in one scheduler transaction
    /// (mirroring the paper's ~20-token routing batches). `1` delivers
    /// after every write (unbatched); values are clamped to at least 1.
    /// Buffers are always force-flushed at task boundaries, so batching
    /// never delays a wake-up past the point where the scheduler could
    /// mistake the job for idle. Ignored by the modelled engines.
    pub delivery_batch: usize,
    /// Pooled engines only: wall-clock budget per job, measured from
    /// submission. A job still queued when its deadline passes is cancelled
    /// before dispatch; a running job is stopped at its next instruction
    /// boundary. Either way `JobHandle::wait` reports
    /// [`PodsError::DeadlineExceeded`]. `None` (the default) means no
    /// deadline. The modelled engines run eagerly inside `submit` and
    /// ignore it.
    pub deadline: Option<std::time::Duration>,
    /// Run the prepare-time specialization pass
    /// ([`pods_sp::specialize_program`]) when partitioning: operand fetches
    /// pre-resolved, straight-line runs fused into super-ops the driver
    /// executes directly. Defaults to the `PODS_SPECIALIZE` environment
    /// variable (`0` disables, anything else — including unset — enables);
    /// [`crate::RuntimeBuilder::specialize`] overrides per runtime. The
    /// `seq` / `pr` engines interpret the HIR and ignore it.
    pub specialize: bool,
}

/// Reads the `PODS_SPECIALIZE` escape hatch: specialization is on unless
/// the variable is exactly `"0"`.
fn specialize_from_env() -> bool {
    !matches!(std::env::var("PODS_SPECIALIZE").as_deref(), Ok("0"))
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            num_pes: 1,
            page_size: 32,
            remote_page_cache: true,
            partition: PartitionConfig::default(),
            max_events: 0,
            delivery_batch: 16,
            deadline: None,
            specialize: specialize_from_env(),
        }
    }
}

impl RunOptions {
    /// Options for a machine with `num_pes` PEs and paper defaults otherwise.
    pub fn with_pes(num_pes: usize) -> Self {
        RunOptions {
            num_pes: num_pes.max(1),
            ..RunOptions::default()
        }
    }

    /// The corresponding machine configuration.
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            num_pes: self.num_pes,
            page_size: self.page_size,
            remote_page_cache: self.remote_page_cache,
            timing: Default::default(),
            max_events: self.max_events,
        }
    }
}

/// A compiled PODS program, ready to be partitioned and run on any machine
/// size.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Process-unique identity assigned at [`compile`] time; clones share
    /// it (their pipeline stages are identical by construction). This is
    /// the interning key for [`crate::Runtime`]'s prepared-program cache.
    identity: u64,
    hir: HirProgram,
    graph: DataflowProgram,
    loops: Vec<LoopInfo>,
    sp: SpProgram,
}

/// Source of [`CompiledProgram::identity`] values.
static NEXT_PROGRAM_IDENTITY: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl CompiledProgram {
    /// The program's process-unique identity (shared by clones). Two
    /// programs compiled separately — even from identical source — get
    /// distinct identities; use [`pods_sp::SpProgram::fingerprint`] for
    /// structural comparison.
    pub fn identity(&self) -> u64 {
        self.identity
    }

    /// The lowered HIR.
    pub fn hir(&self) -> &HirProgram {
        &self.hir
    }

    /// The dataflow graphs (one code block per function and loop level).
    pub fn graph(&self) -> &DataflowProgram {
        &self.graph
    }

    /// The loop-nest analysis (LCDs, distribution targets).
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// The untransformed SP program (before partitioning).
    pub fn sp_program(&self) -> &SpProgram {
        &self.sp
    }

    /// Number of parameters of `main`.
    pub fn main_arity(&self) -> Option<usize> {
        self.hir.entry().map(|f| f.params.len())
    }

    /// Partitions the SP program for the given options and returns it
    /// together with the partition report.
    pub fn partitioned(&self, options: &RunOptions) -> (SpProgram, PartitionReport) {
        self.partitioned_with_chunk_boost(options, 1)
    }

    /// [`Self::partitioned`] with a grain multiplier on auto-sized chunks
    /// (the runtime's adaptive grain control re-prepares programs through
    /// this; `boost` 1 is the plain path and `Fixed` policies ignore it).
    pub fn partitioned_with_chunk_boost(
        &self,
        options: &RunOptions,
        boost: usize,
    ) -> (SpProgram, PartitionReport) {
        let mut program = self.sp.clone();
        let mut report =
            partition_with_chunk_boost(&mut program, &self.loops, &options.partition, boost);
        if options.specialize {
            // Specialization runs after partitioning so the plans cover the
            // partitioned code exactly (RF prologues, chunked bodies). Every
            // prepare path — explicit, cached auto-prepare, grain retune —
            // funnels through here, so a plan is never stale.
            let summary = pods_sp::specialize_program(&mut program);
            report.specialized_templates = summary.specialized_templates;
            report.fused_consts = summary.fused_consts;
            report.super_ops = summary.super_ops;
        }
        (program, report)
    }

    /// Runs the program on the simulated machine (the [`SimEngine`] path,
    /// kept as the historical simulator-shaped API).
    ///
    /// # Errors
    ///
    /// Returns [`PodsError::MissingEntry`] / [`PodsError::ArgumentMismatch`]
    /// for malformed invocations and [`PodsError::Simulation`] for run-time
    /// failures.
    pub fn run(&self, args: &[Value], options: &RunOptions) -> Result<RunOutcome, PodsError> {
        let outcome = SimEngine.run(self, args, options)?;
        let EngineOutcome {
            return_value,
            arrays,
            stats: EngineStats::Simulated { stats, partition },
            ..
        } = outcome
        else {
            unreachable!("SimEngine always produces Simulated stats");
        };
        Ok(RunOutcome {
            result: SimulationResult {
                return_value,
                arrays,
                stats,
            },
            partition,
        })
    }

    /// Runs the program on the engine registered under `engine` (`"sim"`,
    /// `"seq"`, `"pr"`, `"native"`), returning the uniform
    /// [`EngineOutcome`].
    ///
    /// Compatibility wrapper: parses the name into an [`EngineKind`] and
    /// runs on a throwaway [`Runtime`] — for `"native"` that means a fresh
    /// worker pool per call. Build one [`Runtime`] and reuse it to amortise
    /// the pool across runs.
    ///
    /// # Errors
    ///
    /// Returns [`PodsError::UnknownEngine`] for unregistered names, plus
    /// whatever the engine itself reports.
    pub fn run_on(
        &self,
        engine: &str,
        args: &[Value],
        options: &RunOptions,
    ) -> Result<EngineOutcome, PodsError> {
        let kind: EngineKind = engine.parse()?;
        let start = std::time::Instant::now();
        let runtime = Runtime::with_options(kind, options.clone());
        let mut outcome = runtime.run(self, args)?;
        if kind.is_pooled() {
            // The throwaway runtime's pool spawn is part of this call's cost;
            // report it, as the cold path always has (the modelled engines
            // measure their own wall-clock and have no pool).
            outcome.wall_us = start.elapsed().as_secs_f64() * 1e6;
        }
        Ok(outcome)
    }
}

/// The outcome of a PODS run: the simulation result plus the partitioning
/// decisions that produced it.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Final arrays, return value, and machine statistics.
    pub result: SimulationResult,
    /// The partitioner's per-loop decisions.
    pub partition: PartitionReport,
}

impl RunOutcome {
    /// Elapsed simulated time in microseconds.
    pub fn elapsed_us(&self) -> f64 {
        self.result.elapsed_us()
    }

    /// Elapsed simulated time in seconds.
    pub fn elapsed_seconds(&self) -> f64 {
        self.result.stats.elapsed_seconds()
    }
}

/// Compiles `source` through the full front half of the pipeline (compile,
/// graph construction, loop analysis, SP translation).
///
/// # Errors
///
/// Returns a [`PodsError`] describing the first failing stage.
pub fn compile(source: &str) -> Result<CompiledProgram, PodsError> {
    let hir = pods_idlang::compile(source)?;
    let graph = build_program(&hir);
    let loops = analyze_loops(&hir);
    let sp = translate(&hir)?;
    Ok(CompiledProgram {
        identity: NEXT_PROGRAM_IDENTITY.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        hir,
        graph,
        loops,
        sp,
    })
}

/// Convenience wrapper: compile and run on the machine simulator in one
/// call.
///
/// # Errors
///
/// Returns a [`PodsError`] from whichever stage fails.
pub fn compile_and_run(
    source: &str,
    args: &[Value],
    options: &RunOptions,
) -> Result<RunOutcome, PodsError> {
    compile(source)?.run(args, options)
}

/// Convenience wrapper: compile and run on a named engine in one call
/// (a throwaway [`Runtime`] per call — see [`CompiledProgram::run_on`]).
///
/// # Errors
///
/// Returns a [`PodsError`] from whichever stage fails, including
/// [`PodsError::UnknownEngine`] for unregistered engine names.
pub fn compile_and_run_on(
    engine: &str,
    source: &str,
    args: &[Value],
    options: &RunOptions,
) -> Result<EngineOutcome, PodsError> {
    compile(source)?.run_on(engine, args, options)
}

/// A measured point of a speed-up curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupPoint {
    /// Number of PEs.
    pub pes: usize,
    /// Elapsed simulated time in microseconds.
    pub elapsed_us: f64,
    /// Speed-up relative to the single-PE run of the same sweep.
    pub speedup: f64,
    /// Average Execution-Unit utilization.
    pub eu_utilization: f64,
}

/// Runs the program once per PE count on the machine simulator and reports
/// elapsed simulated time, speed-up relative to the first (usually
/// single-PE) configuration, and EU utilization — the measurements behind
/// Figures 9 and 10 of the paper.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn speedup_sweep(
    program: &CompiledProgram,
    args: &[Value],
    pe_counts: &[usize],
    base_options: &RunOptions,
) -> Result<Vec<SpeedupPoint>, PodsError> {
    speedup_sweep_with(&SimEngine, program, args, pe_counts, base_options)
}

/// [`speedup_sweep`] on the engine registered under `engine`. With
/// `"native"` the sweep measures real hardware-thread speed-up (wall-clock
/// per worker count); with `"sim"` / `"pr"` it measures modelled speed-up —
/// one code path for both curves.
///
/// # Errors
///
/// Returns [`PodsError::UnknownEngine`] for unregistered names and
/// propagates the first failing run.
pub fn speedup_sweep_on(
    engine: &str,
    program: &CompiledProgram,
    args: &[Value],
    pe_counts: &[usize],
    base_options: &RunOptions,
) -> Result<Vec<SpeedupPoint>, PodsError> {
    let kind: EngineKind = engine.parse()?;
    speedup_sweep_with(kind.engine(), program, args, pe_counts, base_options)
}

/// [`speedup_sweep`] generalised over any [`Engine`]. Each point compares
/// the engine's preferred clock ([`EngineOutcome::elapsed_us`]: modelled
/// time where the engine models one, wall-clock otherwise) against the
/// sweep's first configuration.
///
/// # Errors
///
/// Propagates the first failing run.
pub fn speedup_sweep_with(
    engine: &dyn Engine,
    program: &CompiledProgram,
    args: &[Value],
    pe_counts: &[usize],
    base_options: &RunOptions,
) -> Result<Vec<SpeedupPoint>, PodsError> {
    let mut points = Vec::new();
    let mut base_time = None;
    for &pes in pe_counts {
        let options = RunOptions {
            num_pes: pes,
            ..base_options.clone()
        };
        let outcome = engine.run(program, args, &options)?;
        let elapsed = outcome.elapsed_us();
        let base = *base_time.get_or_insert(elapsed);
        points.push(SpeedupPoint {
            pes,
            elapsed_us: elapsed,
            speedup: if elapsed > 0.0 { base / elapsed } else { 0.0 },
            eu_utilization: outcome.eu_utilization().unwrap_or(0.0),
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MATRIX_FILL: &str = r#"
        def main(n) {
            a = matrix(n, n);
            for i = 0 to n - 1 {
                for j = 0 to n - 1 {
                    a[i, j] = i * n + j;
                }
            }
            return a;
        }
    "#;

    #[test]
    fn compile_exposes_all_pipeline_stages() {
        let program = compile(MATRIX_FILL).unwrap();
        assert_eq!(program.main_arity(), Some(1));
        assert_eq!(program.graph().stats().loop_blocks, 2);
        assert_eq!(program.loops().len(), 2);
        assert_eq!(program.sp_program().len(), 3);
    }

    #[test]
    fn run_produces_complete_results() {
        let program = compile(MATRIX_FILL).unwrap();
        let outcome = program
            .run(&[Value::Int(8)], &RunOptions::with_pes(4))
            .unwrap();
        let array = outcome.result.returned_array().unwrap();
        assert!(array.is_complete());
        assert_eq!(outcome.partition.distributed_loops().count(), 1);
        assert!(outcome.elapsed_us() > 0.0);
        assert!(outcome.elapsed_seconds() > 0.0);
    }

    #[test]
    fn argument_and_entry_validation() {
        let program = compile(MATRIX_FILL).unwrap();
        assert!(matches!(
            program.run(&[], &RunOptions::default()),
            Err(PodsError::ArgumentMismatch {
                expected: 1,
                got: 0
            })
        ));
        let no_main = compile("def helper(x) { return x; }").unwrap();
        assert!(matches!(
            no_main.run(&[], &RunOptions::default()),
            Err(PodsError::MissingEntry)
        ));
    }

    #[test]
    fn speedup_sweep_is_monotone_for_parallel_work() {
        let program = compile(MATRIX_FILL).unwrap();
        let points = speedup_sweep(
            &program,
            &[Value::Int(16)],
            &[1, 2, 4],
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        assert!(points[2].speedup > points[0].speedup);
        assert!(points[2].eu_utilization > 0.0);
    }

    #[test]
    fn partitioning_attaches_specialization_plans() {
        let program = compile(MATRIX_FILL).unwrap();
        let on = RunOptions {
            specialize: true,
            ..RunOptions::with_pes(2)
        };
        let (sp, report) = program.partitioned(&on);
        assert!(report.specialized_templates > 0);
        assert!(report.super_ops > 0);
        assert!(sp.templates().iter().all(|t| t.plan.is_some()));

        let off = RunOptions {
            specialize: false,
            ..RunOptions::with_pes(2)
        };
        let (sp, report) = program.partitioned(&off);
        assert_eq!((report.specialized_templates, report.super_ops), (0, 0));
        assert!(sp.templates().iter().all(|t| t.plan.is_none()));
        assert_ne!(
            program.partitioned(&on).0.fingerprint(),
            sp.fingerprint(),
            "specialization is part of structural identity"
        );
    }

    #[test]
    fn compile_and_run_convenience() {
        let outcome = compile_and_run(
            "def main(n) { return n + 1; }",
            &[Value::Int(41)],
            &RunOptions::default(),
        )
        .unwrap();
        assert_eq!(outcome.result.return_value, Some(Value::Int(42)));
    }
}
