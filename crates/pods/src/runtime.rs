//! The long-lived execution context of PODS: [`Runtime`], built by
//! [`RuntimeBuilder`].
//!
//! The paper's thesis is that iteration-level parallelism pays off when
//! spawn overhead is amortised — yet a cold
//! [`CompiledProgram::run_on`] call spins up a brand-new thread pool, runs
//! one program, and tears everything down. A `Runtime` separates program
//! construction from execution the way Timely Dataflow's `execute` layer
//! does: build it once, then `run` any number of compiled programs (or
//! argument sets) against the *same* persistent worker pool.
//!
//! * [`Runtime::run`] — one program, blocking, on the warm pool.
//! * [`Runtime::submit`] / [`JobHandle::wait`] — asynchronous submission;
//!   many jobs can be in flight on one pool at once, each with fully
//!   isolated per-job state (instance queues, I-structure store, deadlock
//!   detection).
//! * [`Runtime::run_many`] — batch form: submit everything, then collect.
//!
//! `Runtime` is `Sync`: share `&Runtime` across OS threads and submit from
//! all of them concurrently.
//!
//! # The warm path: prepared programs
//!
//! Submitting a raw [`CompiledProgram`] still has to clone its SP program,
//! run the partitioner over it, and build the per-template read-slot
//! tables. All three are pure functions of `(program, partition config)`,
//! so the runtime amortises them: [`Runtime::prepare`] produces an
//! `Arc`-shared, immutable [`PreparedProgram`], and `run`/`submit`/
//! `run_many` accept either form. Raw programs are auto-prepared through a
//! small LRU cache keyed by the program's interned identity, so even
//! callers that never touch `prepare` pay the setup once per program, not
//! once per run.
//!
//! ```
//! use pods::{compile, EngineKind, Runtime, Value};
//!
//! let program = compile(
//!     "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * i; } return a; }",
//! )?;
//! let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
//! // Prepare once; every subsequent run pays only job submission.
//! let prepared = runtime.prepare(&program);
//! for n in [4, 8, 16] {
//!     let outcome = runtime.run(&prepared, &[Value::Int(n)])?;
//!     assert!(outcome.returned_array().unwrap().is_complete());
//! }
//! // Raw programs work too — the runtime's LRU cache makes repeat runs
//! // just as warm.
//! let outcome = runtime.run(&program, &[Value::Int(6)])?;
//! assert!(outcome.returned_array().unwrap().is_complete());
//! # Ok::<(), pods::PodsError>(())
//! ```
//!
//! A `PreparedProgram` is machine-size-independent (Range Filters compute
//! per-worker responsibility at run time), so one handle serves runtimes
//! with different worker counts; only the partitioner configuration must
//! match the preparing runtime's.

use crate::engine::{
    build_read_slots, check_invocation, AsyncPool, EngineKind, EngineOutcome, EngineStats, JobSpec,
    NativePool, ReadSlots, SimEngine,
};
use crate::error::PodsError;
use crate::pipeline::{CompiledProgram, RunOptions};
use crate::service::metrics::MetricsRegistry;
use crate::service::queue::{CancelKind, Ticket};
use crate::service::{Admission, ClientId, JobService, PoolHandle, ServiceInner, ServiceMetrics};
use crate::trace::{JobTrace, TraceConfig, TraceEventKind, TraceHandle, TraceRecorder};
use pods_istructure::Value;
use pods_partition::{ChunkPolicy, PartitionConfig, PartitionReport};
use pods_sp::SpProgram;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configures and builds a [`Runtime`].
///
/// The builder absorbs everything that used to travel in an ad-hoc
/// [`RunOptions`] value: engine kind, worker/PE count, page size, the
/// remote-page cache switch, partitioner configuration, and the task/event
/// safety limit.
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    kind: EngineKind,
    opts: RunOptions,
    prepared_cache: usize,
    admission_capacity: usize,
    dispatch_window: Option<usize>,
    client_weights: HashMap<ClientId, u32>,
    trace: Option<TraceConfig>,
}

/// Default capacity of the runtime's prepared-program LRU cache.
const DEFAULT_PREPARED_CACHE: usize = 16;

/// Upper bound on adaptive grain retunes per cached program: each retune
/// doubles the auto-sized chunk, so generation 3 runs at 8× the prepare-time
/// grain (and the chunk transform itself caps boosted chunks — see
/// [`pods_sp::chunk`]).
const MAX_AUTOTUNE: u64 = 3;

impl RuntimeBuilder {
    /// Starts a builder for the given engine kind. Workers default to the
    /// host's available parallelism; everything else defaults to the
    /// paper's values ([`RunOptions::default`]).
    pub fn new(kind: EngineKind) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        RuntimeBuilder {
            kind,
            opts: RunOptions::with_pes(workers),
            prepared_cache: DEFAULT_PREPARED_CACHE,
            admission_capacity: 0,
            dispatch_window: None,
            client_weights: HashMap::new(),
            trace: None,
        }
    }

    /// Number of worker threads (native) or simulated PEs (sim/pr). Clamped
    /// to at least one.
    pub fn workers(mut self, workers: usize) -> Self {
        self.opts.num_pes = workers.max(1);
        self
    }

    /// Array page size in elements (paper default: 32).
    pub fn page_size(mut self, page_size: usize) -> Self {
        self.opts.page_size = page_size.max(1);
        self
    }

    /// Enables or disables the software cache for remote pages (sim only).
    pub fn remote_page_cache(mut self, enabled: bool) -> Self {
        self.opts.remote_page_cache = enabled;
        self
    }

    /// Partitioner configuration (distribution, Range Filters, LCD
    /// handling).
    pub fn partition(mut self, partition: PartitionConfig) -> Self {
        self.opts.partition = partition;
        self
    }

    /// Grain-size control with a fixed chunk: group `chunk` consecutive
    /// inner-loop iterations into one SP instance (clamped to at least 1;
    /// `1` is the untouched fine-grained program). Shorthand for
    /// [`RuntimeBuilder::chunk_policy`] with [`ChunkPolicy::Fixed`].
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.opts.partition.chunk = ChunkPolicy::Fixed(chunk.max(1));
        self
    }

    /// Grain-size control policy. [`ChunkPolicy::Auto`] sizes each chunk
    /// from the loop body at prepare time and lets the runtime coarsen the
    /// grain from first-run statistics (see [`Runtime::run`]); the chunk
    /// policy is part of the partitioner configuration, so prepared handles
    /// only run on runtimes with a matching policy.
    pub fn chunk_policy(mut self, policy: ChunkPolicy) -> Self {
        self.opts.partition.chunk = policy;
        self
    }

    /// Safety limit on simulation events / native task executions /
    /// interpreted statements (0 = unlimited). See
    /// [`RunOptions::max_events`] for what each engine counts.
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.opts.max_events = max_events;
        self
    }

    /// Native engine: how many I-structure wake-ups a worker buffers before
    /// delivering them in one scheduler transaction (default 16, the order
    /// of the paper's ~20-token routing batches; clamped to at least 1,
    /// which is unbatched delivery). See [`RunOptions::delivery_batch`].
    pub fn delivery_batch(mut self, batch: usize) -> Self {
        self.opts.delivery_batch = batch.max(1);
        self
    }

    /// Enables or disables the prepare-time specialization pass (default:
    /// the `PODS_SPECIALIZE` environment variable, which is on unless set
    /// to `0`). Specialization pre-resolves operand fetches and fuses
    /// straight-line runs into super-ops at prepare time; disabling it
    /// keeps every instruction on the plain interpreter loop — useful for
    /// debugging and A/B benching. Part of prepared identity: a handle
    /// prepared with one setting will not run on a runtime with the other.
    pub fn specialize(mut self, enabled: bool) -> Self {
        self.opts.specialize = enabled;
        self
    }

    /// Capacity of the prepared-program LRU cache used when raw
    /// [`CompiledProgram`]s are submitted (default 16 programs). `0`
    /// disables the cache: every raw submission re-clones and re-partitions
    /// the program, which is exactly the pre-cache warm path — useful as a
    /// benchmark control, not for production. Explicit
    /// [`Runtime::prepare`] handles bypass the cache either way.
    pub fn prepared_cache_capacity(mut self, programs: usize) -> Self {
        self.prepared_cache = programs;
        self
    }

    /// Bounds the admission queue of the pooled runtimes at `jobs` queued
    /// submissions (default `0` = unbounded). At capacity,
    /// [`Runtime::try_submit`] rejects immediately with
    /// [`PodsError::QueueFull`], [`Runtime::submit_timeout`] blocks up to
    /// its timeout, and plain [`Runtime::submit`] blocks until a slot
    /// frees — bounded admission is how a shared runtime pushes back on
    /// producers instead of buffering without limit. Modelled engines run
    /// jobs eagerly and never queue.
    pub fn admission_capacity(mut self, jobs: usize) -> Self {
        self.admission_capacity = jobs;
        self
    }

    /// Maximum jobs dispatched to the worker pool concurrently (clamped to
    /// at least 1; default = the worker count). Jobs beyond the window wait
    /// in the admission queue, where per-client fairness is enforced — a
    /// narrower window trades pool concurrency for stricter fairness and
    /// lower per-job interference.
    pub fn dispatch_window(mut self, jobs: usize) -> Self {
        self.dispatch_window = Some(jobs.max(1));
        self
    }

    /// Default deadline for every job submitted to this runtime (pooled
    /// engines only). Shorthand for setting [`RunOptions::deadline`]; see
    /// there for the exact semantics.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.opts.deadline = Some(deadline);
        self
    }

    /// Sets a client's fair-share weight (default 1, clamped to at least
    /// 1): when the admission queue holds jobs from several clients, the
    /// dispatcher serves them deficit-round-robin, `weight` jobs per visit,
    /// so a weight-2 client receives ~2x the dispatch rate of a weight-1
    /// client while both have work queued. Tag submissions with
    /// [`Runtime::submit_for`] (and friends) to attribute them to a client.
    pub fn client_weight(mut self, client: ClientId, weight: u32) -> Self {
        self.client_weights.insert(client, weight.max(1));
        self
    }

    /// Enables the flight recorder: every layer of the runtime (service,
    /// pooled schedulers, the shared exec core — and the machine simulator,
    /// through the same hook) records timestamped events into bounded
    /// per-worker rings, drained with [`Runtime::take_trace`]. Off by
    /// default; `PODS_TRACE=1` in the environment enables it without a code
    /// change (`PODS_TRACE_BUF` sets the ring size). See [`crate::trace`].
    pub fn trace(mut self, config: TraceConfig) -> Self {
        self.trace = Some(config);
        self
    }

    /// Replaces the whole option block at once (for callers that already
    /// hold a [`RunOptions`], e.g. the compatibility wrappers).
    pub fn options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Builds the runtime. For the pooled kinds ([`EngineKind::Native`],
    /// [`EngineKind::AsyncCoop`]) this spawns the persistent worker pool
    /// immediately, so the first `run` is already warm.
    pub fn build(self) -> Runtime {
        let backend = Arc::new(match self.kind {
            EngineKind::Native => Backend::Native(NativePool::new(self.opts.num_pes)),
            EngineKind::AsyncCoop => Backend::Async(AsyncPool::new(self.opts.num_pes)),
            _ => Backend::Modelled,
        });
        let metrics = Arc::new(MetricsRegistry::new(self.admission_capacity));
        let window = self.dispatch_window.unwrap_or(self.opts.num_pes).max(1);
        let trace = self
            .trace
            .or_else(TraceConfig::from_env)
            .map(|cfg| Arc::new(TraceRecorder::new(self.opts.num_pes, cfg.buffer_size)));
        let service = if self.kind.is_pooled() {
            Some(JobService::start(
                Arc::downgrade(&backend),
                self.opts.clone(),
                self.admission_capacity,
                window,
                self.client_weights,
                Arc::clone(&metrics),
                trace.clone(),
            ))
        } else {
            None
        };
        Runtime {
            kind: self.kind,
            opts: self.opts,
            backend,
            prepared: Mutex::new(Vec::new()),
            prepared_cap: self.prepared_cache,
            metrics,
            service,
            trace,
        }
    }
}

/// A persistent, typed execution context.
///
/// For [`EngineKind::Native`] the runtime owns a work-stealing worker pool
/// that stays alive across `run` calls — per-run cost is one job
/// submission, not a pool spawn. For the modelled engines (`sim`, `seq`,
/// `pr`) the runtime is a thin, allocation-free front over the static
/// engine registry (those engines are single-threaded models with no pool
/// to keep warm).
///
/// Dropping the runtime joins the worker threads; outstanding jobs —
/// queued or in flight — are cut short at the next instruction boundary
/// and fail with a cancellation error rather than hanging their waiters.
pub struct Runtime {
    kind: EngineKind,
    opts: RunOptions,
    /// The strong owner of the pool. The job service holds only a `Weak`
    /// reference (completion hooks keep the service alive, and a strong
    /// backend reference there would keep the pool alive in a cycle).
    backend: Arc<Backend>,
    /// LRU cache of auto-prepared programs, most recently used last, keyed
    /// by [`CompiledProgram::identity`].
    prepared: Mutex<Vec<PreparedProgram>>,
    prepared_cap: usize,
    /// Service counters; shared with the dispatcher and completion hooks.
    metrics: Arc<MetricsRegistry>,
    /// The admission/fairness/deadline layer — `Some` exactly for the
    /// pooled engine kinds.
    service: Option<JobService>,
    /// The flight recorder — `Some` when the runtime was built with
    /// [`RuntimeBuilder::trace`] or `PODS_TRACE=1`.
    trace: Option<Arc<TraceRecorder>>,
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Drain the service first (cancels queued jobs, joins the
        // dispatcher); the pool itself is torn down when `backend` — the
        // only strong reference — drops with the remaining fields.
        if let Some(service) = &mut self.service {
            service.shutdown();
        }
    }
}

/// The execution machinery a runtime owns, per engine kind.
pub(crate) enum Backend {
    /// The modelled engines (`sim`, `seq`, `pr`) run eagerly on the
    /// calling thread; there is nothing to keep warm.
    Modelled,
    /// The native work-stealing thread pool (parked-instance scheduling).
    Native(NativePool),
    /// The cooperative executor (futures-style task suspension).
    Async(AsyncPool),
}

impl Backend {
    /// Hands one job to the pooled backend (dispatcher-only path).
    pub(crate) fn submit_pooled(&self, spec: JobSpec, args: &[Value]) -> PoolHandle {
        match self {
            Backend::Native(pool) => PoolHandle::Native(pool.submit(spec, args)),
            Backend::Async(pool) => PoolHandle::Async(pool.submit(spec, args)),
            Backend::Modelled => unreachable!("modelled backends take no pooled jobs"),
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("kind", &self.kind)
            .field("workers", &self.opts.num_pes)
            .field("pool_id", &self.pool_id())
            .field("prepared_cached", &self.prepared_cache_size())
            .finish()
    }
}

impl Runtime {
    /// A runtime of the given kind with default configuration (workers =
    /// available parallelism, paper-default options).
    pub fn new(kind: EngineKind) -> Runtime {
        RuntimeBuilder::new(kind).build()
    }

    /// Starts a [`RuntimeBuilder`] for the given kind.
    pub fn builder(kind: EngineKind) -> RuntimeBuilder {
        RuntimeBuilder::new(kind)
    }

    /// A runtime that executes with exactly the given options (the
    /// compatibility path used by [`CompiledProgram::run_on`]).
    pub fn with_options(kind: EngineKind, opts: RunOptions) -> Runtime {
        RuntimeBuilder::new(kind).options(opts).build()
    }

    /// The engine kind this runtime executes on.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The effective run options.
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    /// Number of workers (native threads or simulated PEs).
    pub fn workers(&self) -> usize {
        self.opts.num_pes
    }

    /// Process-unique identity of the worker pool (native) or cooperative
    /// executor (async), if this runtime owns one — compare against
    /// [`crate::NativeStats::pool_id`] / [`crate::AsyncStats::pool_id`] to
    /// verify reuse.
    pub fn pool_id(&self) -> Option<u64> {
        match &*self.backend {
            Backend::Modelled => None,
            Backend::Native(pool) => Some(pool.id()),
            Backend::Async(pool) => Some(pool.id()),
        }
    }

    /// Number of programs currently held by the auto-prepare LRU cache.
    pub fn prepared_cache_size(&self) -> usize {
        self.prepared.lock().expect("prepared cache poisoned").len()
    }

    /// Prepares a program for repeated execution on this runtime: clones
    /// the SP program, partitions it under this runtime's configuration,
    /// and builds the per-template read-slot tables — once. The returned
    /// handle is `Arc`-shared and immutable; cloning it is two reference
    /// bumps, and submitting it skips every per-run setup step.
    ///
    /// Raw-program submissions consult the same LRU cache this method
    /// feeds, so `prepare` is about *control* (pin a program's prepared
    /// state for as long as you hold the handle, share it across runtimes)
    /// rather than a requirement for warm runs.
    ///
    /// The handle is valid on any runtime whose partitioner configuration
    /// equals this one's — worker counts may differ, because partitioning
    /// is machine-size-independent (Range Filters resolve per-worker
    /// responsibility at run time). Submitting it to a runtime with a
    /// *different* partitioner configuration fails with
    /// [`PodsError::PreparedMismatch`].
    pub fn prepare(&self, program: &CompiledProgram) -> PreparedProgram {
        if self.prepared_cap == 0 {
            return self.prepare_uncached(program);
        }
        let identity = program.identity();
        if let Some(hit) = self.cache_lookup(identity) {
            return hit;
        }
        // Build outside the lock: preparation clones and partitions the
        // program, and concurrent submitters of *other* programs should not
        // serialise behind it. A racing prepare of the same program is
        // resolved at insert time (first one in wins).
        let fresh = self.prepare_uncached(program);
        let mut cache = self.prepared.lock().expect("prepared cache poisoned");
        if let Some(i) = cache.iter().position(|p| p.inner.identity == identity) {
            let hit = cache.remove(i);
            cache.push(hit.clone());
            return hit;
        }
        if cache.len() >= self.prepared_cap {
            cache.remove(0);
        }
        cache.push(fresh.clone());
        fresh
    }

    fn cache_lookup(&self, identity: u64) -> Option<PreparedProgram> {
        let mut cache = self.prepared.lock().expect("prepared cache poisoned");
        let i = cache.iter().position(|p| p.inner.identity == identity)?;
        let hit = cache.remove(i);
        cache.push(hit.clone());
        Some(hit)
    }

    fn prepare_uncached(&self, program: &CompiledProgram) -> PreparedProgram {
        self.prepare_with_autotune(program, 0)
    }

    /// Prepares `program` with `autotuned` grain retunes applied: auto-sized
    /// chunks are multiplied by `2^autotuned` (fixed chunk policies are
    /// unaffected, so retuning is a no-op for them by construction).
    fn prepare_with_autotune(&self, program: &CompiledProgram, autotuned: u64) -> PreparedProgram {
        let boost = 1usize << autotuned.min(usize::BITS as u64 - 1);
        let (sp, partition) = program.partitioned_with_chunk_boost(&self.opts, boost);
        let read_slots = build_read_slots(&sp);
        let sp = Arc::new(sp);
        PreparedProgram {
            inner: Arc::new(PreparedInner {
                identity: program.identity(),
                fingerprint: sp.fingerprint(),
                partition_cfg: self.opts.partition,
                specialize: self.opts.specialize,
                source: program.clone(),
                sp,
                read_slots: Arc::new(read_slots),
                partition,
                autotuned,
            }),
        }
    }

    /// Adaptive grain control: after a successful pooled run under
    /// [`ChunkPolicy::Auto`], decide from the run's statistics whether the
    /// auto-sized chunk was too fine, and if so replace the program's
    /// prepared-cache entry with a re-partitioned one whose chunk is twice
    /// as coarse. Warm re-runs of the raw program then pick up the tuned
    /// grain from the cache; prepared handles the caller pinned keep the
    /// grain they were built with.
    fn maybe_retune(&self, program: &CompiledProgram, outcome: &EngineOutcome) {
        if self.prepared_cap == 0
            || self.opts.partition.chunk != ChunkPolicy::Auto
            || !self.kind.is_pooled()
        {
            return;
        }
        // Only retune runs where chunking was actually in effect...
        if outcome.partition().is_none_or(|p| p.chunked_spawns == 0) {
            return;
        }
        // ...and where instances still comfortably outnumber the workers:
        // a coarser grain trades scheduling overhead for parallel slack, so
        // it only pays while there is slack left to spend.
        let instances = match &outcome.stats {
            EngineStats::Native { stats, .. } => stats.instances,
            EngineStats::AsyncCoop { stats, .. } => stats.instances,
            _ => return,
        };
        if instances <= (self.workers() as u64).saturating_mul(2) {
            return;
        }
        let identity = program.identity();
        let autotuned = {
            let cache = self.prepared.lock().expect("prepared cache poisoned");
            match cache.iter().find(|p| p.inner.identity == identity) {
                Some(entry) if entry.inner.autotuned < MAX_AUTOTUNE => entry.inner.autotuned,
                _ => return,
            }
        };
        // Re-partition outside the lock (same discipline as `prepare`).
        let fresh = self.prepare_with_autotune(program, autotuned + 1);
        let mut cache = self.prepared.lock().expect("prepared cache poisoned");
        if let Some(i) = cache.iter().position(|p| p.inner.identity == identity) {
            // A racing retune may have advanced the entry already; only
            // replace an entry at the generation this retune started from.
            if cache[i].inner.autotuned == autotuned {
                cache[i] = fresh;
                if let Some(rec) = &self.trace {
                    rec.emit(
                        rec.service_lane(),
                        0,
                        0,
                        TraceEventKind::ChunkRetuned {
                            generation: (autotuned + 1) as u32,
                        },
                    );
                }
            }
        }
    }

    /// Runs one program to completion on this runtime (blocking). Accepts a
    /// raw `&CompiledProgram` (auto-prepared through the LRU cache) or a
    /// [`PreparedProgram`] handle.
    ///
    /// # Errors
    ///
    /// Returns a [`PodsError`] for malformed invocations and run-time
    /// failures, exactly like the underlying engine.
    pub fn run<P: ProgramSource>(
        &self,
        program: P,
        args: &[Value],
    ) -> Result<EngineOutcome, PodsError> {
        let outcome = self.submit(program, args)?.wait();
        if let Ok(ok) = &outcome {
            self.maybe_retune(program.compiled(), ok);
        }
        outcome
    }

    /// Submits one program for execution and returns a [`JobHandle`].
    /// Accepts a raw `&CompiledProgram` or a [`PreparedProgram`] handle.
    ///
    /// On the pooled runtimes (native thread pool or async cooperative
    /// executor) the job executes asynchronously on the shared pool:
    /// submit many jobs before waiting on any of them and they run
    /// concurrently, each with isolated per-job state. On the modelled
    /// engines the job runs eagerly on the calling thread (they are
    /// single-threaded models; there is no pool to hand them to) and the
    /// handle is immediately ready.
    ///
    /// # Errors
    ///
    /// Returns [`PodsError::MissingEntry`] / [`PodsError::ArgumentMismatch`]
    /// for malformed invocations and [`PodsError::PreparedMismatch`] for a
    /// prepared program whose partitioner configuration differs from this
    /// runtime's; run-time failures surface at [`JobHandle::wait`].
    ///
    /// With a bounded [`RuntimeBuilder::admission_capacity`], `submit`
    /// blocks while the admission queue is full; see
    /// [`Runtime::try_submit`] and [`Runtime::submit_timeout`] for the
    /// non-blocking and bounded-wait forms.
    pub fn submit<P: ProgramSource>(
        &self,
        program: P,
        args: &[Value],
    ) -> Result<JobHandle, PodsError> {
        self.submit_inner(ClientId::ANONYMOUS, program, args, Admission::Wait)
    }

    /// [`Runtime::submit`], attributing the job to `client` for per-client
    /// fair scheduling and metrics (see [`RuntimeBuilder::client_weight`]).
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit`].
    pub fn submit_for<P: ProgramSource>(
        &self,
        client: ClientId,
        program: P,
        args: &[Value],
    ) -> Result<JobHandle, PodsError> {
        self.submit_inner(client, program, args, Admission::Wait)
    }

    /// Non-blocking submission: like [`Runtime::submit`], but if the
    /// admission queue is at capacity the job is rejected immediately.
    ///
    /// # Errors
    ///
    /// [`PodsError::QueueFull`] when the admission queue is at capacity
    /// (the rejection is counted in [`ServiceMetrics::rejected`]), plus
    /// everything [`Runtime::submit`] returns.
    pub fn try_submit<P: ProgramSource>(
        &self,
        program: P,
        args: &[Value],
    ) -> Result<JobHandle, PodsError> {
        self.submit_inner(ClientId::ANONYMOUS, program, args, Admission::Try)
    }

    /// [`Runtime::try_submit`] attributed to `client`.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::try_submit`].
    pub fn try_submit_for<P: ProgramSource>(
        &self,
        client: ClientId,
        program: P,
        args: &[Value],
    ) -> Result<JobHandle, PodsError> {
        self.submit_inner(client, program, args, Admission::Try)
    }

    /// Bounded-wait submission: like [`Runtime::submit`], but blocks at
    /// most `timeout` for an admission slot before rejecting.
    ///
    /// # Errors
    ///
    /// [`PodsError::QueueFull`] when no slot freed within `timeout`, plus
    /// everything [`Runtime::submit`] returns.
    pub fn submit_timeout<P: ProgramSource>(
        &self,
        program: P,
        args: &[Value],
        timeout: Duration,
    ) -> Result<JobHandle, PodsError> {
        let limit = Instant::now() + timeout;
        self.submit_inner(ClientId::ANONYMOUS, program, args, Admission::Until(limit))
    }

    /// [`Runtime::submit_timeout`] attributed to `client`.
    ///
    /// # Errors
    ///
    /// Same as [`Runtime::submit_timeout`].
    pub fn submit_timeout_for<P: ProgramSource>(
        &self,
        client: ClientId,
        program: P,
        args: &[Value],
        timeout: Duration,
    ) -> Result<JobHandle, PodsError> {
        let limit = Instant::now() + timeout;
        self.submit_inner(client, program, args, Admission::Until(limit))
    }

    /// A point-in-time snapshot of this runtime's service counters: queue
    /// depth and peak, submitted/completed/rejected/cancelled totals,
    /// throughput, latency percentiles, per-client completions, and
    /// I-structure store peaks. Cheap (atomic loads plus one small map
    /// copy) — safe to poll.
    pub fn metrics(&self) -> ServiceMetrics {
        self.metrics.snapshot()
    }

    /// Drains the flight recorder: every event recorded since the last call
    /// (or since the runtime was built), merged across lanes into one
    /// time-ordered [`JobTrace`]. Serialize it with
    /// [`JobTrace::chrome_trace`] for `chrome://tracing` / Perfetto, or
    /// inspect per-job timing with [`JobTrace::breakdown`]. Returns an
    /// empty trace when the runtime was built without
    /// [`RuntimeBuilder::trace`] (and `PODS_TRACE` is unset).
    pub fn take_trace(&self) -> JobTrace {
        match &self.trace {
            Some(rec) => rec.drain(),
            None => JobTrace::default(),
        }
    }

    /// Whether this runtime's flight recorder is enabled.
    pub fn tracing_enabled(&self) -> bool {
        self.trace.is_some()
    }

    fn submit_inner<P: ProgramSource>(
        &self,
        client: ClientId,
        program: P,
        args: &[Value],
        mode: Admission,
    ) -> Result<JobHandle, PodsError> {
        check_invocation(program.compiled(), args)?;
        program.check_compatible(self)?;
        if let Some(service) = &self.service {
            let prepared = program.prepared(self)?;
            let ticket = service
                .inner
                .submit(client, prepared, args.to_vec(), mode)?;
            return Ok(JobHandle {
                inner: JobInner::Service {
                    svc: Arc::clone(&service.inner),
                    ticket,
                },
            });
        }
        // Modelled engines run eagerly on the calling thread (they are
        // single-threaded models; there is no pool to queue against), so
        // the job is complete — and counted — before `submit` returns.
        self.metrics.note_submitted();
        let started = Instant::now();
        let trace_job = self.trace.as_ref().map(|rec| {
            let job = rec.next_job_id();
            let lane = rec.service_lane();
            rec.emit(lane, job, 0, TraceEventKind::JobAdmitted);
            rec.emit(lane, job, 0, TraceEventKind::JobDispatched);
            (Arc::clone(rec), job)
        });
        let mut outcome = match (&trace_job, self.kind) {
            // The simulator reaches the shared exec core too, so a traced
            // run records the same core events as the pooled engines.
            (Some((rec, job)), EngineKind::Sim) => SimEngine.run_traced(
                program.compiled(),
                args,
                &self.opts,
                TraceHandle {
                    rec: Arc::clone(rec),
                    job: *job,
                },
            ),
            _ => self.kind.engine().run(program.compiled(), args, &self.opts),
        };
        if let Some((rec, job)) = &trace_job {
            rec.emit(rec.service_lane(), *job, 0, TraceEventKind::JobFinished);
            if let Ok(ok) = &mut outcome {
                ok.diagnostics = rec.peek().breakdown(*job);
            }
        }
        self.metrics.note_completed(client, started.elapsed());
        Ok(JobHandle {
            inner: JobInner::Ready(Box::new(outcome)),
        })
    }

    /// Runs a batch of jobs — `(program, args)` pairs — and returns their
    /// outcomes in submission order. On the native runtime all jobs are
    /// submitted before any is waited on, so they execute concurrently on
    /// the shared pool. The program may be raw or prepared (one type per
    /// batch; prepare everything for mixed batches).
    pub fn run_many<P: ProgramSource>(
        &self,
        jobs: &[(P, &[Value])],
    ) -> Vec<Result<EngineOutcome, PodsError>> {
        let handles: Vec<Result<JobHandle, PodsError>> = jobs
            .iter()
            .map(|(program, args)| self.submit(*program, args))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.and_then(JobHandle::wait))
            .collect()
    }
}

/// An immutable, `Arc`-shared program prepared for execution: the cloned
/// and partitioned SP program, its read-slot tables, and the partition
/// report, ready for any number of submissions. Produced by
/// [`Runtime::prepare`]; accepted anywhere a raw [`CompiledProgram`] is
/// (`run`, `submit`, `run_many`). Cloning shares the underlying state.
///
/// The handle is machine-size-independent — it runs on any runtime with
/// the same partitioner configuration, regardless of worker count.
#[derive(Clone)]
pub struct PreparedProgram {
    inner: Arc<PreparedInner>,
}

struct PreparedInner {
    /// The source program's interned identity (cache key).
    identity: u64,
    /// Structural fingerprint of the partitioned SP program.
    fingerprint: u64,
    /// The partitioner configuration the program was prepared under.
    partition_cfg: PartitionConfig,
    /// Whether the prepare-time specialization pass ran (part of prepared
    /// identity: plans alter the warm path, so a handle only runs on
    /// runtimes with the same setting).
    specialize: bool,
    /// The compiled program this was prepared from, retained so the same
    /// handle also runs on modelled-engine runtimes (which partition
    /// internally) and so invocations can be validated. This is a full
    /// clone, made once per `prepare` (never per run) and bounded by the
    /// LRU cache capacity; callers keep their own original regardless.
    source: CompiledProgram,
    sp: Arc<SpProgram>,
    read_slots: Arc<ReadSlots>,
    partition: PartitionReport,
    /// How many adaptive grain retunes produced this preparation (0 = the
    /// prepare-time grain; each retune doubled the auto-sized chunk).
    autotuned: u64,
}

impl PreparedProgram {
    /// The identity of the compiled program this was prepared from
    /// (matches [`CompiledProgram::identity`]).
    pub fn identity(&self) -> u64 {
        self.inner.identity
    }

    /// Structural fingerprint of the partitioned SP program
    /// ([`pods_sp::SpProgram::fingerprint`]): equal for any two
    /// preparations of the same program under the same partitioner
    /// configuration.
    pub fn fingerprint(&self) -> u64 {
        self.inner.fingerprint
    }

    /// The partitioner's per-loop decisions for this preparation.
    pub fn partition_report(&self) -> &PartitionReport {
        &self.inner.partition
    }

    /// The partitioner configuration this program was prepared under; a
    /// runtime accepts the handle iff its configuration equals this.
    pub fn partition_config(&self) -> PartitionConfig {
        self.inner.partition_cfg
    }

    /// Whether two handles share one underlying preparation (`Arc`
    /// identity) — `true` exactly when one was cloned from the other,
    /// e.g. by a cache hit.
    pub fn same_preparation(&self, other: &PreparedProgram) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// How many adaptive grain retunes produced this preparation (0 = the
    /// prepare-time grain; each retune doubled the auto-sized chunk).
    pub fn chunks_autotuned(&self) -> u64 {
        self.inner.autotuned
    }

    /// The per-job spec handed to the pooled backends: `Arc` bumps plus a
    /// partition-report clone, no program work. The service attaches its
    /// completion hook before submission.
    pub(crate) fn job_spec(&self, opts: &RunOptions) -> JobSpec {
        JobSpec {
            program: Arc::clone(&self.inner.sp),
            read_slots: Arc::clone(&self.inner.read_slots),
            partition: self.inner.partition.clone(),
            page_size: opts.page_size,
            max_tasks: opts.max_events,
            delivery_batch: opts.delivery_batch.max(1),
            chunks_autotuned: self.inner.autotuned,
            on_done: None,
            trace: None,
        }
    }
}

impl std::fmt::Debug for PreparedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedProgram")
            .field("identity", &self.inner.identity)
            .field(
                "fingerprint",
                &format_args!("{:#018x}", self.inner.fingerprint),
            )
            .field("templates", &self.inner.sp.len())
            .finish()
    }
}

mod sealed {
    /// Seals [`super::ProgramSource`]: the set of submittable program forms
    /// is a closed part of the API.
    pub trait Sealed {}
    impl Sealed for &crate::pipeline::CompiledProgram {}
    impl Sealed for &super::PreparedProgram {}
}

/// A program in a form [`Runtime::run`]/[`Runtime::submit`]/
/// [`Runtime::run_many`] accept: a raw `&`[`CompiledProgram`] (prepared on
/// demand through the runtime's LRU cache) or a `&`[`PreparedProgram`]
/// (already prepared; submission is pure `Arc` sharing). Sealed — these two
/// forms are the whole set.
pub trait ProgramSource: sealed::Sealed + Copy {
    /// The compiled program behind this source (for invocation checks and
    /// the modelled engines).
    #[doc(hidden)]
    fn compiled(&self) -> &CompiledProgram;

    /// Validates this source against `runtime`'s configuration. Checked on
    /// every submission path — native *and* modelled — so a mismatched
    /// prepared handle is rejected uniformly, not only where its prepared
    /// partitioning would actually be executed.
    ///
    /// # Errors
    ///
    /// [`PodsError::PreparedMismatch`] when an already-prepared program was
    /// built under a different partitioner configuration than `runtime`'s.
    #[doc(hidden)]
    fn check_compatible(&self, runtime: &Runtime) -> Result<(), PodsError>;

    /// The prepared form for `runtime`'s native pool.
    ///
    /// # Errors
    ///
    /// Same as [`ProgramSource::check_compatible`].
    #[doc(hidden)]
    fn prepared(&self, runtime: &Runtime) -> Result<PreparedProgram, PodsError>;
}

impl ProgramSource for &CompiledProgram {
    fn compiled(&self) -> &CompiledProgram {
        self
    }

    fn check_compatible(&self, _runtime: &Runtime) -> Result<(), PodsError> {
        Ok(())
    }

    fn prepared(&self, runtime: &Runtime) -> Result<PreparedProgram, PodsError> {
        Ok(runtime.prepare(self))
    }
}

impl ProgramSource for &PreparedProgram {
    fn compiled(&self) -> &CompiledProgram {
        &self.inner.source
    }

    fn check_compatible(&self, runtime: &Runtime) -> Result<(), PodsError> {
        if self.inner.partition_cfg != runtime.opts.partition
            || self.inner.specialize != runtime.opts.specialize
        {
            return Err(PodsError::PreparedMismatch);
        }
        Ok(())
    }

    fn prepared(&self, runtime: &Runtime) -> Result<PreparedProgram, PodsError> {
        self.check_compatible(runtime)?;
        Ok((*self).clone())
    }
}

/// What a submitted job resolves to.
enum JobInner {
    /// The outcome is already available (modelled engines run eagerly).
    Ready(Box<Result<EngineOutcome, PodsError>>),
    /// A job admitted to a pooled runtime's service: its ticket tracks it
    /// from the admission queue through dispatch to completion.
    Service {
        svc: Arc<ServiceInner>,
        ticket: Arc<Ticket>,
    },
}

/// A handle to one submitted job on a [`Runtime`].
///
/// The handle is detachable: dropping it without calling [`wait`] does
/// **not** cancel the job — it still runs to completion (or its deadline)
/// and is counted in [`ServiceMetrics`]; only its outcome is discarded.
/// Use [`JobHandle::cancel`] to actually stop a job.
///
/// [`wait`]: JobHandle::wait
pub struct JobHandle {
    inner: JobInner,
}

impl JobHandle {
    /// Whether the job has already completed (successfully or not).
    /// `wait` will not block once this returns `true`.
    pub fn is_done(&self) -> bool {
        match &self.inner {
            JobInner::Ready(_) => true,
            JobInner::Service { ticket, .. } => ticket.is_done(),
        }
    }

    /// Requests cancellation of the job. A job still in the admission
    /// queue is cancelled outright (it never reaches the pool); a job
    /// already executing is stopped at its next instruction boundary. A
    /// job that already finished is unaffected. In both cancelled cases
    /// [`JobHandle::wait`] reports a cancellation error and the job counts
    /// toward [`ServiceMetrics::cancelled`].
    ///
    /// A no-op on modelled runtimes, whose jobs complete inside `submit`.
    pub fn cancel(&self) {
        if let JobInner::Service { svc, ticket } = &self.inner {
            svc.cancel(ticket);
        }
    }

    /// Blocks until the job completes and returns its outcome.
    ///
    /// # Errors
    ///
    /// Returns whatever the engine reported for this job — errors are
    /// job-scoped and never poison the pool or other jobs. A job cut short
    /// by [`RunOptions::deadline`] reports
    /// [`PodsError::DeadlineExceeded`]; one stopped by
    /// [`JobHandle::cancel`] or a runtime drop reports a cancellation
    /// error.
    pub fn wait(self) -> Result<EngineOutcome, PodsError> {
        match self.inner {
            JobInner::Ready(outcome) => *outcome,
            JobInner::Service { svc, ticket } => {
                let outcome = match ticket.claim() {
                    Ok(handle) => handle.wait(),
                    Err(err) => Err(err),
                };
                // A deadline cancellation surfaces from the engine as a
                // generic stop; report it as the typed error instead —
                // carrying the flight-recorder breakdown when tracing is on.
                if outcome.is_err() && ticket.cancel_kind() == Some(CancelKind::Deadline) {
                    return Err(PodsError::DeadlineExceeded {
                        deadline: ticket.deadline_dur.unwrap_or_default(),
                        breakdown: svc.job_breakdown(ticket.trace_job),
                    });
                }
                match outcome {
                    Ok(mut ok) => {
                        // Attach the slow-job diagnostic to the outcome.
                        if ticket.trace_job != 0 {
                            if let Some(rec) = &svc.trace {
                                ok.diagnostics = rec.peek().breakdown(ticket.trace_job);
                            }
                        }
                        Ok(ok)
                    }
                    // Deadlocked jobs get the breakdown folded into the
                    // error detail, pointing at where the time went.
                    Err(PodsError::Simulation(pods_machine::SimulationError::Deadlock {
                        stuck_instances,
                        detail,
                    })) => {
                        let detail = match svc.job_breakdown(ticket.trace_job) {
                            Some(b) => format!("{detail}; {b}"),
                            None => detail,
                        };
                        Err(PodsError::Simulation(
                            pods_machine::SimulationError::Deadlock {
                                stuck_instances,
                                detail,
                            },
                        ))
                    }
                    err => err,
                }
            }
        }
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("done", &self.is_done())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineStats;
    use crate::pipeline::compile;

    fn native_stats(outcome: &EngineOutcome) -> crate::engine::NativeStats {
        match &outcome.stats {
            EngineStats::Native { stats, .. } => *stats,
            other => panic!("expected native stats, got {other:?}"),
        }
    }

    #[test]
    fn builder_configures_all_knobs() {
        let runtime = Runtime::builder(EngineKind::Sim)
            .workers(3)
            .page_size(16)
            .remote_page_cache(false)
            .max_events(10_000)
            .build();
        assert_eq!(runtime.kind(), EngineKind::Sim);
        assert_eq!(runtime.workers(), 3);
        assert_eq!(runtime.options().page_size, 16);
        assert!(!runtime.options().remote_page_cache);
        assert_eq!(runtime.options().max_events, 10_000);
        assert_eq!(runtime.pool_id(), None);
        assert!(format!("{runtime:?}").contains("Sim"));
    }

    #[test]
    fn sequential_runs_share_one_pool() {
        let program =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i + 1; } return a; }")
                .unwrap();
        let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
        let first = runtime.run(&program, &[Value::Int(8)]).unwrap();
        let second = runtime.run(&program, &[Value::Int(12)]).unwrap();
        let (s1, s2) = (native_stats(&first), native_stats(&second));
        assert_eq!(s1.pool_id, runtime.pool_id().unwrap());
        assert_eq!(s1.pool_id, s2.pool_id, "pool was not reused");
        assert_eq!(s1.job_seq, 1);
        assert_eq!(s2.job_seq, 2);
        assert!(second.returned_array().unwrap().is_complete());
    }

    #[test]
    fn modelled_engines_run_through_the_runtime_too() {
        let program = compile("def main(n) { return n * 3; }").unwrap();
        for kind in [EngineKind::Sim, EngineKind::Seq, EngineKind::Pr] {
            let runtime = Runtime::builder(kind).workers(2).build();
            let handle = runtime.submit(&program, &[Value::Int(5)]).unwrap();
            assert!(handle.is_done(), "{kind}: modelled jobs are eager");
            let outcome = handle.wait().unwrap();
            assert_eq!(outcome.return_value, Some(Value::Int(15)), "{kind}");
            assert_eq!(outcome.engine, kind.name());
        }
    }

    #[test]
    fn run_many_executes_batches_with_mixed_outcomes() {
        let good = compile("def main(n) { return n + 1; }").unwrap();
        let bad = compile("def main(n) { a = array(n); a[0] = 1; return a[1]; }").unwrap();
        let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
        let args3: &[Value] = &[Value::Int(3)];
        let args9: &[Value] = &[Value::Int(9)];
        let results = runtime.run_many(&[(&good, args3), (&bad, args3), (&good, args9)]);
        assert_eq!(results.len(), 3);
        assert_eq!(
            results[0].as_ref().unwrap().return_value,
            Some(Value::Int(4))
        );
        assert!(results[1].is_err(), "deadlock job must fail alone");
        assert_eq!(
            results[2].as_ref().unwrap().return_value,
            Some(Value::Int(10))
        );
    }

    #[test]
    fn invocation_errors_surface_at_submit() {
        let program = compile("def main(n) { return n; }").unwrap();
        let runtime = Runtime::new(EngineKind::Native);
        assert!(matches!(
            runtime.submit(&program, &[]),
            Err(PodsError::ArgumentMismatch {
                expected: 1,
                got: 0
            })
        ));
    }
}
