//! The long-lived execution context of PODS: [`Runtime`], built by
//! [`RuntimeBuilder`].
//!
//! The paper's thesis is that iteration-level parallelism pays off when
//! spawn overhead is amortised — yet a cold
//! [`CompiledProgram::run_on`] call spins up a brand-new thread pool, runs
//! one program, and tears everything down. A `Runtime` separates program
//! construction from execution the way Timely Dataflow's `execute` layer
//! does: build it once, then `run` any number of compiled programs (or
//! argument sets) against the *same* persistent worker pool.
//!
//! * [`Runtime::run`] — one program, blocking, on the warm pool.
//! * [`Runtime::submit`] / [`JobHandle::wait`] — asynchronous submission;
//!   many jobs can be in flight on one pool at once, each with fully
//!   isolated per-job state (instance queues, I-structure store, deadlock
//!   detection).
//! * [`Runtime::run_many`] — batch form: submit everything, then collect.
//!
//! `Runtime` is `Sync`: share `&Runtime` across OS threads and submit from
//! all of them concurrently.
//!
//! ```
//! use pods::{compile, EngineKind, Runtime, Value};
//!
//! let program = compile(
//!     "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * i; } return a; }",
//! )?;
//! let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
//! // Back-to-back runs reuse the same worker threads.
//! for n in [4, 8, 16] {
//!     let outcome = runtime.run(&program, &[Value::Int(n)])?;
//!     assert!(outcome.returned_array().unwrap().is_complete());
//! }
//! # Ok::<(), pods::PodsError>(())
//! ```

use crate::engine::{check_invocation, EngineKind, EngineOutcome, NativeJobHandle, NativePool};
use crate::error::PodsError;
use crate::pipeline::{CompiledProgram, RunOptions};
use pods_istructure::Value;
use pods_partition::PartitionConfig;

/// Configures and builds a [`Runtime`].
///
/// The builder absorbs everything that used to travel in an ad-hoc
/// [`RunOptions`] value: engine kind, worker/PE count, page size, the
/// remote-page cache switch, partitioner configuration, and the task/event
/// safety limit.
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    kind: EngineKind,
    opts: RunOptions,
}

impl RuntimeBuilder {
    /// Starts a builder for the given engine kind. Workers default to the
    /// host's available parallelism; everything else defaults to the
    /// paper's values ([`RunOptions::default`]).
    pub fn new(kind: EngineKind) -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        RuntimeBuilder {
            kind,
            opts: RunOptions::with_pes(workers),
        }
    }

    /// Number of worker threads (native) or simulated PEs (sim/pr). Clamped
    /// to at least one.
    pub fn workers(mut self, workers: usize) -> Self {
        self.opts.num_pes = workers.max(1);
        self
    }

    /// Array page size in elements (paper default: 32).
    pub fn page_size(mut self, page_size: usize) -> Self {
        self.opts.page_size = page_size.max(1);
        self
    }

    /// Enables or disables the software cache for remote pages (sim only).
    pub fn remote_page_cache(mut self, enabled: bool) -> Self {
        self.opts.remote_page_cache = enabled;
        self
    }

    /// Partitioner configuration (distribution, Range Filters, LCD
    /// handling).
    pub fn partition(mut self, partition: PartitionConfig) -> Self {
        self.opts.partition = partition;
        self
    }

    /// Safety limit on simulation events / native task executions /
    /// interpreted statements (0 = unlimited). See
    /// [`RunOptions::max_events`] for what each engine counts.
    pub fn max_events(mut self, max_events: u64) -> Self {
        self.opts.max_events = max_events;
        self
    }

    /// Replaces the whole option block at once (for callers that already
    /// hold a [`RunOptions`], e.g. the compatibility wrappers).
    pub fn options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Builds the runtime. For [`EngineKind::Native`] this spawns the
    /// persistent worker pool immediately, so the first `run` is already
    /// warm.
    pub fn build(self) -> Runtime {
        let pool = match self.kind {
            EngineKind::Native => Some(NativePool::new(self.opts.num_pes)),
            _ => None,
        };
        Runtime {
            kind: self.kind,
            opts: self.opts,
            pool,
        }
    }
}

/// A persistent, typed execution context.
///
/// For [`EngineKind::Native`] the runtime owns a work-stealing worker pool
/// that stays alive across `run` calls — per-run cost is one job
/// submission, not a pool spawn. For the modelled engines (`sim`, `seq`,
/// `pr`) the runtime is a thin, allocation-free front over the static
/// engine registry (those engines are single-threaded models with no pool
/// to keep warm).
///
/// Dropping the runtime joins the worker threads; outstanding jobs —
/// queued or in flight — are cut short at the next instruction boundary
/// and fail with a cancellation error rather than hanging their waiters.
pub struct Runtime {
    kind: EngineKind,
    opts: RunOptions,
    pool: Option<NativePool>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("kind", &self.kind)
            .field("workers", &self.opts.num_pes)
            .field("pool_id", &self.pool.as_ref().map(NativePool::id))
            .finish()
    }
}

impl Runtime {
    /// A runtime of the given kind with default configuration (workers =
    /// available parallelism, paper-default options).
    pub fn new(kind: EngineKind) -> Runtime {
        RuntimeBuilder::new(kind).build()
    }

    /// Starts a [`RuntimeBuilder`] for the given kind.
    pub fn builder(kind: EngineKind) -> RuntimeBuilder {
        RuntimeBuilder::new(kind)
    }

    /// A runtime that executes with exactly the given options (the
    /// compatibility path used by [`CompiledProgram::run_on`]).
    pub fn with_options(kind: EngineKind, opts: RunOptions) -> Runtime {
        RuntimeBuilder::new(kind).options(opts).build()
    }

    /// The engine kind this runtime executes on.
    pub fn kind(&self) -> EngineKind {
        self.kind
    }

    /// The effective run options.
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    /// Number of workers (native threads or simulated PEs).
    pub fn workers(&self) -> usize {
        self.opts.num_pes
    }

    /// Process-unique identity of the native worker pool, if this runtime
    /// owns one (compare against
    /// [`crate::NativeStats::pool_id`] to verify reuse).
    pub fn pool_id(&self) -> Option<u64> {
        self.pool.as_ref().map(NativePool::id)
    }

    /// Runs one program to completion on this runtime (blocking).
    ///
    /// # Errors
    ///
    /// Returns a [`PodsError`] for malformed invocations and run-time
    /// failures, exactly like the underlying engine.
    pub fn run(
        &self,
        program: &CompiledProgram,
        args: &[Value],
    ) -> Result<EngineOutcome, PodsError> {
        self.submit(program, args)?.wait()
    }

    /// Submits one program for execution and returns a [`JobHandle`].
    ///
    /// On the native runtime the job executes asynchronously on the shared
    /// pool: submit many jobs before waiting on any of them and they run
    /// concurrently, each with isolated per-job state. On the modelled
    /// engines the job runs eagerly on the calling thread (they are
    /// single-threaded models; there is no pool to hand them to) and the
    /// handle is immediately ready.
    ///
    /// # Errors
    ///
    /// Returns [`PodsError::MissingEntry`] / [`PodsError::ArgumentMismatch`]
    /// for malformed invocations; run-time failures surface at
    /// [`JobHandle::wait`].
    pub fn submit(
        &self,
        program: &CompiledProgram,
        args: &[Value],
    ) -> Result<JobHandle, PodsError> {
        check_invocation(program, args)?;
        match &self.pool {
            Some(pool) => {
                let (partitioned, partition) = program.partitioned(&self.opts);
                let handle = pool.submit(
                    partitioned,
                    args,
                    partition,
                    self.opts.page_size,
                    self.opts.max_events,
                );
                Ok(JobHandle {
                    inner: JobInner::Native(handle),
                })
            }
            None => Ok(JobHandle {
                inner: JobInner::Ready(Box::new(self.kind.engine().run(program, args, &self.opts))),
            }),
        }
    }

    /// Runs a batch of jobs — `(program, args)` pairs — and returns their
    /// outcomes in submission order. On the native runtime all jobs are
    /// submitted before any is waited on, so they execute concurrently on
    /// the shared pool.
    pub fn run_many(
        &self,
        jobs: &[(&CompiledProgram, &[Value])],
    ) -> Vec<Result<EngineOutcome, PodsError>> {
        let handles: Vec<Result<JobHandle, PodsError>> = jobs
            .iter()
            .map(|(program, args)| self.submit(program, args))
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.and_then(JobHandle::wait))
            .collect()
    }
}

/// What a submitted job resolves to.
enum JobInner {
    /// The outcome is already available (modelled engines run eagerly).
    Ready(Box<Result<EngineOutcome, PodsError>>),
    /// A native job in flight on the pool.
    Native(NativeJobHandle),
}

/// A handle to one submitted job on a [`Runtime`].
pub struct JobHandle {
    inner: JobInner,
}

impl JobHandle {
    /// Whether the job has already completed (successfully or not).
    /// `wait` will not block once this returns `true`.
    pub fn is_done(&self) -> bool {
        match &self.inner {
            JobInner::Ready(_) => true,
            JobInner::Native(handle) => handle.is_done(),
        }
    }

    /// Blocks until the job completes and returns its outcome.
    ///
    /// # Errors
    ///
    /// Returns whatever the engine reported for this job — errors are
    /// job-scoped and never poison the pool or other jobs.
    pub fn wait(self) -> Result<EngineOutcome, PodsError> {
        match self.inner {
            JobInner::Ready(outcome) => *outcome,
            JobInner::Native(handle) => handle.wait(),
        }
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("done", &self.is_done())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineStats;
    use crate::pipeline::compile;

    fn native_stats(outcome: &EngineOutcome) -> crate::engine::NativeStats {
        match &outcome.stats {
            EngineStats::Native { stats, .. } => *stats,
            other => panic!("expected native stats, got {other:?}"),
        }
    }

    #[test]
    fn builder_configures_all_knobs() {
        let runtime = Runtime::builder(EngineKind::Sim)
            .workers(3)
            .page_size(16)
            .remote_page_cache(false)
            .max_events(10_000)
            .build();
        assert_eq!(runtime.kind(), EngineKind::Sim);
        assert_eq!(runtime.workers(), 3);
        assert_eq!(runtime.options().page_size, 16);
        assert!(!runtime.options().remote_page_cache);
        assert_eq!(runtime.options().max_events, 10_000);
        assert_eq!(runtime.pool_id(), None);
        assert!(format!("{runtime:?}").contains("Sim"));
    }

    #[test]
    fn sequential_runs_share_one_pool() {
        let program =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i + 1; } return a; }")
                .unwrap();
        let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
        let first = runtime.run(&program, &[Value::Int(8)]).unwrap();
        let second = runtime.run(&program, &[Value::Int(12)]).unwrap();
        let (s1, s2) = (native_stats(&first), native_stats(&second));
        assert_eq!(s1.pool_id, runtime.pool_id().unwrap());
        assert_eq!(s1.pool_id, s2.pool_id, "pool was not reused");
        assert_eq!(s1.job_seq, 1);
        assert_eq!(s2.job_seq, 2);
        assert!(second.returned_array().unwrap().is_complete());
    }

    #[test]
    fn modelled_engines_run_through_the_runtime_too() {
        let program = compile("def main(n) { return n * 3; }").unwrap();
        for kind in [EngineKind::Sim, EngineKind::Seq, EngineKind::Pr] {
            let runtime = Runtime::builder(kind).workers(2).build();
            let handle = runtime.submit(&program, &[Value::Int(5)]).unwrap();
            assert!(handle.is_done(), "{kind}: modelled jobs are eager");
            let outcome = handle.wait().unwrap();
            assert_eq!(outcome.return_value, Some(Value::Int(15)), "{kind}");
            assert_eq!(outcome.engine, kind.name());
        }
    }

    #[test]
    fn run_many_executes_batches_with_mixed_outcomes() {
        let good = compile("def main(n) { return n + 1; }").unwrap();
        let bad = compile("def main(n) { a = array(n); a[0] = 1; return a[1]; }").unwrap();
        let runtime = Runtime::builder(EngineKind::Native).workers(2).build();
        let args3: &[Value] = &[Value::Int(3)];
        let args9: &[Value] = &[Value::Int(9)];
        let results = runtime.run_many(&[(&good, args3), (&bad, args3), (&good, args9)]);
        assert_eq!(results.len(), 3);
        assert_eq!(
            results[0].as_ref().unwrap().return_value,
            Some(Value::Int(4))
        );
        assert!(results[1].is_err(), "deadlock job must fail alone");
        assert_eq!(
            results[2].as_ref().unwrap().return_value,
            Some(Value::Int(10))
        );
    }

    #[test]
    fn invocation_errors_surface_at_submit() {
        let program = compile("def main(n) { return n; }").unwrap();
        let runtime = Runtime::new(EngineKind::Native);
        assert!(matches!(
            runtime.submit(&program, &[]),
            Err(PodsError::ArgumentMismatch {
                expected: 1,
                got: 0
            })
        ));
    }
}
