//! The Pingali & Rogers static-compilation estimator engine.

use super::seq::{baseline_snapshots, map_baseline_error};
use super::{check_invocation, Engine, EngineOutcome, EngineStats};
use crate::error::PodsError;
use crate::pipeline::{CompiledProgram, RunOptions};
use pods_baseline::{run_sequential_bounded, PrModel};
use pods_istructure::Value;
use pods_machine::TimingModel;
use std::time::Instant;

/// Models the execution of the program under a statically-scheduled,
/// bulk-synchronous SPMD system (the "P&R" comparator of Figure 10). The
/// estimate is driven by a real sequential run, so the outcome carries the
/// oracle's arrays and return value together with the modelled parallel
/// time on `opts.num_pes` PEs.
#[derive(Debug, Clone, Default)]
pub struct PrEstimateEngine {
    /// The underlying cost model (timing constants, halo width).
    pub model: PrModel,
}

impl Engine for PrEstimateEngine {
    fn name(&self) -> &'static str {
        "pr"
    }

    fn description(&self) -> &'static str {
        "Pingali & Rogers static-compilation cost model (modelled time on N PEs)"
    }

    fn run(
        &self,
        program: &CompiledProgram,
        args: &[Value],
        opts: &RunOptions,
    ) -> Result<EngineOutcome, PodsError> {
        check_invocation(program, args)?;
        let start = Instant::now();
        let run = run_sequential_bounded(
            program.hir(),
            args,
            &TimingModel::default(),
            opts.max_events,
        )
        .map_err(|e| map_baseline_error(e, opts.max_events))?;
        let point = self.model.estimate(&run, opts.num_pes);
        let wall_us = start.elapsed().as_secs_f64() * 1e6;
        Ok(EngineOutcome {
            engine: self.name(),
            return_value: run.return_value,
            arrays: baseline_snapshots(&run),
            modelled_us: Some(point.elapsed_us),
            wall_us,
            stats: EngineStats::Estimated { point },
            diagnostics: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;

    #[test]
    fn estimate_speeds_up_parallel_loops() {
        let program = compile(
            r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 { a[i, j] = sqrt(i * 1.0) + j; }
                }
                return a;
            }
            "#,
        )
        .unwrap();
        let engine = PrEstimateEngine::default();
        let one = engine
            .run(&program, &[Value::Int(32)], &RunOptions::with_pes(1))
            .unwrap();
        let eight = engine
            .run(&program, &[Value::Int(32)], &RunOptions::with_pes(8))
            .unwrap();
        assert!(eight.modelled_us.unwrap() < one.modelled_us.unwrap());
        assert!(matches!(
            eight.stats,
            EngineStats::Estimated { point } if point.speedup > 1.0
        ));
        // The estimate rides on a real sequential run, so arrays are real.
        assert!(eight.returned_array().unwrap().is_complete());
    }
}
