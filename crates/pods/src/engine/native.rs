//! The native multi-threaded parallel engine.
//!
//! Where [`super::SimEngine`] *models* iteration-level parallelism on
//! simulated PEs, this engine *runs* it: the partitioned SP program executes
//! on a pool of real OS threads (one "virtual PE" per worker), iteration
//! instances are spawned per the partitioner's distribution decisions
//! (distributing allocate, `LD`, Range Filters), and instances synchronise
//! through the thread-safe I-structure store
//! ([`pods_istructure::SharedArrayStore`]) — write-once cells whose deferred
//! readers are re-activated by the eventual write, exactly the paper's
//! presence-bit protocol lifted onto threads.
//!
//! Scheduling mirrors the paper's blocked/ready instance model rather than
//! blocking OS threads: when an instance needs an operand that has not
//! arrived (an unwritten array element or an outstanding function return),
//! the *instance* is parked and the worker thread moves on to other work.
//! The write (or return) that produces the operand delivers it into the
//! parked frame and re-enqueues the instance. This makes the engine
//! deadlock-free under any scheduling order a correct program allows, and
//! lets it detect true deadlocks exactly: when no task of a job is queued or
//! running but instances remain parked, no future delivery can happen.
//!
//! The pool is work-stealing: each worker owns a deque, pushes the instances
//! it spawns or wakes locally (loop bodies stay near their Range-Filtered
//! parent), and steals from siblings when idle — `std` threads, mutexes and
//! condvars only, no unsafe code.
//!
//! # Pool lifecycle vs per-job state
//!
//! The paper's speed-ups depend on amortising spawn/steal overhead, so the
//! pool is split into two layers:
//!
//! * [`NativePool`] owns the *long-lived* machinery: the worker threads,
//!   their deques, and the shared condvar. A pool outlives any single
//!   program execution; [`crate::Runtime`] keeps one alive across calls.
//! * [`Job`] owns everything scoped to *one* program execution: the SP
//!   program, its I-structure store, the parked-instance registry and
//!   mailbox, liveness counters (for per-job deadlock detection), the
//!   first-error slot, and the result. Tasks carry an `Arc<Job>`, so any
//!   number of jobs can be in flight on one pool without cross-talk.
//!
//! The one-shot [`NativeParallelEngine`] (the `Engine`-trait cold path)
//! simply creates a transient pool, submits one job, waits, and tears the
//! pool down — [`crate::Runtime::run`] is the amortised path.
//!
//! # Warm-path cost model
//!
//! Three further overheads are amortised so that a warm run pays only for
//! job execution, not job setup (the paper batches token routing — ~20
//! tokens per message — for exactly this reason):
//!
//! * **Shared program state** ([`JobSpec`]): the partitioned SP program and
//!   the per-template read-slot tables travel as `Arc`s, built once by
//!   [`crate::Runtime::prepare`] (or its internal cache) and shared by every
//!   job — warm submissions skip the clone/partition/table-build entirely.
//! * **Batched wake-up delivery**: a writer that fills many I-structure
//!   elements in one task accumulates the `(waiter, value)` wake-ups in a
//!   per-worker buffer ([`pods_istructure::SharedArray::write_into`]
//!   appends straight into it) and flushes them in a single scheduler-lock transaction, instead of
//!   one lock round trip per deferred reader. The buffer is bounded by the
//!   job's `delivery_batch` and force-flushed at every task boundary (park,
//!   finish, error), so deadlock detection observes exactly the same
//!   liveness it would unbatched and no parked instance can be stranded
//!   behind an unflushed buffer.
//! * **Per-worker instance arenas**: finished instances return their frame
//!   (the operand-slot vector) to a free-list owned by the worker thread;
//!   fine-grained loops that spawn an instance per iteration recycle frames
//!   instead of hammering the allocator.

use super::{
    cancellation_error, check_invocation, Engine, EngineOutcome, EngineStats, InstanceArena,
    JobCounts,
};
use crate::error::PodsError;
use crate::pipeline::{CompiledProgram, RunOptions};
use crate::trace::{TraceEventKind, TraceHandle};
use pods_istructure::{
    ArrayHeader, ArrayId, Partitioning, PeId, SharedArrayStore, SharedReadResult, StoreStats, Value,
};
use pods_machine::{ArraySnapshot, InstanceId, SimulationError};
use pods_partition::PartitionReport;
use pods_sp::exec::{self, ArrayOps, ExecCtx, ExecEvent, Loaded, RunExit, TraceSink};
use pods_sp::{Operand, SlotId, SpId, SpProgram};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Re-exports of the shared core's read-slot machinery under the names the
/// rest of the `pods` crate historically used.
pub(crate) use pods_sp::exec::{build_read_slots, ReadSlots};

/// Executes the partitioned SP program on a real work-stealing thread pool
/// with `opts.num_pes` workers. Reports wall-clock time — the only honest
/// clock for native execution.
///
/// This is the *cold* path: every `run` spins up a fresh pool and tears it
/// down afterwards. To reuse one pool across many runs (amortising thread
/// spawn and warm-up, the whole point of iteration-level parallelism), use
/// [`crate::Runtime`] with [`crate::EngineKind::Native`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeParallelEngine;

/// Counters reported by the native thread pool for one job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Number of worker threads in the pool that ran the job.
    pub workers: usize,
    /// SP instances created over the run.
    pub instances: u64,
    /// Task executions, counting each resume of a parked instance.
    pub tasks: u64,
    /// Times an instance was parked waiting for an operand.
    pub parks: u64,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Process-unique identity of the worker pool that executed the job.
    /// Two runs on the same [`crate::Runtime`] report the same `pool_id`
    /// (the worker threads were reused); two cold
    /// [`CompiledProgram::run_on`] calls report different ones.
    pub pool_id: u64,
    /// 1-based sequence number of this job on its pool. A reused pool
    /// reports 1, 2, 3, … across successive submissions.
    pub job_seq: u64,
    /// Wake-up values delivered: one per `(waiter, value)` pair a write
    /// re-activated or mailed to its target instance, *plus* one per
    /// function-return value routed back to a calling instance (returns
    /// travel through the same delivery path).
    pub wakeups: u64,
    /// Scheduler-lock transactions spent delivering those wake-ups. Equals
    /// `wakeups` when every delivery travels alone; batched delivery
    /// coalesces up to `delivery_batch` wake-ups per transaction, so this
    /// drops well below `wakeups` on read-heavy workloads.
    pub wakeup_flushes: u64,
    /// Instances whose frame was recycled from a worker's arena free-list
    /// instead of freshly allocated.
    pub arena_reuses: u64,
    /// Extra loop iterations absorbed by chunked instances: each time the
    /// chunk driver advanced an instance to its next iteration in place
    /// (instead of a fresh spawn) this grows by one. `0` when the program
    /// ran unchunked.
    pub chunk_iterations: u64,
    /// Super-op firings: each time the specialized driver passed a hoisted
    /// firing check and executed a whole fused run as one dispatch. `0`
    /// when the program ran without a specialization plan
    /// (`PODS_SPECIALIZE=0` or [`crate::RuntimeBuilder::specialize`]).
    pub super_ops: u64,
    /// Chunk-size retunes applied by [`crate::Runtime`]'s adaptive grain
    /// control before this job ran (0 on the first run of a program and
    /// whenever the chunk policy is fixed).
    pub chunks_autotuned: u64,
    /// Allocation counters of this job's I-structure store (live/peak
    /// arrays and approximate bytes).
    pub store: StoreStats,
}

impl NativeStats {
    /// SP instances actually created over the run (alias of `instances`,
    /// named for symmetry with [`Self::iterations_per_instance`]).
    pub fn instances_spawned(&self) -> u64 {
        self.instances
    }

    /// Effective grain: average loop iterations executed per spawned
    /// instance. `1.0` for an unchunked run (every iteration was its own
    /// instance); grows toward the chunk size as chunking takes hold.
    pub fn iterations_per_instance(&self) -> f64 {
        if self.instances == 0 {
            return 0.0;
        }
        (self.instances + self.chunk_iterations) as f64 / self.instances as f64
    }
}

impl std::fmt::Display for NativeStats {
    /// One-line human summary, shared by the examples and the slow-job
    /// diagnostics (see [`super::EngineStats::summary`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "native: {} worker(s), {} instances ({:.1} iter/instance), {} tasks, \
             {} super-ops, {} parks, {} steals, {} wakeups in {} flushes, peak {} arrays",
            self.workers,
            self.instances,
            self.iterations_per_instance(),
            self.tasks,
            self.super_ops,
            self.parks,
            self.steals,
            self.wakeups,
            self.wakeup_flushes,
            self.store.peak_arrays,
        )
    }
}

/// `(instance, slot)` continuation tag: where a produced value must go.
type NativeWaiter = (InstanceId, SlotId);

/// The run-time frame of one native SP instance.
#[derive(Debug)]
struct NInstance {
    id: InstanceId,
    template: SpId,
    /// The virtual PE this instance runs as (drives Range Filters).
    pe: usize,
    pc: usize,
    slots: Vec<Option<Value>>,
    return_to: Option<NativeWaiter>,
}

impl NInstance {
    fn slot(&self, slot: SlotId) -> Option<Value> {
        self.slots.get(slot.index()).copied().flatten()
    }

    fn is_present(&self, slot: SlotId) -> bool {
        self.slot(slot).is_some()
    }

    fn set_slot(&mut self, slot: SlotId, value: Value) {
        if slot.index() < self.slots.len() {
            self.slots[slot.index()] = Some(value);
        }
    }

    fn clear_slot(&mut self, slot: SlotId) {
        if slot.index() < self.slots.len() {
            self.slots[slot.index()] = None;
        }
    }
}

/// An instance parked on a missing operand.
struct Blocked {
    inst: NInstance,
    slot: SlotId,
}

/// Per-task memo of array directory lookups (see
/// [`crate::engine::ArrayCache`], shared with the async engine).
type ArrayCache = crate::engine::ArrayCache<NativeWaiter>;

/// Everything program-shaped a job needs, in `Arc`-shared form so warm
/// submissions of the same prepared program pay zero setup: the partitioned
/// SP program, its read-slot tables, the partition report (for the
/// outcome), and the per-job execution knobs. Consumed by both pooled
/// schedulers — the native thread pool and the async cooperative executor —
/// so one [`crate::PreparedProgram`] handle serves either engine.
pub(crate) struct JobSpec {
    pub program: Arc<SpProgram>,
    pub read_slots: Arc<ReadSlots>,
    pub partition: PartitionReport,
    pub page_size: usize,
    /// 0 = unlimited; otherwise abort after this many task executions.
    pub max_tasks: u64,
    /// Max wake-ups buffered per worker before a forced flush (>= 1; 1
    /// flushes after every write, i.e. unbatched delivery).
    pub delivery_batch: usize,
    /// How many times adaptive grain control re-partitioned this program
    /// with a larger chunk before this submission (reported in the stats;
    /// 0 for cold runs and fixed chunk policies).
    pub chunks_autotuned: u64,
    /// Completion hook: fired exactly once when the job finishes (success,
    /// failure, or cancellation), with the final allocation statistics of
    /// the job's I-structure store. Installed by the `Runtime`'s service
    /// layer to drive its metrics and dispatch window; `None` on the cold
    /// `Engine`-trait path.
    pub on_done: Option<JobNotifier>,
    /// Flight-recorder handle: when present, the scheduler and the exec
    /// core emit trace events for this job (see [`crate::trace`]). `None`
    /// (tracing disabled) costs one branch per would-be event.
    pub trace: Option<TraceHandle>,
}

/// The completion callback a [`JobSpec`] can carry (see
/// [`JobSpec::on_done`]). Shared by both pooled schedulers.
pub(crate) type JobNotifier = Arc<dyn Fn(StoreStats) + Send + Sync>;

impl JobSpec {
    /// The cold-path constructor: partitions the program and builds the
    /// read-slot tables for this one submission (the `Engine`-trait path and
    /// the native tests; [`crate::Runtime`] amortises this via
    /// [`crate::PreparedProgram`]).
    pub(crate) fn from_options(program: &CompiledProgram, opts: &RunOptions) -> JobSpec {
        let (partitioned, partition) = program.partitioned(opts);
        let read_slots = build_read_slots(&partitioned);
        JobSpec {
            program: Arc::new(partitioned),
            read_slots: Arc::new(read_slots),
            partition,
            page_size: opts.page_size,
            max_tasks: opts.max_events,
            delivery_batch: opts.delivery_batch.max(1),
            chunks_autotuned: 0,
            on_done: None,
            trace: None,
        }
    }
}

/// State owned by one worker thread and reused across every task it runs:
/// the instance arena, the wake-up delivery buffer, and a scratch vector for
/// marshalling spawn arguments. All three exist to keep per-iteration
/// allocations and lock acquisitions off the warm path.
#[derive(Default)]
struct WorkerCtx {
    arena: InstanceArena,
    /// Buffered wake-ups of the job currently executing. Invariant: empty
    /// between tasks — every exit path of `run_instance` flushes (on
    /// progress) or clears (when the job is already failing) the buffer, so
    /// deliveries can never leak into another job.
    delivery: Vec<(NativeWaiter, Value)>,
    spawn_args: Vec<Value>,
}

/// Parked-instance registry plus the mailbox for values that arrive while
/// their target instance is queued or running.
#[derive(Default)]
struct Sched {
    blocked: HashMap<InstanceId, Blocked>,
    mailbox: HashMap<InstanceId, Vec<(SlotId, Value)>>,
}

/// Everything scoped to one submitted program execution. Tasks reference
/// their job through an `Arc`, so concurrent jobs on one pool have fully
/// disjoint instance namespaces, I-structure stores, schedulers, deadlock
/// detection, and error/result slots.
struct Job {
    /// 1-based submission sequence number on the owning pool.
    seq: u64,
    /// Identity of the owning pool (for reuse assertions / stats).
    pool_id: u64,
    program: Arc<SpProgram>,
    /// Shared read-slot tables (see [`ReadSlots`]); built once per prepared
    /// program, not per job.
    read_slots: Arc<ReadSlots>,
    store: SharedArrayStore<NativeWaiter>,
    sched: Mutex<Sched>,
    counts: Mutex<JobCounts>,
    /// Set on first error (or cancellation): workers abandon this job's
    /// tasks instead of running them.
    stop: AtomicBool,
    error: Mutex<Option<SimulationError>>,
    result: Mutex<Option<Value>>,
    done: Mutex<bool>,
    done_cv: Condvar,
    entry: InstanceId,
    /// Virtual-PE count for partitioning decisions (= pool worker count).
    workers: usize,
    page_size: usize,
    /// 0 = unlimited; otherwise abort after this many task executions
    /// (the native analogue of the simulator's event limit).
    max_tasks: u64,
    /// Max wake-ups buffered per worker before a forced flush (1 =
    /// unbatched).
    delivery_batch: usize,
    /// Adaptive-grain retunes applied before this job (see [`JobSpec`]).
    chunks_autotuned: u64,
    /// Completion hook (see [`JobSpec::on_done`]); fired exactly once, by
    /// whichever of normal completion / failure / cancellation wins.
    on_done: Option<JobNotifier>,
    /// Flight-recorder handle (see [`JobSpec::trace`]).
    trace: Option<TraceHandle>,
    /// First-wins claim on the terminal transition, separate from `done` so
    /// the hook can run *before* `done` is published (waiters must never
    /// observe a finished job whose hook has not fired yet).
    finished: AtomicBool,
    next_instance: AtomicU64,
    next_array: AtomicUsize,
    tasks: AtomicU64,
    parks: AtomicU64,
    steals: AtomicU64,
    wakeups: AtomicU64,
    wakeup_flushes: AtomicU64,
    arena_reuses: AtomicU64,
    chunk_iterations: AtomicU64,
    super_ops: AtomicU64,
}

impl Job {
    /// Records the error and stops the job (not the pool). A no-op if the
    /// job already finished: the first of normal completion / failure /
    /// cancellation wins, so a cancel racing a finished job can neither
    /// clobber its result nor re-fire the completion hook.
    fn fail(&self, err: SimulationError) {
        self.stop.store(true, Ordering::SeqCst);
        self.finish(Some(err));
    }

    /// Marks the job finished and wakes every `wait`er.
    fn complete(&self) {
        self.finish(None);
    }

    /// The single completion point: flips `done` exactly once, records the
    /// error (if any) while still holding the `done` lock (so `wait`, which
    /// reads the error only after observing `done`, sees it), then — with
    /// no locks held — wakes waiters and fires the `on_done` hook.
    fn finish(&self, err: Option<SimulationError>) {
        // First caller wins; a cancel racing normal completion is dropped.
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(e) = err {
            *self.error.lock().expect("error poisoned") = Some(e);
        }
        // The hook runs before `done` is published: once a waiter observes
        // completion, the service metrics already include this job. No
        // locks are held here, so the hook may take the service locks.
        if let Some(hook) = &self.on_done {
            hook(self.store.stats());
        }
        *self.done.lock().expect("done poisoned") = true;
        self.done_cv.notify_all();
    }

    fn is_done(&self) -> bool {
        *self.done.lock().expect("done poisoned")
    }

    fn stats(&self) -> NativeStats {
        NativeStats {
            workers: self.workers,
            instances: self.next_instance.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            pool_id: self.pool_id,
            job_seq: self.seq,
            wakeups: self.wakeups.load(Ordering::Relaxed),
            wakeup_flushes: self.wakeup_flushes.load(Ordering::Relaxed),
            arena_reuses: self.arena_reuses.load(Ordering::Relaxed),
            chunk_iterations: self.chunk_iterations.load(Ordering::Relaxed),
            super_ops: self.super_ops.load(Ordering::Relaxed),
            chunks_autotuned: self.chunks_autotuned,
            store: self.store.stats(),
        }
    }
}

/// A runnable unit on the pool: one instance of one job.
struct Task {
    job: Arc<Job>,
    inst: NInstance,
}

/// Pool-wide scheduling state shared by the workers and submitters.
struct PoolCoord {
    /// Queued tasks across all deques (the condvar predicate for idle
    /// workers).
    ready: isize,
    /// Set only when the pool itself is being torn down.
    shutdown: bool,
}

/// Process-unique pool identities, so tests (and users) can assert that two
/// runs really shared one set of worker threads. Shared with the async
/// cooperative executor: no two pools of either kind ever report the same
/// id.
pub(crate) static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

struct PoolShared {
    id: u64,
    workers: usize,
    queues: Vec<Mutex<VecDeque<Task>>>,
    coord: Mutex<PoolCoord>,
    cv: Condvar,
    jobs_submitted: AtomicU64,
    /// Cheap teardown flag checked on the workers' hot paths (between
    /// tasks and between instructions), so dropping the pool aborts
    /// in-flight jobs at the next instruction boundary instead of running
    /// every queued task to completion first.
    stop: AtomicBool,
}

impl PoolShared {
    fn lock_coord(&self) -> std::sync::MutexGuard<'_, PoolCoord> {
        self.coord.lock().expect("coord poisoned")
    }

    /// No queued or running task of the job remains but instances are still
    /// parked: nothing can ever deliver their operands.
    fn report_deadlock(&self, job: &Job) {
        let sched = job.sched.lock().expect("sched poisoned");
        let stuck = sched.blocked.len();
        let detail = sched
            .blocked
            .values()
            .next()
            .map(|b| {
                let template = job.program.template(b.inst.template);
                format!(
                    "inst{} of {} parked at pc {} on {}",
                    b.inst.id.0, template.name, b.inst.pc, b.slot
                )
            })
            .unwrap_or_default();
        drop(sched);
        job.fail(SimulationError::Deadlock {
            stuck_instances: stuck.max(1),
            detail,
        });
    }

    /// Makes a task runnable on worker `w`'s deque. `new` marks a freshly
    /// created instance (as opposed to a woken one).
    fn enqueue(&self, w: usize, job: &Arc<Job>, inst: NInstance, new: bool) {
        {
            let mut c = job.counts.lock().expect("counts poisoned");
            if new {
                c.live += 1;
            }
            c.in_flight += 1;
        }
        self.lock_coord().ready += 1;
        self.queues[w]
            .lock()
            .expect("queue poisoned")
            .push_back(Task {
                job: Arc::clone(job),
                inst,
            });
        self.cv.notify_one();
    }

    #[allow(clippy::too_many_arguments)] // hot path: a params struct would be built per spawn
    fn spawn_instance(
        &self,
        w: usize,
        job: &Arc<Job>,
        template_id: SpId,
        args: &[Value],
        pe: usize,
        return_to: Option<NativeWaiter>,
        arena: &mut InstanceArena,
    ) {
        let id = InstanceId(job.next_instance.fetch_add(1, Ordering::Relaxed));
        let num_slots = job.program.template(template_id).num_slots;
        let (slots, reused) = arena.frame(num_slots, args);
        if reused {
            job.arena_reuses.fetch_add(1, Ordering::Relaxed);
        }
        let inst = NInstance {
            id,
            template: template_id,
            pe,
            pc: 0,
            slots,
            return_to,
        };
        if let Some(t) = &job.trace {
            t.emit(w as u32, id.0, TraceEventKind::InstanceSpawned);
        }
        self.enqueue(w, job, inst, true);
    }

    /// Pops the next task: own deque first (LIFO end for locality), then
    /// steal from siblings (FIFO end, taking the oldest work).
    fn pop_task(&self, w: usize) -> Option<Task> {
        let own = self.queues[w].lock().expect("queue poisoned").pop_back();
        let task = own.or_else(|| {
            (1..self.workers).find_map(|i| {
                let victim = (w + i) % self.workers;
                let stolen = self.queues[victim]
                    .lock()
                    .expect("queue poisoned")
                    .pop_front();
                if let Some(t) = &stolen {
                    t.job.steals.fetch_add(1, Ordering::Relaxed);
                    if let Some(tr) = &t.job.trace {
                        tr.emit(
                            w as u32,
                            t.inst.id.0,
                            TraceEventKind::Steal {
                                from: victim as u32,
                            },
                        );
                    }
                }
                stolen
            })
        });
        if task.is_some() {
            self.lock_coord().ready -= 1;
        }
        task
    }

    /// Delivers every buffered wake-up of `buf` in one scheduler
    /// transaction: one `sched` lock to fill slots / route mailboxes, one
    /// `counts` + `coord` + deque lock to enqueue everything that woke.
    /// Called when the buffer reaches the job's `delivery_batch` and at
    /// every task boundary (park, finish), so batching changes *when* locks
    /// are taken, never *whether* a wake-up happens before the liveness
    /// counters can observe the task as idle.
    fn flush(&self, w: usize, job: &Arc<Job>, buf: &mut Vec<(NativeWaiter, Value)>) {
        if buf.is_empty() {
            return;
        }
        job.wakeups.fetch_add(buf.len() as u64, Ordering::Relaxed);
        job.wakeup_flushes.fetch_add(1, Ordering::Relaxed);
        let mut to_wake: Vec<NInstance> = Vec::new();
        {
            let mut sched = job.sched.lock().expect("sched poisoned");
            for (waiter, value) in buf.drain(..) {
                let (target, slot) = waiter;
                if let Some(b) = sched.blocked.get_mut(&target) {
                    b.inst.set_slot(slot, value);
                    if b.slot == slot {
                        let woken = sched.blocked.remove(&target).expect("checked above");
                        to_wake.push(woken.inst);
                    }
                } else {
                    sched.mailbox.entry(target).or_default().push((slot, value));
                }
            }
        }
        if to_wake.is_empty() {
            return;
        }
        let woken = to_wake.len();
        {
            let mut c = job.counts.lock().expect("counts poisoned");
            c.in_flight += woken;
        }
        self.lock_coord().ready += woken as isize;
        {
            let mut q = self.queues[w].lock().expect("queue poisoned");
            for inst in to_wake {
                if let Some(t) = &job.trace {
                    t.emit(w as u32, inst.id.0, TraceEventKind::Resumed);
                }
                q.push_back(Task {
                    job: Arc::clone(job),
                    inst,
                });
            }
        }
        if woken == 1 {
            self.cv.notify_one();
        } else {
            self.cv.notify_all();
        }
    }

    /// Parks `inst` waiting on `slot`, unless a mailbox delivery already
    /// filled it — in that case the instance is handed back for the worker
    /// to keep running.
    fn park(&self, job: &Arc<Job>, mut inst: NInstance, slot: SlotId) -> Option<NInstance> {
        let mut sched = job.sched.lock().expect("sched poisoned");
        if let Some(msgs) = sched.mailbox.remove(&inst.id) {
            for (s, v) in msgs {
                inst.set_slot(s, v);
            }
        }
        if inst.is_present(slot) {
            return Some(inst);
        }
        sched.blocked.insert(inst.id, Blocked { inst, slot });
        drop(sched);
        job.parks.fetch_add(1, Ordering::Relaxed);
        let mut c = job.counts.lock().expect("counts poisoned");
        c.in_flight -= 1;
        let deadlocked = c.in_flight == 0 && c.live > 0 && !job.stop.load(Ordering::Relaxed);
        drop(c);
        if deadlocked {
            self.report_deadlock(job);
        }
        None
    }

    /// Terminates an instance, routing its return value through the
    /// delivery buffer and flushing it (a task boundary) before the
    /// liveness counters give up this task's `in_flight` slot.
    fn finish(
        &self,
        w: usize,
        job: &Arc<Job>,
        inst: NInstance,
        value: Option<Value>,
        delivery: &mut Vec<(NativeWaiter, Value)>,
    ) {
        if inst.id == job.entry {
            *job.result.lock().expect("result poisoned") = value;
        } else if let (Some(ret), Some(v)) = (inst.return_to, value) {
            delivery.push((ret, v));
        }
        self.flush(w, job, delivery);
        let mut c = job.counts.lock().expect("counts poisoned");
        c.in_flight -= 1;
        c.live -= 1;
        let all_done = c.live == 0;
        let deadlocked = !all_done && c.in_flight == 0 && !job.stop.load(Ordering::Relaxed);
        drop(c);
        if all_done {
            job.complete();
        } else if deadlocked {
            self.report_deadlock(job);
        }
    }

    /// Accounting for a task abandoned because its job errored out.
    fn abandon(&self, job: &Job) {
        let mut c = job.counts.lock().expect("counts poisoned");
        c.in_flight -= 1;
        c.live -= 1;
    }

    /// Runs one instance until it finishes, parks, or its job stops. The
    /// instruction semantics live in the shared core
    /// ([`pods_sp::exec::run_instance`]); this method supplies the native
    /// suspension strategy — park in the job's blocked registry with a
    /// mailbox re-check, resume in place when the mailbox already held the
    /// awaited value.
    ///
    /// Delivery-buffer discipline: `ctx.delivery` is empty on entry and on
    /// every return. Progress exits (park, finish) *flush* — buffered
    /// wake-ups must be enqueued before this task's `in_flight` count is
    /// given up, or deadlock detection could observe a false idle. Failure
    /// exits (job error, cancellation) *clear* — the job is already failing
    /// and its waiters are released by `fail`, but the buffer must not leak
    /// into the next task, which may belong to another job.
    fn run_instance(&self, job: &Arc<Job>, mut inst: NInstance, w: usize, ctx: &mut WorkerCtx) {
        debug_assert!(ctx.delivery.is_empty(), "delivery buffer leaked a task");
        let executed = job.tasks.fetch_add(1, Ordering::Relaxed) + 1;
        if job.max_tasks > 0 && executed > job.max_tasks {
            job.fail(SimulationError::EventLimitExceeded {
                limit: job.max_tasks,
            });
            self.abandon(job);
            ctx.arena.recycle(std::mem::take(&mut inst.slots));
            return;
        }
        let program = Arc::clone(&job.program);
        let template = program.template(inst.template);
        let slot_table = &job.read_slots[inst.template.index()];
        let mut cache = ArrayCache::default();
        if let Some(t) = &job.trace {
            t.emit(w as u32, inst.id.0, TraceEventKind::RunBegin);
        }
        loop {
            let exit = {
                let mut cx = NativeCtx {
                    pool: self,
                    job,
                    inst: &mut inst,
                    cache: &mut cache,
                    w,
                    worker: ctx,
                    super_ops: 0,
                };
                exec::run_instance(
                    &mut cx,
                    &template.code,
                    slot_table,
                    template.chunk_meta.as_ref(),
                    template.plan.as_ref(),
                )
            };
            match exit {
                Ok(RunExit::Finished(v)) => {
                    if let Some(t) = &job.trace {
                        t.emit(w as u32, inst.id.0, TraceEventKind::RunEnd);
                    }
                    let frame = std::mem::take(&mut inst.slots);
                    self.finish(w, job, inst, v, &mut ctx.delivery);
                    ctx.arena.recycle(frame);
                    return;
                }
                Ok(RunExit::Blocked(slot)) => {
                    if let Some(t) = &job.trace {
                        t.emit(w as u32, inst.id.0, TraceEventKind::RunEnd);
                    }
                    self.flush(w, job, &mut ctx.delivery);
                    match self.park(job, inst, slot) {
                        Some(resumed) => {
                            if let Some(t) = &job.trace {
                                t.emit(w as u32, resumed.id.0, TraceEventKind::RunBegin);
                            }
                            inst = resumed;
                        }
                        None => return,
                    }
                }
                Ok(RunExit::Stopped) => {
                    if let Some(t) = &job.trace {
                        t.emit(w as u32, inst.id.0, TraceEventKind::RunEnd);
                    }
                    if !job.stop.load(Ordering::Relaxed) {
                        // The pool is being torn down: cut the job short so
                        // its waiter gets a cancellation error instead of
                        // hanging. (Otherwise the job itself already
                        // failed and this task is simply abandoned.)
                        job.fail(cancellation_error());
                    }
                    self.abandon(job);
                    ctx.delivery.clear();
                    ctx.arena.recycle(std::mem::take(&mut inst.slots));
                    return;
                }
                Err(msg) => {
                    if let Some(t) = &job.trace {
                        t.emit(w as u32, inst.id.0, TraceEventKind::RunEnd);
                    }
                    job.fail(SimulationError::Runtime(msg));
                    self.abandon(job);
                    ctx.delivery.clear();
                    ctx.arena.recycle(std::mem::take(&mut inst.slots));
                    return;
                }
            }
        }
    }

    fn worker(&self, w: usize) {
        let mut ctx = WorkerCtx::default();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                // Leave queued tasks in place: `Drop` drains them and fails
                // their jobs with the cancellation error.
                return;
            }
            if let Some(task) = self.pop_task(w) {
                self.run_instance(&task.job, task.inst, w, &mut ctx);
                continue;
            }
            let c = self.lock_coord();
            if c.shutdown {
                return;
            }
            if c.ready <= 0 {
                // Untimed wait is lost-wakeup-safe: `ready` is incremented
                // under this same mutex before the task is pushed, and the
                // notify fires after the push — so either this check sees
                // ready > 0, or the enqueuer's notify lands after the wait
                // has atomically released the lock. A persistent pool must
                // not poll: idle runtimes should cost nothing.
                let _unused = self.cv.wait(c).expect("coord poisoned");
            }
        }
    }
}

/// The native engine's execution context for the shared instruction core
/// (`pods_sp::exec`): one task execution of one instance. The semantics
/// live in the core; this adapter supplies the native *mechanics* — the
/// process-wide [`SharedArrayStore`] (with the per-task directory memo and
/// batched wake-up delivery), the worker-local spawn scratch and frame
/// arena, and the job/pool stop flags. Costs are free (`charge` keeps its
/// no-op default): the native engine's only honest clock is the wall.
struct NativeCtx<'a> {
    pool: &'a PoolShared,
    job: &'a Arc<Job>,
    inst: &'a mut NInstance,
    cache: &'a mut ArrayCache,
    w: usize,
    worker: &'a mut WorkerCtx,
    /// Super-op firings this run segment, flushed to the job counter on
    /// drop — one atomic per segment instead of one per firing, which is
    /// too hot a path for a shared cache line.
    super_ops: u64,
}

impl Drop for NativeCtx<'_> {
    fn drop(&mut self) {
        if self.super_ops > 0 {
            self.job
                .super_ops
                .fetch_add(self.super_ops, Ordering::Relaxed);
        }
    }
}

impl ArrayOps for NativeCtx<'_> {
    fn alloc_array(
        &mut self,
        dst: SlotId,
        name: &str,
        dims: &[usize],
        distributed: bool,
    ) -> Result<(), String> {
        let id = ArrayId(self.job.next_array.fetch_add(1, Ordering::Relaxed));
        let total: usize = dims.iter().product();
        let partitioning = if distributed {
            Partitioning::new(total, self.job.page_size, self.job.workers)
        } else {
            Partitioning::single_owner(
                total,
                self.job.page_size,
                self.job.workers,
                PeId(self.inst.pe),
            )
        };
        self.job
            .store
            .allocate(
                id,
                name.to_string(),
                pods_istructure::ArrayShape::new(dims.to_vec()),
                partitioning,
            )
            .map_err(|e| e.to_string())?;
        self.inst.set_slot(dst, Value::ArrayRef(id));
        Ok(())
    }

    fn with_header<R>(
        &mut self,
        id: ArrayId,
        f: impl FnOnce(&ArrayHeader) -> R,
    ) -> Result<R, String> {
        let shared = self.cache.get(&self.job.store, id)?;
        Ok(f(shared.header()))
    }

    fn load_element(&mut self, id: ArrayId, offset: usize, dst: SlotId) -> Result<Loaded, String> {
        let shared = self.cache.get(&self.job.store, id)?;
        match shared
            .read(offset, (self.inst.id, dst))
            .map_err(|e| e.to_string())?
        {
            SharedReadResult::Present(v) => Ok(Loaded::Ready(v)),
            // The producing write will deliver into `dst` through the
            // scheduler (mailbox or parked-frame fill); split-phase, so the
            // core keeps the instance running until the value is consumed.
            SharedReadResult::Deferred => Ok(Loaded::Deferred),
        }
    }

    fn store_element(&mut self, id: ArrayId, offset: usize, value: Value) -> Result<(), String> {
        // Wake-ups land in the worker's delivery buffer; they are flushed
        // in one scheduler transaction when the buffer fills (or at the
        // next task boundary).
        {
            let shared = self.cache.get(&self.job.store, id)?;
            shared
                .write_into(offset, value, &mut self.worker.delivery)
                .map_err(|e| e.to_string())?;
        }
        if self.worker.delivery.len() >= self.job.delivery_batch {
            self.pool.flush(self.w, self.job, &mut self.worker.delivery);
        }
        Ok(())
    }
}

impl ExecCtx for NativeCtx<'_> {
    #[inline(always)]
    fn pc(&self) -> usize {
        self.inst.pc
    }

    #[inline(always)]
    fn set_pc(&mut self, pc: usize) {
        self.inst.pc = pc;
    }

    #[inline(always)]
    fn slot(&self, slot: SlotId) -> Option<Value> {
        self.inst.slot(slot)
    }

    #[inline(always)]
    fn set_slot(&mut self, slot: SlotId, value: Value) {
        self.inst.set_slot(slot, value);
    }

    #[inline(always)]
    fn clear_slot(&mut self, slot: SlotId) {
        self.inst.clear_slot(slot);
    }

    #[inline(always)]
    fn pe(&self) -> usize {
        self.inst.pe
    }

    #[inline(always)]
    fn should_stop(&self) -> bool {
        self.job.stop.load(Ordering::Relaxed) || self.pool.stop.load(Ordering::Relaxed)
    }

    #[inline(always)]
    fn chunk_advanced(&mut self) {
        self.job.chunk_iterations.fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    fn super_op_fired(&mut self) {
        self.super_ops += 1;
    }

    fn spawn(
        &mut self,
        target: SpId,
        args: &[Operand],
        distributed: bool,
        return_to: Option<SlotId>,
    ) -> Result<(), String> {
        // Marshal arguments into the worker's scratch vector (no per-spawn
        // allocation, and distributed spawns reuse one slice instead of
        // cloning per PE).
        let mut buf = std::mem::take(&mut self.worker.spawn_args);
        buf.clear();
        buf.extend(args.iter().map(|a| self.operand(a)));
        let ret = return_to.map(|slot| (self.inst.id, slot));
        if distributed {
            for q in 0..self.job.workers {
                let ret_here = if q == self.inst.pe { ret } else { None };
                self.pool.spawn_instance(
                    self.w,
                    self.job,
                    target,
                    &buf,
                    q,
                    ret_here,
                    &mut self.worker.arena,
                );
            }
        } else {
            self.pool.spawn_instance(
                self.w,
                self.job,
                target,
                &buf,
                self.inst.pe,
                ret,
                &mut self.worker.arena,
            );
        }
        self.worker.spawn_args = buf;
        Ok(())
    }

    #[inline(always)]
    fn trace_sink(&mut self) -> Option<&mut dyn TraceSink> {
        if self.job.trace.is_some() {
            Some(self)
        } else {
            None
        }
    }
}

impl TraceSink for NativeCtx<'_> {
    fn exec_event(&mut self, _pe: usize, ev: ExecEvent) {
        if let Some(t) = &self.job.trace {
            t.emit(self.w as u32, self.inst.id.0, TraceEventKind::from_exec(ev));
        }
    }
}

/// A persistent work-stealing worker pool: `workers` OS threads that stay
/// parked between jobs and execute any number of submitted jobs, serially
/// or concurrently. Dropping the pool joins the threads; outstanding jobs —
/// queued or in flight — are cut short (at the next instruction boundary)
/// and fail with a cancellation error rather than hanging their waiters.
pub(crate) struct NativePool {
    shared: Arc<PoolShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl NativePool {
    /// Spawns a pool of `workers` threads (at least one).
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            workers,
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            coord: Mutex::new(PoolCoord {
                ready: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            jobs_submitted: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let threads = (0..workers)
            .map(|w| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pods-native-{}-{w}", shared.id))
                    .spawn(move || s.worker(w))
                    .expect("spawn native worker")
            })
            .collect();
        NativePool { shared, threads }
    }

    /// Process-unique identity of this pool.
    pub(crate) fn id(&self) -> u64 {
        self.shared.id
    }

    /// Submits one prepared program for execution and returns a handle to
    /// wait on. The program state in the [`JobSpec`] is `Arc`-shared, so a
    /// warm submission allocates only per-job state (store, scheduler,
    /// counters) — no program clone, no re-partition, no read-slot rebuild.
    /// The entry instance is placed on a rotating home worker so that
    /// concurrent jobs spread across the pool.
    pub(crate) fn submit(&self, spec: JobSpec, args: &[Value]) -> NativeJobHandle {
        let started = Instant::now();
        let seq = self.shared.jobs_submitted.fetch_add(1, Ordering::Relaxed) + 1;
        let JobSpec {
            program,
            read_slots,
            partition,
            page_size,
            max_tasks,
            delivery_batch,
            chunks_autotuned,
            on_done,
            trace,
        } = spec;
        if let Some(t) = &trace {
            t.emit(t.service_lane(), 0, TraceEventKind::JobStarted);
        }
        let entry_template = program.entry();
        let job = Arc::new(Job {
            seq,
            pool_id: self.shared.id,
            program,
            read_slots,
            store: SharedArrayStore::new(),
            sched: Mutex::new(Sched::default()),
            counts: Mutex::new(JobCounts::default()),
            stop: AtomicBool::new(false),
            error: Mutex::new(None),
            result: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            entry: InstanceId(0),
            workers: self.shared.workers,
            page_size,
            max_tasks,
            delivery_batch: delivery_batch.max(1),
            chunks_autotuned,
            on_done,
            trace,
            finished: AtomicBool::new(false),
            next_instance: AtomicU64::new(0),
            next_array: AtomicUsize::new(0),
            tasks: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            wakeup_flushes: AtomicU64::new(0),
            arena_reuses: AtomicU64::new(0),
            chunk_iterations: AtomicU64::new(0),
            super_ops: AtomicU64::new(0),
        });
        let home = (seq as usize - 1) % self.shared.workers;
        // Submission happens off the worker threads, so the entry frame
        // comes from a throwaway arena (one allocation per job).
        let mut arena = InstanceArena::default();
        self.shared
            .spawn_instance(home, &job, entry_template, args, 0, None, &mut arena);
        NativeJobHandle {
            job,
            partition,
            started,
        }
    }
}

impl Drop for NativePool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        {
            self.shared.lock_coord().shutdown = true;
        }
        self.shared.cv.notify_all();
        for t in self.threads.drain(..) {
            t.join().expect("native worker panicked");
        }
        // Jobs still queued when the pool dies would otherwise hang their
        // waiters; fail them loudly instead.
        for q in &self.shared.queues {
            for task in q.lock().expect("queue poisoned").drain(..) {
                task.job.fail(cancellation_error());
            }
        }
    }
}

/// A handle to one submitted native job. `wait` blocks until the job
/// completes and assembles the uniform [`EngineOutcome`].
pub(crate) struct NativeJobHandle {
    job: Arc<Job>,
    partition: PartitionReport,
    started: Instant,
}

impl NativeJobHandle {
    /// Whether the job has already completed (successfully or not).
    pub(crate) fn is_done(&self) -> bool {
        self.job.is_done()
    }

    /// A detachable cancel token for this job, usable while (or after)
    /// `wait` consumes the handle.
    pub(crate) fn canceller(&self) -> NativeCanceller {
        NativeCanceller {
            job: Arc::clone(&self.job),
        }
    }

    /// Blocks until the job completes and returns its outcome.
    pub(crate) fn wait(self) -> Result<EngineOutcome, PodsError> {
        let mut done = self.job.done.lock().expect("done poisoned");
        while !*done {
            done = self.job.done_cv.wait(done).expect("done poisoned");
        }
        drop(done);
        if let Some(err) = self.job.error.lock().expect("error poisoned").take() {
            return Err(err.into());
        }
        let wall_us = self.started.elapsed().as_secs_f64() * 1e6;
        let arrays = self
            .job
            .store
            .snapshots()
            .into_iter()
            .map(|(id, name, shape, values)| ArraySnapshot {
                id,
                name,
                shape,
                values,
            })
            .collect();
        let return_value = self.job.result.lock().expect("result poisoned").take();
        Ok(EngineOutcome {
            engine: "native",
            return_value,
            arrays,
            modelled_us: None,
            wall_us,
            stats: EngineStats::Native {
                stats: self.job.stats(),
                partition: self.partition,
            },
            diagnostics: None,
        })
    }
}

/// Cancel token for one native job: stops the job at its next instruction
/// boundary with the supplied error, through the same stop-flag path that
/// pool teardown uses. A no-op if the job already finished.
#[derive(Clone)]
pub(crate) struct NativeCanceller {
    job: Arc<Job>,
}

impl NativeCanceller {
    /// Whether the job has already completed (successfully or not).
    pub(crate) fn is_done(&self) -> bool {
        self.job.is_done()
    }

    /// Stops the job with `err` unless it already finished.
    pub(crate) fn cancel(&self, err: SimulationError) {
        self.job.fail(err);
    }
}

impl Engine for NativeParallelEngine {
    fn name(&self) -> &'static str {
        "native"
    }

    fn description(&self) -> &'static str {
        "work-stealing thread pool over the shared I-structure store (wall-clock time on N threads)"
    }

    fn run(
        &self,
        program: &CompiledProgram,
        args: &[Value],
        opts: &RunOptions,
    ) -> Result<EngineOutcome, PodsError> {
        check_invocation(program, args)?;
        let start = Instant::now();
        let pool = NativePool::new(opts.num_pes.max(1));
        let handle = pool.submit(JobSpec::from_options(program, opts), args);
        let mut outcome = handle.wait()?;
        // The cold path owns the pool, so its wall-clock honestly includes
        // pool spawn and teardown-free run time measured from entry.
        outcome.wall_us = start.elapsed().as_secs_f64() * 1e6;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;

    fn run_native(src: &str, args: &[Value], workers: usize) -> EngineOutcome {
        let program = compile(src).unwrap();
        NativeParallelEngine
            .run(&program, args, &RunOptions::with_pes(workers))
            .unwrap()
    }

    #[test]
    fn scalar_and_function_calls() {
        let outcome = run_native(
            "def main(n) { x = double(n); return x + 1; } def double(v) { return v * 2; }",
            &[Value::Int(10)],
            2,
        );
        assert_eq!(outcome.return_value, Some(Value::Int(21)));
        assert!(matches!(
            outcome.stats,
            EngineStats::Native { stats, .. } if stats.workers == 2 && stats.instances >= 2
        ));
    }

    #[test]
    fn distributed_fill_is_complete_on_any_worker_count() {
        let src = r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 { a[i, j] = i * n + j; }
                }
                return a;
            }
        "#;
        let reference = run_native(src, &[Value::Int(8)], 1);
        let expected = reference.returned_array().unwrap().to_f64(-1.0);
        for workers in [2, 4, 8] {
            let outcome = run_native(src, &[Value::Int(8)], workers);
            let a = outcome.returned_array().unwrap();
            assert!(a.is_complete(), "incomplete on {workers} workers");
            assert_eq!(
                a.to_f64(-1.0),
                expected,
                "wrong values on {workers} workers"
            );
        }
    }

    #[test]
    fn consumers_park_until_producers_write() {
        let src = r#"
            def main(n) {
                a = array(n);
                for i = 0 to n - 1 { a[i] = i * 2; }
                s = a[n - 1] + a[0];
                return s;
            }
        "#;
        let outcome = run_native(src, &[Value::Int(10)], 4);
        assert_eq!(outcome.return_value, Some(Value::Int(18)));
    }

    #[test]
    fn carried_recurrence_is_computed_correctly() {
        let src = r#"
            def main(n) {
                src = array(n);
                for i = 0 to n - 1 { src[i] = i * 1.0; }
                acc = array(n);
                acc[0] = src[0];
                for i = 1 to n - 1 { acc[i] = acc[i - 1] + src[i]; }
                return acc;
            }
        "#;
        let outcome = run_native(src, &[Value::Int(16)], 4);
        let acc = outcome.returned_array().unwrap();
        assert!(acc.is_complete());
        assert_eq!(acc.get(&[15]), Some(Value::Float(120.0)));
    }

    #[test]
    fn single_assignment_violation_is_a_runtime_error() {
        let program =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[0] = i; } return 0; }")
                .unwrap();
        let err = NativeParallelEngine
            .run(&program, &[Value::Int(4)], &RunOptions::with_pes(1))
            .unwrap_err();
        assert!(
            matches!(err, PodsError::Simulation(SimulationError::Runtime(_))),
            "{err}"
        );
    }

    #[test]
    fn reading_a_never_written_element_is_detected_as_deadlock() {
        let program = compile("def main(n) { a = array(n); a[0] = 1; return a[1]; }").unwrap();
        for workers in [1, 4] {
            let err = NativeParallelEngine
                .run(&program, &[Value::Int(4)], &RunOptions::with_pes(workers))
                .unwrap_err();
            assert!(
                matches!(err, PodsError::Simulation(SimulationError::Deadlock { .. })),
                "workers={workers}: {err}"
            );
        }
    }

    #[test]
    fn task_limit_aborts_runaway_runs() {
        let program = compile(
            "def main(n) { a = matrix(n, n); for i = 0 to n - 1 { for j = 0 to n - 1 { a[i, j] = i + j; } } return a; }",
        )
        .unwrap();
        let mut opts = RunOptions::with_pes(2);
        opts.max_events = 3;
        let err = NativeParallelEngine
            .run(&program, &[Value::Int(8)], &opts)
            .unwrap_err();
        assert!(matches!(
            err,
            PodsError::Simulation(SimulationError::EventLimitExceeded { limit: 3 })
        ));
    }

    #[test]
    fn out_of_bounds_store_is_reported() {
        let program = compile("def main(n) { a = array(n); a[n + 5] = 1; return 0; }").unwrap();
        let err = NativeParallelEngine
            .run(&program, &[Value::Int(4)], &RunOptions::with_pes(2))
            .unwrap_err();
        assert!(matches!(
            err,
            PodsError::Simulation(SimulationError::Runtime(_))
        ));
    }

    #[test]
    fn one_pool_runs_many_jobs_with_disjoint_state() {
        // Submit several jobs of different programs to one pool before
        // waiting on any of them: per-job stores/schedulers must not
        // cross-talk, and job sequence numbers must be distinct.
        let fill =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * 3; } return a; }")
                .unwrap();
        let scalar = compile("def main(n) { return n * 7; }").unwrap();
        let pool = NativePool::new(4);
        let opts = RunOptions::with_pes(4);
        let mut handles = Vec::new();
        for k in 0..6i64 {
            let (program, args) = if k % 2 == 0 {
                (&fill, vec![Value::Int(8 + k)])
            } else {
                (&scalar, vec![Value::Int(k)])
            };
            handles.push((k, pool.submit(JobSpec::from_options(program, &opts), &args)));
        }
        let mut seqs = Vec::new();
        for (k, handle) in handles {
            let outcome = handle.wait().unwrap();
            if k % 2 == 0 {
                let a = outcome.returned_array().unwrap();
                assert!(a.is_complete(), "job {k} incomplete");
                assert_eq!(a.get(&[2]), Some(Value::Int(6)), "job {k}");
            } else {
                assert_eq!(outcome.return_value, Some(Value::Int(k * 7)), "job {k}");
            }
            let EngineStats::Native { stats, .. } = outcome.stats else {
                panic!("native stats expected");
            };
            assert_eq!(stats.pool_id, pool.id());
            seqs.push(stats.job_seq);
        }
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn a_failing_job_does_not_poison_the_pool() {
        let bad = compile("def main(n) { a = array(n); a[0] = 1; return a[1]; }").unwrap();
        let good = compile("def main(n) { return n + 1; }").unwrap();
        let pool = NativePool::new(2);
        let opts = RunOptions::with_pes(2);
        let bad_handle = pool.submit(JobSpec::from_options(&bad, &opts), &[Value::Int(4)]);
        let good_handle = pool.submit(JobSpec::from_options(&good, &opts), &[Value::Int(4)]);
        assert!(bad_handle.wait().is_err());
        assert_eq!(
            good_handle.wait().unwrap().return_value,
            Some(Value::Int(5))
        );
        // And the pool still accepts new work after a failure.
        let again = pool.submit(JobSpec::from_options(&good, &opts), &[Value::Int(9)]);
        assert_eq!(again.wait().unwrap().return_value, Some(Value::Int(10)));
    }

    fn native_stats_for(program: &CompiledProgram, n: i64, batch: usize) -> NativeStats {
        let mut opts = RunOptions::with_pes(1);
        opts.delivery_batch = batch;
        let outcome = NativeParallelEngine
            .run(program, &[Value::Int(n)], &opts)
            .unwrap();
        match outcome.stats {
            EngineStats::Native { stats, .. } => stats,
            other => panic!("expected native stats, got {other:?}"),
        }
    }

    #[test]
    fn batched_delivery_coalesces_scheduler_transactions() {
        // Sixteen split-phase probe calls park on unwritten elements, then
        // one producer-loop task writes all of them. The producer is
        // spawned *first*, so on one worker's LIFO deque the probes run
        // (and defer) before it: its writes then deliver 16 wake-ups from
        // a single task. Unbatched (batch = 1) that is one scheduler
        // transaction per write; batch = 16 coalesces them into one. The
        // right-nested sum keeps all 16 spawns split-phase (no Move needs a
        // return value until every probe is in flight).
        let src = r#"
            def main(n) {
                a = array(n);
                for i = 0 to n - 1 { a[i] = i * 3; }
                return probe(a, 0) + (probe(a, 1) + (probe(a, 2) + (probe(a, 3)
                     + (probe(a, 4) + (probe(a, 5) + (probe(a, 6) + (probe(a, 7)
                     + (probe(a, 8) + (probe(a, 9) + (probe(a, 10) + (probe(a, 11)
                     + (probe(a, 12) + (probe(a, 13) + (probe(a, 14) + probe(a, 15)
                     ))))))))))))));
            }
            def probe(a, i) { return a[i] + 1; }
        "#;
        let program = compile(src).unwrap();
        let expected = (0..16).map(|i| i * 3 + 1).sum::<i64>();
        let check = |batch: usize| {
            let mut opts = RunOptions::with_pes(1);
            opts.delivery_batch = batch;
            let outcome = NativeParallelEngine
                .run(&program, &[Value::Int(16)], &opts)
                .unwrap();
            assert_eq!(
                outcome.return_value,
                Some(Value::Int(expected)),
                "batch={batch}"
            );
        };
        check(1);
        check(16);
        let unbatched = native_stats_for(&program, 16, 1);
        let batched = native_stats_for(&program, 16, 16);
        assert_eq!(
            unbatched.wakeups, batched.wakeups,
            "batching must not change how many wake-ups are delivered"
        );
        assert!(
            unbatched.wakeups >= 32,
            "expected 16 deferred reads + 16 returns, got {}",
            unbatched.wakeups
        );
        // Both modes pay one forced flush per probe return (a task
        // boundary); the contrast is the producer's 16 array wake-ups — 16
        // transactions unbatched, 1 batched.
        assert!(
            batched.wakeup_flushes + 8 <= unbatched.wakeup_flushes,
            "batch=16 should need fewer scheduler transactions: \
             {} vs {}",
            batched.wakeup_flushes,
            unbatched.wakeup_flushes
        );
    }

    #[test]
    fn worker_arena_recycles_instance_frames() {
        // One probe instance per iteration, sequentially: spawn, run,
        // finish, spawn the next. After the first frame is recycled every
        // later spawn reuses it, so reuse grows with n.
        let src = r#"
            def main(n) {
                a = array(n);
                s = array(n);
                for i = 0 to n - 1 { a[i] = i * 3; }
                for i = 0 to n - 1 { s[i] = probe(a, i); }
                return s;
            }
            def probe(a, i) { return a[i] + 1; }
        "#;
        let program = compile(src).unwrap();
        let stats = native_stats_for(&program, 64, 16);
        assert!(
            stats.arena_reuses > 32,
            "expected recycled instance frames, got {} (instances {})",
            stats.arena_reuses,
            stats.instances
        );
    }
}
