//! The native multi-threaded parallel engine.
//!
//! Where [`super::SimEngine`] *models* iteration-level parallelism on
//! simulated PEs, this engine *runs* it: the partitioned SP program executes
//! on a pool of real OS threads (one "virtual PE" per worker), iteration
//! instances are spawned per the partitioner's distribution decisions
//! (distributing allocate, `LD`, Range Filters), and instances synchronise
//! through the thread-safe I-structure store
//! ([`pods_istructure::SharedArrayStore`]) — write-once cells whose deferred
//! readers are re-activated by the eventual write, exactly the paper's
//! presence-bit protocol lifted onto threads.
//!
//! Scheduling mirrors the paper's blocked/ready instance model rather than
//! blocking OS threads: when an instance needs an operand that has not
//! arrived (an unwritten array element or an outstanding function return),
//! the *instance* is parked and the worker thread moves on to other work.
//! The write (or return) that produces the operand delivers it into the
//! parked frame and re-enqueues the instance. This makes the engine
//! deadlock-free under any scheduling order a correct program allows, and
//! lets it detect true deadlocks exactly: when no task is queued or running
//! but instances remain parked, no future delivery can happen.
//!
//! The pool is work-stealing: each worker owns a deque, pushes the instances
//! it spawns or wakes locally (loop bodies stay near their Range-Filtered
//! parent), and steals from siblings when idle — `std` threads, mutexes and
//! condvars only, no unsafe code.

use super::{check_invocation, Engine, EngineOutcome, EngineStats};
use crate::error::PodsError;
use crate::pipeline::{CompiledProgram, RunOptions};
use pods_istructure::{ArrayId, Partitioning, PeId, SharedArrayStore, SharedReadResult, Value};
use pods_machine::{eval_binary, eval_unary, ArraySnapshot, InstanceId, SimulationError};
use pods_sp::{Instr, Operand, SlotId, SpId, SpProgram};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Executes the partitioned SP program on a real work-stealing thread pool
/// with `opts.num_pes` workers. Reports wall-clock time — the only honest
/// clock for native execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeParallelEngine;

/// Counters reported by the native thread pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NativeStats {
    /// Number of worker threads.
    pub workers: usize,
    /// SP instances created over the run.
    pub instances: u64,
    /// Task executions, counting each resume of a parked instance.
    pub tasks: u64,
    /// Times an instance was parked waiting for an operand.
    pub parks: u64,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: u64,
}

/// `(instance, slot)` continuation tag: where a produced value must go.
type NativeWaiter = (InstanceId, SlotId);

/// The run-time frame of one native SP instance.
#[derive(Debug)]
struct NInstance {
    id: InstanceId,
    template: SpId,
    /// The virtual PE this instance runs as (drives Range Filters).
    pe: usize,
    pc: usize,
    slots: Vec<Option<Value>>,
    return_to: Option<NativeWaiter>,
}

impl NInstance {
    fn new(
        id: InstanceId,
        template: SpId,
        pe: usize,
        num_slots: usize,
        args: &[Value],
        return_to: Option<NativeWaiter>,
    ) -> Self {
        let mut slots = vec![None; num_slots];
        for (i, v) in args.iter().enumerate() {
            if i < num_slots {
                slots[i] = Some(*v);
            }
        }
        NInstance {
            id,
            template,
            pe,
            pc: 0,
            slots,
            return_to,
        }
    }

    fn slot(&self, slot: SlotId) -> Option<Value> {
        self.slots.get(slot.index()).copied().flatten()
    }

    fn is_present(&self, slot: SlotId) -> bool {
        self.slot(slot).is_some()
    }

    fn set_slot(&mut self, slot: SlotId, value: Value) {
        if slot.index() < self.slots.len() {
            self.slots[slot.index()] = Some(value);
        }
    }

    fn clear_slot(&mut self, slot: SlotId) {
        if slot.index() < self.slots.len() {
            self.slots[slot.index()] = None;
        }
    }
}

/// What executing one instruction asks the worker loop to do next.
enum Step {
    Next,
    Jump(usize),
    /// Park the instance waiting on the slot. The program counter has
    /// already been advanced past the issuing instruction.
    Park(SlotId),
    Finished(Option<Value>),
}

/// An instance parked on a missing operand.
struct Blocked {
    inst: NInstance,
    slot: SlotId,
}

/// Per-task memo of array directory lookups.
///
/// Going through the store's `RwLock`ed directory (plus an `Arc` refcount
/// bump) for every element access serialises the workers on two shared
/// cache lines; loop instances touch the same few arrays thousands of
/// times, so one lookup per task amortises to nothing. The cache lives on
/// the worker's stack for the duration of one task execution and is simply
/// rebuilt after a park.
#[derive(Default)]
struct ArrayCache {
    entries: Vec<(ArrayId, Arc<pods_istructure::SharedArray<NativeWaiter>>)>,
}

impl ArrayCache {
    fn get(
        &mut self,
        store: &SharedArrayStore<NativeWaiter>,
        id: ArrayId,
    ) -> Result<&pods_istructure::SharedArray<NativeWaiter>, String> {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == id) {
            return Ok(&self.entries[i].1);
        }
        let shared = store.require(id).map_err(|e| e.to_string())?;
        self.entries.push((id, shared));
        Ok(&self.entries.last().expect("just pushed").1)
    }
}

/// Parked-instance registry plus the mailbox for values that arrive while
/// their target instance is queued or running.
#[derive(Default)]
struct Sched {
    blocked: HashMap<InstanceId, Blocked>,
    mailbox: HashMap<InstanceId, Vec<(SlotId, Value)>>,
}

/// Liveness accounting. `live` counts existing instances (queued, running,
/// or parked); `in_flight` counts queued-or-running tasks; `ready` counts
/// queued tasks (the condvar predicate for idle workers).
struct Coord {
    live: usize,
    in_flight: usize,
    ready: isize,
    shutdown: bool,
}

struct Pool {
    program: Arc<SpProgram>,
    /// Precomputed read-slot lists per (template, pc): the firing-rule
    /// check runs for every executed instruction, and rebuilding the list
    /// (a heap allocation) each time is measurable across millions of
    /// instructions.
    read_slots: Vec<Vec<Vec<SlotId>>>,
    store: SharedArrayStore<NativeWaiter>,
    queues: Vec<Mutex<VecDeque<NInstance>>>,
    coord: Mutex<Coord>,
    cv: Condvar,
    sched: Mutex<Sched>,
    stop: AtomicBool,
    error: Mutex<Option<SimulationError>>,
    result: Mutex<Option<Value>>,
    entry: InstanceId,
    workers: usize,
    page_size: usize,
    /// 0 = unlimited; otherwise abort after this many task executions
    /// (the native analogue of the simulator's event limit).
    max_tasks: u64,
    next_instance: AtomicU64,
    next_array: AtomicUsize,
    tasks: AtomicU64,
    parks: AtomicU64,
    steals: AtomicU64,
}

impl Pool {
    fn new(program: SpProgram, workers: usize, page_size: usize, max_tasks: u64) -> Self {
        let read_slots = program
            .templates()
            .iter()
            .map(|t| t.code.iter().map(|i| i.read_slots()).collect())
            .collect();
        Pool {
            program: Arc::new(program),
            read_slots,
            store: SharedArrayStore::new(),
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            coord: Mutex::new(Coord {
                live: 0,
                in_flight: 0,
                ready: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            sched: Mutex::new(Sched::default()),
            stop: AtomicBool::new(false),
            error: Mutex::new(None),
            result: Mutex::new(None),
            entry: InstanceId(0),
            workers,
            page_size,
            max_tasks,
            next_instance: AtomicU64::new(0),
            next_array: AtomicUsize::new(0),
            tasks: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    fn lock_coord(&self) -> std::sync::MutexGuard<'_, Coord> {
        self.coord.lock().expect("coord poisoned")
    }

    /// Records the first error and initiates shutdown.
    fn fail(&self, err: SimulationError) {
        {
            let mut slot = self.error.lock().expect("error poisoned");
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.shutdown();
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.lock_coord().shutdown = true;
        self.cv.notify_all();
    }

    /// No queued or running task remains but instances are still parked:
    /// nothing can ever deliver their operands.
    fn report_deadlock(&self) {
        let sched = self.sched.lock().expect("sched poisoned");
        let stuck = sched.blocked.len();
        let detail = sched
            .blocked
            .values()
            .next()
            .map(|b| {
                let template = self.program.template(b.inst.template);
                format!(
                    "inst{} of {} parked at pc {} on {}",
                    b.inst.id.0, template.name, b.inst.pc, b.slot
                )
            })
            .unwrap_or_default();
        drop(sched);
        self.fail(SimulationError::Deadlock {
            stuck_instances: stuck.max(1),
            detail,
        });
    }

    /// Makes a task runnable on worker `w`'s deque. `new` marks a freshly
    /// created instance (as opposed to a woken one).
    fn enqueue(&self, w: usize, inst: NInstance, new: bool) {
        {
            let mut c = self.lock_coord();
            if new {
                c.live += 1;
            }
            c.in_flight += 1;
            c.ready += 1;
        }
        self.queues[w]
            .lock()
            .expect("queue poisoned")
            .push_back(inst);
        self.cv.notify_one();
    }

    fn spawn_instance(
        &self,
        w: usize,
        template_id: SpId,
        args: Vec<Value>,
        pe: usize,
        return_to: Option<NativeWaiter>,
    ) {
        let id = InstanceId(self.next_instance.fetch_add(1, Ordering::Relaxed));
        let num_slots = self.program.template(template_id).num_slots;
        let inst = NInstance::new(id, template_id, pe, num_slots, &args, return_to);
        self.enqueue(w, inst, true);
    }

    /// Pops the next task: own deque first (LIFO end for locality), then
    /// steal from siblings (FIFO end, taking the oldest work).
    fn pop_task(&self, w: usize) -> Option<NInstance> {
        let own = self.queues[w].lock().expect("queue poisoned").pop_back();
        let task = own.or_else(|| {
            (1..self.workers).find_map(|i| {
                let victim = (w + i) % self.workers;
                let stolen = self.queues[victim]
                    .lock()
                    .expect("queue poisoned")
                    .pop_front();
                if stolen.is_some() {
                    self.steals.fetch_add(1, Ordering::Relaxed);
                }
                stolen
            })
        });
        if task.is_some() {
            self.lock_coord().ready -= 1;
        }
        task
    }

    /// Sends a value to a waiter. If the target is parked on that slot it is
    /// woken onto worker `w`'s deque; otherwise the value is stashed in the
    /// mailbox for the target to drain at its next park attempt.
    fn deliver(&self, w: usize, waiter: NativeWaiter, value: Value) {
        let (target, slot) = waiter;
        let mut sched = self.sched.lock().expect("sched poisoned");
        if let Some(b) = sched.blocked.get_mut(&target) {
            b.inst.set_slot(slot, value);
            if b.slot == slot {
                let b = sched.blocked.remove(&target).expect("checked above");
                drop(sched);
                self.enqueue(w, b.inst, false);
            }
        } else {
            sched.mailbox.entry(target).or_default().push((slot, value));
        }
    }

    /// Parks `inst` waiting on `slot`, unless a mailbox delivery already
    /// filled it — in that case the instance is handed back for the worker
    /// to keep running.
    fn park(&self, mut inst: NInstance, slot: SlotId) -> Option<NInstance> {
        let mut sched = self.sched.lock().expect("sched poisoned");
        if let Some(msgs) = sched.mailbox.remove(&inst.id) {
            for (s, v) in msgs {
                inst.set_slot(s, v);
            }
        }
        if inst.is_present(slot) {
            return Some(inst);
        }
        sched.blocked.insert(inst.id, Blocked { inst, slot });
        drop(sched);
        self.parks.fetch_add(1, Ordering::Relaxed);
        let mut c = self.lock_coord();
        c.in_flight -= 1;
        let deadlocked = c.in_flight == 0 && c.live > 0 && !c.shutdown;
        drop(c);
        if deadlocked {
            self.report_deadlock();
        }
        None
    }

    /// Terminates an instance, routing its return value.
    fn finish(&self, inst: NInstance, value: Option<Value>, w: usize) {
        if inst.id == self.entry {
            *self.result.lock().expect("result poisoned") = value;
        } else if let (Some(ret), Some(v)) = (inst.return_to, value) {
            self.deliver(w, ret, v);
        }
        let mut c = self.lock_coord();
        c.in_flight -= 1;
        c.live -= 1;
        let all_done = c.live == 0;
        let deadlocked = !all_done && c.in_flight == 0 && !c.shutdown;
        drop(c);
        if all_done {
            self.shutdown();
        } else if deadlocked {
            self.report_deadlock();
        }
    }

    /// Accounting for a task abandoned because of a global error.
    fn abandon(&self) {
        let mut c = self.lock_coord();
        c.in_flight -= 1;
        c.live -= 1;
    }

    fn operand(&self, inst: &NInstance, op: &Operand) -> Value {
        match op {
            Operand::Slot(s) => inst.slot(*s).unwrap_or(Value::Unit),
            Operand::Int(v) => Value::Int(*v),
            Operand::Float(v) => Value::Float(*v),
            Operand::Bool(v) => Value::Bool(*v),
        }
    }

    fn array_offset(
        &self,
        cache: &mut ArrayCache,
        inst: &NInstance,
        array: Value,
        indices: &[Operand],
    ) -> Result<(ArrayId, usize), String> {
        let Some(id) = array.as_array() else {
            return Err(format!("expected an array reference, found {array}"));
        };
        let idx: Vec<i64> = indices
            .iter()
            .map(|i| self.operand(inst, i).as_i64().unwrap_or(-1))
            .collect();
        let shared = cache.get(&self.store, id)?;
        match shared.header().offset_of(&idx) {
            Some(offset) => Ok((id, offset)),
            None => Err(format!(
                "index {idx:?} out of bounds for {} array `{}`",
                shared.header().shape(),
                shared.header().name()
            )),
        }
    }

    fn execute(
        &self,
        cache: &mut ArrayCache,
        inst: &mut NInstance,
        instr: &Instr,
        w: usize,
    ) -> Result<Step, String> {
        match instr {
            Instr::Binary { op, dst, lhs, rhs } => {
                let a = self.operand(inst, lhs);
                let b = self.operand(inst, rhs);
                let v = eval_binary(*op, a, b).map_err(|e| e.to_string())?;
                inst.set_slot(*dst, v);
                Ok(Step::Next)
            }
            Instr::Unary { op, dst, src } => {
                let a = self.operand(inst, src);
                let v = eval_unary(*op, a).map_err(|e| e.to_string())?;
                inst.set_slot(*dst, v);
                Ok(Step::Next)
            }
            Instr::Move { dst, src } => {
                let v = self.operand(inst, src);
                inst.set_slot(*dst, v);
                Ok(Step::Next)
            }
            Instr::Jump { target } => Ok(Step::Jump(*target)),
            Instr::BranchIfFalse { cond, target } => {
                if self.operand(inst, cond).as_bool().unwrap_or(false) {
                    Ok(Step::Next)
                } else {
                    Ok(Step::Jump(*target))
                }
            }
            Instr::ArrayAlloc {
                dst,
                name,
                dims,
                distributed,
            } => {
                let dim_values: Vec<usize> = dims
                    .iter()
                    .map(|d| self.operand(inst, d).as_i64().unwrap_or(0).max(0) as usize)
                    .collect();
                if dim_values.contains(&0) {
                    return Err(format!("array `{name}` allocated with a zero dimension"));
                }
                let id = ArrayId(self.next_array.fetch_add(1, Ordering::Relaxed));
                let total: usize = dim_values.iter().product();
                let partitioning = if *distributed {
                    Partitioning::new(total, self.page_size, self.workers)
                } else {
                    Partitioning::single_owner(total, self.page_size, self.workers, PeId(inst.pe))
                };
                self.store
                    .allocate(
                        id,
                        name.clone(),
                        pods_istructure::ArrayShape::new(dim_values),
                        partitioning,
                    )
                    .map_err(|e| e.to_string())?;
                inst.set_slot(*dst, Value::ArrayRef(id));
                Ok(Step::Next)
            }
            Instr::ArrayLoad {
                dst,
                array,
                indices,
            } => {
                let array_v = self.operand(inst, array);
                let (id, offset) = self.array_offset(cache, inst, array_v, indices)?;
                let shared = cache.get(&self.store, id)?;
                match shared
                    .read(offset, (inst.id, *dst))
                    .map_err(|e| e.to_string())?
                {
                    SharedReadResult::Present(v) => {
                        inst.set_slot(*dst, v);
                        Ok(Step::Next)
                    }
                    SharedReadResult::Deferred => {
                        // The producing write will deliver into `dst`;
                        // resume after the load.
                        inst.clear_slot(*dst);
                        inst.pc += 1;
                        Ok(Step::Park(*dst))
                    }
                }
            }
            Instr::ArrayStore {
                array,
                indices,
                value,
            } => {
                let array_v = self.operand(inst, array);
                let v = self.operand(inst, value);
                let (id, offset) = self.array_offset(cache, inst, array_v, indices)?;
                let shared = cache.get(&self.store, id)?;
                let woken = shared.write(offset, v).map_err(|e| e.to_string())?;
                for waiter in woken {
                    self.deliver(w, waiter, v);
                }
                Ok(Step::Next)
            }
            Instr::Spawn {
                target,
                args,
                distributed,
                ret,
            } => {
                let arg_values: Vec<Value> = args.iter().map(|a| self.operand(inst, a)).collect();
                let return_to = ret.map(|slot| {
                    inst.clear_slot(slot);
                    (inst.id, slot)
                });
                if *distributed {
                    for q in 0..self.workers {
                        let ret_here = if q == inst.pe { return_to } else { None };
                        self.spawn_instance(w, *target, arg_values.clone(), q, ret_here);
                    }
                } else {
                    self.spawn_instance(w, *target, arg_values, inst.pe, return_to);
                }
                Ok(Step::Next)
            }
            Instr::RangeLo {
                dst,
                array,
                dim,
                default,
                outer,
            }
            | Instr::RangeHi {
                dst,
                array,
                dim,
                default,
                outer,
            } => {
                let is_lo = matches!(instr, Instr::RangeLo { .. });
                let array_v = self.operand(inst, array);
                let default_v = self.operand(inst, default).as_i64().unwrap_or(0);
                let outer_v = outer
                    .as_ref()
                    .map(|o| self.operand(inst, o).as_i64().unwrap_or(0));
                let Some(id) = array_v.as_array() else {
                    return Err(format!("range filter on a non-array value {array_v}"));
                };
                let shared = cache.get(&self.store, id)?;
                let range = shared.header().responsibility(PeId(inst.pe), *dim, outer_v);
                let value = if is_lo {
                    default_v.max(range.start)
                } else {
                    default_v.min(range.end)
                };
                inst.set_slot(*dst, Value::Int(value));
                Ok(Step::Next)
            }
            Instr::Return { value } => {
                let v = value.as_ref().map(|op| self.operand(inst, op));
                Ok(Step::Finished(v))
            }
        }
    }

    /// Runs one instance until it finishes, parks, or the pool shuts down.
    fn run_instance(&self, mut inst: NInstance, w: usize) {
        let executed = self.tasks.fetch_add(1, Ordering::Relaxed) + 1;
        if self.max_tasks > 0 && executed > self.max_tasks {
            self.fail(SimulationError::EventLimitExceeded {
                limit: self.max_tasks,
            });
            self.abandon();
            return;
        }
        let program = Arc::clone(&self.program);
        let template = program.template(inst.template);
        let slot_table = &self.read_slots[inst.template.index()];
        let mut cache = ArrayCache::default();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                self.abandon();
                return;
            }
            if inst.pc >= template.code.len() {
                self.finish(inst, None, w);
                return;
            }
            let instr = &template.code[inst.pc];
            // Dataflow firing rule: every needed operand must be present.
            if let Some(missing) = slot_table[inst.pc]
                .iter()
                .copied()
                .find(|s| !inst.is_present(*s))
            {
                match self.park(inst, missing) {
                    Some(resumed) => {
                        inst = resumed;
                        continue;
                    }
                    None => return,
                }
            }
            match self.execute(&mut cache, &mut inst, instr, w) {
                Ok(Step::Next) => inst.pc += 1,
                Ok(Step::Jump(target)) => inst.pc = target,
                Ok(Step::Park(slot)) => match self.park(inst, slot) {
                    Some(resumed) => inst = resumed,
                    None => return,
                },
                Ok(Step::Finished(v)) => {
                    self.finish(inst, v, w);
                    return;
                }
                Err(msg) => {
                    self.fail(SimulationError::Runtime(msg));
                    self.abandon();
                    return;
                }
            }
        }
    }

    fn worker(&self, w: usize) {
        loop {
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            if let Some(inst) = self.pop_task(w) {
                self.run_instance(inst, w);
                continue;
            }
            let c = self.lock_coord();
            if c.shutdown {
                return;
            }
            if c.ready <= 0 {
                // Timed wait: the predicate spans the per-worker deques, so
                // a bounded timeout guards the rare enqueue/sleep race.
                let _unused = self
                    .cv
                    .wait_timeout(c, Duration::from_millis(2))
                    .expect("coord poisoned");
            }
        }
    }

    fn stats(&self) -> NativeStats {
        NativeStats {
            workers: self.workers,
            instances: self.next_instance.load(Ordering::Relaxed),
            tasks: self.tasks.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
        }
    }
}

/// Executes a partitioned program on `workers` threads and returns the
/// return value, the array snapshots, and the pool counters.
fn execute_native(
    program: SpProgram,
    args: &[Value],
    workers: usize,
    page_size: usize,
    max_tasks: u64,
) -> Result<(Option<Value>, Vec<ArraySnapshot>, NativeStats), SimulationError> {
    let entry = program.entry();
    let pool = Arc::new(Pool::new(program, workers, page_size, max_tasks));
    pool.spawn_instance(0, entry, args.to_vec(), 0, None);

    let mut handles = Vec::new();
    for w in 0..workers {
        let pool = Arc::clone(&pool);
        handles.push(std::thread::spawn(move || pool.worker(w)));
    }
    for h in handles {
        h.join().expect("native worker panicked");
    }

    if let Some(err) = pool.error.lock().expect("error poisoned").take() {
        return Err(err);
    }
    let arrays = pool
        .store
        .snapshots()
        .into_iter()
        .map(|(id, name, shape, values)| ArraySnapshot {
            id,
            name,
            shape,
            values,
        })
        .collect();
    let result = pool.result.lock().expect("result poisoned").take();
    Ok((result, arrays, pool.stats()))
}

impl Engine for NativeParallelEngine {
    fn name(&self) -> &'static str {
        "native"
    }

    fn description(&self) -> &'static str {
        "work-stealing thread pool over the shared I-structure store (wall-clock time on N threads)"
    }

    fn run(
        &self,
        program: &CompiledProgram,
        args: &[Value],
        opts: &RunOptions,
    ) -> Result<EngineOutcome, PodsError> {
        check_invocation(program, args)?;
        let workers = opts.num_pes.max(1);
        let start = Instant::now();
        let (partitioned, partition) = program.partitioned(opts);
        let (return_value, arrays, stats) =
            execute_native(partitioned, args, workers, opts.page_size, opts.max_events)?;
        let wall_us = start.elapsed().as_secs_f64() * 1e6;
        Ok(EngineOutcome {
            engine: self.name(),
            return_value,
            arrays,
            modelled_us: None,
            wall_us,
            stats: EngineStats::Native { stats, partition },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;

    fn run_native(src: &str, args: &[Value], workers: usize) -> EngineOutcome {
        let program = compile(src).unwrap();
        NativeParallelEngine
            .run(&program, args, &RunOptions::with_pes(workers))
            .unwrap()
    }

    #[test]
    fn scalar_and_function_calls() {
        let outcome = run_native(
            "def main(n) { x = double(n); return x + 1; } def double(v) { return v * 2; }",
            &[Value::Int(10)],
            2,
        );
        assert_eq!(outcome.return_value, Some(Value::Int(21)));
        assert!(matches!(
            outcome.stats,
            EngineStats::Native { stats, .. } if stats.workers == 2 && stats.instances >= 2
        ));
    }

    #[test]
    fn distributed_fill_is_complete_on_any_worker_count() {
        let src = r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 { a[i, j] = i * n + j; }
                }
                return a;
            }
        "#;
        let reference = run_native(src, &[Value::Int(8)], 1);
        let expected = reference.returned_array().unwrap().to_f64(-1.0);
        for workers in [2, 4, 8] {
            let outcome = run_native(src, &[Value::Int(8)], workers);
            let a = outcome.returned_array().unwrap();
            assert!(a.is_complete(), "incomplete on {workers} workers");
            assert_eq!(
                a.to_f64(-1.0),
                expected,
                "wrong values on {workers} workers"
            );
        }
    }

    #[test]
    fn consumers_park_until_producers_write() {
        let src = r#"
            def main(n) {
                a = array(n);
                for i = 0 to n - 1 { a[i] = i * 2; }
                s = a[n - 1] + a[0];
                return s;
            }
        "#;
        let outcome = run_native(src, &[Value::Int(10)], 4);
        assert_eq!(outcome.return_value, Some(Value::Int(18)));
    }

    #[test]
    fn carried_recurrence_is_computed_correctly() {
        let src = r#"
            def main(n) {
                src = array(n);
                for i = 0 to n - 1 { src[i] = i * 1.0; }
                acc = array(n);
                acc[0] = src[0];
                for i = 1 to n - 1 { acc[i] = acc[i - 1] + src[i]; }
                return acc;
            }
        "#;
        let outcome = run_native(src, &[Value::Int(16)], 4);
        let acc = outcome.returned_array().unwrap();
        assert!(acc.is_complete());
        assert_eq!(acc.get(&[15]), Some(Value::Float(120.0)));
    }

    #[test]
    fn single_assignment_violation_is_a_runtime_error() {
        let program =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[0] = i; } return 0; }")
                .unwrap();
        let err = NativeParallelEngine
            .run(&program, &[Value::Int(4)], &RunOptions::with_pes(1))
            .unwrap_err();
        assert!(
            matches!(err, PodsError::Simulation(SimulationError::Runtime(_))),
            "{err}"
        );
    }

    #[test]
    fn reading_a_never_written_element_is_detected_as_deadlock() {
        let program = compile("def main(n) { a = array(n); a[0] = 1; return a[1]; }").unwrap();
        for workers in [1, 4] {
            let err = NativeParallelEngine
                .run(&program, &[Value::Int(4)], &RunOptions::with_pes(workers))
                .unwrap_err();
            assert!(
                matches!(err, PodsError::Simulation(SimulationError::Deadlock { .. })),
                "workers={workers}: {err}"
            );
        }
    }

    #[test]
    fn task_limit_aborts_runaway_runs() {
        let program = compile(
            "def main(n) { a = matrix(n, n); for i = 0 to n - 1 { for j = 0 to n - 1 { a[i, j] = i + j; } } return a; }",
        )
        .unwrap();
        let mut opts = RunOptions::with_pes(2);
        opts.max_events = 3;
        let err = NativeParallelEngine
            .run(&program, &[Value::Int(8)], &opts)
            .unwrap_err();
        assert!(matches!(
            err,
            PodsError::Simulation(SimulationError::EventLimitExceeded { limit: 3 })
        ));
    }

    #[test]
    fn out_of_bounds_store_is_reported() {
        let program = compile("def main(n) { a = array(n); a[n + 5] = 1; return 0; }").unwrap();
        let err = NativeParallelEngine
            .run(&program, &[Value::Int(4)], &RunOptions::with_pes(2))
            .unwrap_err();
        assert!(matches!(
            err,
            PodsError::Simulation(SimulationError::Runtime(_))
        ));
    }
}
