//! The cooperative executor: per-worker run queues, work stealing over
//! *tasks*, and per-job state mirroring the native engine's `Job` model.
//!
//! The worker threads here are dumb pollers: pop a task, check its frame
//! out, run SP instructions through the shared core
//! (`pods_sp::exec::run_instance`) until the task finishes or the firing
//! rule blocks on an absent slot (the task suspends), then pop the next
//! task. All blocking state lives in the tasks themselves (see
//! [`super::task`]): there is no blocked-instance registry and no mailbox
//! map, so delivering a value locks only the receiving task. The
//! job-global liveness counters (for deadlock detection) and the
//! executor's ready count are still shared locks, but they are taken once
//! per *flush* and per woken batch, not once per delivered value.
//!
//! Per-job state is the same model the native engine uses — one I-structure
//! store, `live`/`in_flight` liveness counts, first-error slot, result
//! slot, done condvar, drop-cancellation via a pool-wide stop flag — so the
//! two schedulers are directly comparable: any difference in their stats is
//! scheduling overhead, not protocol difference.

use super::task::{AsyncWaiter, Frame, TaskHandle};
use super::AsyncStats;
use crate::engine::native::{JobNotifier, JobSpec, NEXT_POOL_ID};
use crate::engine::{
    cancellation_error, EngineOutcome, EngineStats, InstanceArena, JobCounts, ReadSlots,
};
use crate::error::PodsError;
use crate::trace::{TraceEventKind, TraceHandle};
use pods_istructure::{
    ArrayHeader, ArrayId, Partitioning, PeId, SharedArrayStore, SharedReadResult, Value,
};
use pods_machine::{ArraySnapshot, InstanceId, SimulationError};
use pods_partition::PartitionReport;
use pods_sp::exec::{self, ArrayOps, ExecCtx, ExecEvent, Loaded, RunExit, TraceSink};
use pods_sp::{Operand, SlotId, SpId, SpProgram};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Per-poll memo of array directory lookups (see
/// [`crate::engine::ArrayCache`], shared with the native engine).
type ArrayCache = crate::engine::ArrayCache<AsyncWaiter>;

/// State owned by one worker thread and reused across every poll: the
/// waker delivery buffer, the shared frame arena, and a scratch vector for
/// marshalling spawn arguments (mirroring the native engine's
/// `WorkerCtx`). Invariant: `delivery` is empty between polls.
#[derive(Default)]
struct WorkerCtx {
    delivery: Vec<(AsyncWaiter, Value)>,
    arena: InstanceArena,
    spawn_args: Vec<Value>,
}

/// A note about the most recent suspension, kept for deadlock diagnostics
/// (the async engine has no blocked registry to walk, so it remembers the
/// last suspension instead).
#[derive(Clone, Copy)]
struct SuspendInfo {
    inst: InstanceId,
    template: SpId,
    pc: usize,
    slot: SlotId,
}

/// Everything scoped to one submitted program execution on the cooperative
/// executor. Tasks do not point back at their job; the run-queue entries
/// carry the job `Arc`, so a failed job's suspended tasks are released as
/// soon as its store (holding their wakers) is dropped.
pub(crate) struct AsyncJob {
    seq: u64,
    pool_id: u64,
    program: Arc<SpProgram>,
    read_slots: Arc<ReadSlots>,
    store: SharedArrayStore<AsyncWaiter>,
    counts: Mutex<JobCounts>,
    last_suspend: Mutex<Option<SuspendInfo>>,
    stop: AtomicBool,
    error: Mutex<Option<SimulationError>>,
    result: Mutex<Option<Value>>,
    done: Mutex<bool>,
    done_cv: Condvar,
    entry: InstanceId,
    workers: usize,
    page_size: usize,
    /// 0 = unlimited; otherwise abort after this many polls (the async
    /// analogue of the simulator's event limit and the native task limit).
    max_polls: u64,
    delivery_batch: usize,
    next_instance: AtomicU64,
    next_array: AtomicUsize,
    polls: AtomicU64,
    suspensions: AtomicU64,
    resumptions: AtomicU64,
    steals: AtomicU64,
    wakeups: AtomicU64,
    wakeup_flushes: AtomicU64,
    arena_reuses: AtomicU64,
    chunk_iterations: AtomicU64,
    super_ops: AtomicU64,
    /// Adaptive-grain retunes applied before this job (see [`JobSpec`]).
    chunks_autotuned: u64,
    /// Completion hook (see [`JobSpec::on_done`]); fired exactly once, by
    /// whichever of normal completion / failure / cancellation wins.
    on_done: Option<JobNotifier>,
    /// Flight-recorder handle (see [`JobSpec::trace`]).
    trace: Option<TraceHandle>,
    /// First-wins claim on the terminal transition, separate from `done` so
    /// the hook can run *before* `done` is published (waiters must never
    /// observe a finished job whose hook has not fired yet).
    finished: AtomicBool,
}

impl AsyncJob {
    /// Records the error and stops the job (not the pool). A no-op if the
    /// job already finished: the first of normal completion / failure /
    /// cancellation wins, so a cancel racing a finished job can neither
    /// clobber its result nor re-fire the completion hook.
    fn fail(&self, err: SimulationError) {
        self.stop.store(true, Ordering::SeqCst);
        self.finish(Some(err));
    }

    /// Marks the job finished and wakes every `wait`er.
    fn complete(&self) {
        self.finish(None);
    }

    /// The single completion point (mirrors the native pool's `Job::finish`):
    /// claims the terminal transition exactly once, records the error,
    /// fires the `on_done` hook, and only then publishes `done` and wakes
    /// every `wait`er — so a waiter never observes a finished job whose
    /// metrics have not landed yet.
    fn finish(&self, err: Option<SimulationError>) {
        // First caller wins; a cancel racing normal completion is dropped.
        if self.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Some(e) = err {
            *self.error.lock().expect("error poisoned") = Some(e);
        }
        // No locks are held here, so the hook may take the service locks.
        if let Some(hook) = &self.on_done {
            hook(self.store.stats());
        }
        *self.done.lock().expect("done poisoned") = true;
        self.done_cv.notify_all();
    }

    fn is_done(&self) -> bool {
        *self.done.lock().expect("done poisoned")
    }

    fn stats(&self) -> AsyncStats {
        AsyncStats {
            workers: self.workers,
            instances: self.next_instance.load(Ordering::Relaxed),
            polls: self.polls.load(Ordering::Relaxed),
            suspensions: self.suspensions.load(Ordering::Relaxed),
            resumptions: self.resumptions.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            pool_id: self.pool_id,
            job_seq: self.seq,
            wakeups: self.wakeups.load(Ordering::Relaxed),
            wakeup_flushes: self.wakeup_flushes.load(Ordering::Relaxed),
            arena_reuses: self.arena_reuses.load(Ordering::Relaxed),
            chunk_iterations: self.chunk_iterations.load(Ordering::Relaxed),
            super_ops: self.super_ops.load(Ordering::Relaxed),
            chunks_autotuned: self.chunks_autotuned,
            store: self.store.stats(),
        }
    }
}

/// A runnable unit on the executor: one task of one job.
struct RunEntry {
    job: Arc<AsyncJob>,
    task: Arc<TaskHandle>,
}

/// Executor-wide scheduling state.
struct Coord {
    /// Queued entries across all run queues (the condvar predicate).
    ready: isize,
    /// Set only when the executor itself is being torn down.
    shutdown: bool,
}

struct ExecShared {
    id: u64,
    workers: usize,
    queues: Vec<Mutex<VecDeque<RunEntry>>>,
    coord: Mutex<Coord>,
    cv: Condvar,
    jobs_submitted: AtomicU64,
    /// Cheap teardown flag checked between instructions, so dropping the
    /// pool aborts in-flight jobs at the next instruction boundary.
    stop: AtomicBool,
}

impl ExecShared {
    fn lock_coord(&self) -> std::sync::MutexGuard<'_, Coord> {
        self.coord.lock().expect("coord poisoned")
    }

    /// No queued or running task of the job remains but tasks are still
    /// suspended: nothing can ever deliver their operands.
    fn report_deadlock(&self, job: &AsyncJob) {
        let stuck = job.counts.lock().expect("counts poisoned").live;
        let detail = job
            .last_suspend
            .lock()
            .expect("last_suspend poisoned")
            .map(|s| {
                format!(
                    "inst{} of {} suspended at pc {} awaiting {}",
                    s.inst.0,
                    job.program.template(s.template).name,
                    s.pc,
                    s.slot
                )
            })
            .unwrap_or_default();
        job.fail(SimulationError::Deadlock {
            stuck_instances: stuck.max(1),
            detail,
        });
    }

    /// Makes a task runnable on worker `w`'s queue. `new` marks a freshly
    /// created task (as opposed to a resumed one).
    fn enqueue(&self, w: usize, job: &Arc<AsyncJob>, task: Arc<TaskHandle>, new: bool) {
        {
            let mut c = job.counts.lock().expect("counts poisoned");
            if new {
                c.live += 1;
            }
            c.in_flight += 1;
        }
        self.lock_coord().ready += 1;
        self.queues[w]
            .lock()
            .expect("queue poisoned")
            .push_back(RunEntry {
                job: Arc::clone(job),
                task,
            });
        self.cv.notify_one();
    }

    #[allow(clippy::too_many_arguments)] // hot path: a params struct would be built per spawn
    fn spawn_task(
        &self,
        w: usize,
        job: &Arc<AsyncJob>,
        template_id: SpId,
        args: &[Value],
        pe: usize,
        return_to: Option<(Arc<TaskHandle>, SlotId)>,
        arena: &mut InstanceArena,
    ) {
        let id = InstanceId(job.next_instance.fetch_add(1, Ordering::Relaxed));
        let num_slots = job.program.template(template_id).num_slots;
        let (slots, reused) = arena.frame(num_slots, args);
        if reused {
            job.arena_reuses.fetch_add(1, Ordering::Relaxed);
        }
        let task = Arc::new(TaskHandle::new(id, template_id, pe, slots, return_to));
        if let Some(t) = &job.trace {
            t.emit(w as u32, id.0, TraceEventKind::InstanceSpawned);
        }
        self.enqueue(w, job, task, true);
    }

    /// Pops the next entry: own queue first (LIFO end for locality), then
    /// steal from siblings (FIFO end, taking the oldest work).
    fn pop_entry(&self, w: usize) -> Option<RunEntry> {
        let own = self.queues[w].lock().expect("queue poisoned").pop_back();
        let entry = own.or_else(|| {
            (1..self.workers).find_map(|i| {
                let victim = (w + i) % self.workers;
                let stolen = self.queues[victim]
                    .lock()
                    .expect("queue poisoned")
                    .pop_front();
                if let Some(e) = &stolen {
                    e.job.steals.fetch_add(1, Ordering::Relaxed);
                    if let Some(tr) = &e.job.trace {
                        tr.emit(
                            w as u32,
                            e.task.id.0,
                            TraceEventKind::Steal {
                                from: victim as u32,
                            },
                        );
                    }
                }
                stolen
            })
        });
        if entry.is_some() {
            self.lock_coord().ready -= 1;
        }
        entry
    }

    /// Delivers every buffered wake-up straight into its target task — one
    /// per-task lock each, no scheduler-wide transaction — and re-queues
    /// the tasks whose awaited slot arrived. Called when the buffer reaches
    /// the job's `delivery_batch` and at every task boundary (suspend,
    /// finish), so batching changes *when* deliveries happen, never whether
    /// a wake lands before the liveness counters could observe a false
    /// idle.
    fn flush(&self, w: usize, job: &Arc<AsyncJob>, buf: &mut Vec<(AsyncWaiter, Value)>) {
        if buf.is_empty() {
            return;
        }
        job.wakeups.fetch_add(buf.len() as u64, Ordering::Relaxed);
        job.wakeup_flushes.fetch_add(1, Ordering::Relaxed);
        let mut to_wake: Vec<Arc<TaskHandle>> = Vec::new();
        for (waiter, value) in buf.drain(..) {
            if waiter.task.deliver(waiter.slot, value) {
                to_wake.push(waiter.task);
            }
        }
        if to_wake.is_empty() {
            return;
        }
        let woken = to_wake.len();
        job.resumptions.fetch_add(woken as u64, Ordering::Relaxed);
        {
            let mut c = job.counts.lock().expect("counts poisoned");
            c.in_flight += woken;
        }
        self.lock_coord().ready += woken as isize;
        {
            let mut q = self.queues[w].lock().expect("queue poisoned");
            for task in to_wake {
                if let Some(t) = &job.trace {
                    t.emit(w as u32, task.id.0, TraceEventKind::Resumed);
                }
                q.push_back(RunEntry {
                    job: Arc::clone(job),
                    task,
                });
            }
        }
        if woken == 1 {
            self.cv.notify_one();
        } else {
            self.cv.notify_all();
        }
    }

    /// Suspends `task` on `slot` unless a racing delivery already filled it
    /// (then the frame comes straight back and the poll continues). The
    /// frame's pc addresses the blocked (consuming) instruction — the
    /// shared core only blocks at the firing rule, never mid-instruction —
    /// so deadlock diagnostics point at the instruction that is actually
    /// waiting, on every engine.
    fn suspend(
        &self,
        job: &Arc<AsyncJob>,
        task: &Arc<TaskHandle>,
        frame: Frame,
        slot: SlotId,
    ) -> Option<Frame> {
        let info = SuspendInfo {
            inst: task.id,
            template: task.template,
            pc: frame.pc,
            slot,
        };
        if let Some(still_running) = task.try_suspend(frame, slot) {
            return Some(still_running);
        }
        *job.last_suspend.lock().expect("last_suspend poisoned") = Some(info);
        job.suspensions.fetch_add(1, Ordering::Relaxed);
        let mut c = job.counts.lock().expect("counts poisoned");
        c.in_flight -= 1;
        let deadlocked = c.in_flight == 0 && c.live > 0 && !job.stop.load(Ordering::Relaxed);
        drop(c);
        if deadlocked {
            self.report_deadlock(job);
        }
        None
    }

    /// Terminates a task, routing its return value through the delivery
    /// buffer and flushing it (a task boundary) before the liveness
    /// counters give up this task's `in_flight` slot.
    fn finish(
        &self,
        w: usize,
        job: &Arc<AsyncJob>,
        task: &Arc<TaskHandle>,
        value: Option<Value>,
        delivery: &mut Vec<(AsyncWaiter, Value)>,
    ) {
        task.retire();
        if task.id == job.entry {
            *job.result.lock().expect("result poisoned") = value;
        } else if let (Some((parent, slot)), Some(v)) = (task.return_to.as_ref(), value) {
            delivery.push((
                AsyncWaiter {
                    task: Arc::clone(parent),
                    slot: *slot,
                },
                v,
            ));
        }
        self.flush(w, job, delivery);
        let mut c = job.counts.lock().expect("counts poisoned");
        c.in_flight -= 1;
        c.live -= 1;
        let all_done = c.live == 0;
        let deadlocked = !all_done && c.in_flight == 0 && !job.stop.load(Ordering::Relaxed);
        drop(c);
        if all_done {
            job.complete();
        } else if deadlocked {
            self.report_deadlock(job);
        }
    }

    /// Accounting for a task abandoned because its job errored out.
    fn abandon(&self, job: &AsyncJob, task: &TaskHandle) {
        task.retire();
        let mut c = job.counts.lock().expect("counts poisoned");
        c.in_flight -= 1;
        c.live -= 1;
    }

    /// Polls one task: runs its instance until it finishes, suspends, or
    /// its job stops. The instruction semantics live in the shared core
    /// ([`pods_sp::exec::run_instance`]); this method supplies the
    /// cooperative suspension strategy — `try_suspend` saves the frame in
    /// the task (re-checking for a wake that raced the suspension) and the
    /// I-structure wakers re-queue it.
    ///
    /// `ctx.delivery` is empty on entry and on every return — progress
    /// exits flush, failure exits clear (the job is already failing and
    /// the buffer must not leak into another job's poll). Frames the
    /// worker still holds at a terminal exit (finish, error, stop) are
    /// recycled into its arena; a suspension hands the frame back to the
    /// task instead.
    fn poll(&self, job: &Arc<AsyncJob>, task: &Arc<TaskHandle>, w: usize, ctx: &mut WorkerCtx) {
        debug_assert!(ctx.delivery.is_empty(), "delivery buffer leaked a poll");
        let executed = job.polls.fetch_add(1, Ordering::Relaxed) + 1;
        if job.max_polls > 0 && executed > job.max_polls {
            job.fail(SimulationError::EventLimitExceeded {
                limit: job.max_polls,
            });
            self.abandon(job, task);
            return;
        }
        let mut frame = task.begin_poll();
        let program = Arc::clone(&job.program);
        let template = program.template(task.template);
        let slot_table = &job.read_slots[task.template.index()];
        let mut cache = ArrayCache::default();
        if let Some(t) = &job.trace {
            t.emit(w as u32, task.id.0, TraceEventKind::RunBegin);
        }
        loop {
            let exit = {
                let mut cx = AsyncCtx {
                    pool: self,
                    job,
                    task,
                    frame: &mut frame,
                    cache: &mut cache,
                    w,
                    worker: ctx,
                    super_ops: 0,
                };
                exec::run_instance(
                    &mut cx,
                    &template.code,
                    slot_table,
                    template.chunk_meta.as_ref(),
                    template.plan.as_ref(),
                )
            };
            match exit {
                Ok(RunExit::Finished(v)) => {
                    if let Some(t) = &job.trace {
                        t.emit(w as u32, task.id.0, TraceEventKind::RunEnd);
                    }
                    self.finish(w, job, task, v, &mut ctx.delivery);
                    ctx.arena.recycle(std::mem::take(&mut frame.slots));
                    return;
                }
                Ok(RunExit::Blocked(slot)) => {
                    if let Some(t) = &job.trace {
                        t.emit(w as u32, task.id.0, TraceEventKind::RunEnd);
                    }
                    self.flush(w, job, &mut ctx.delivery);
                    match self.suspend(job, task, frame, slot) {
                        Some(resumed) => {
                            if let Some(t) = &job.trace {
                                t.emit(w as u32, task.id.0, TraceEventKind::RunBegin);
                            }
                            frame = resumed;
                        }
                        None => return,
                    }
                }
                Ok(RunExit::Stopped) => {
                    if let Some(t) = &job.trace {
                        t.emit(w as u32, task.id.0, TraceEventKind::RunEnd);
                    }
                    if !job.stop.load(Ordering::Relaxed) {
                        // The pool is being torn down: cut the job short so
                        // its waiter gets a cancellation error instead of
                        // hanging. (Otherwise the job already failed and
                        // this task is simply abandoned.)
                        job.fail(cancellation_error());
                    }
                    self.abandon(job, task);
                    ctx.delivery.clear();
                    ctx.arena.recycle(std::mem::take(&mut frame.slots));
                    return;
                }
                Err(msg) => {
                    if let Some(t) = &job.trace {
                        t.emit(w as u32, task.id.0, TraceEventKind::RunEnd);
                    }
                    job.fail(SimulationError::Runtime(msg));
                    self.abandon(job, task);
                    ctx.delivery.clear();
                    ctx.arena.recycle(std::mem::take(&mut frame.slots));
                    return;
                }
            }
        }
    }

    fn worker(&self, w: usize) {
        let mut ctx = WorkerCtx::default();
        loop {
            if self.stop.load(Ordering::Relaxed) {
                // Leave queued entries in place: `Drop` drains them and
                // fails their jobs with the cancellation error.
                return;
            }
            if let Some(entry) = self.pop_entry(w) {
                self.poll(&entry.job, &entry.task, w, &mut ctx);
                continue;
            }
            let c = self.lock_coord();
            if c.shutdown {
                return;
            }
            if c.ready <= 0 {
                // Untimed wait is lost-wakeup-safe: `ready` is incremented
                // under this mutex before any push, and the notify fires
                // after the push.
                let _unused = self.cv.wait(c).expect("coord poisoned");
            }
        }
    }
}

/// The async engine's execution context for the shared instruction core
/// (`pods_sp::exec`): one poll of one task. The semantics live in the
/// core; this adapter supplies the cooperative *mechanics* — the shared
/// store reached through waker tags (an `Arc` of the task plus the slot),
/// the worker-local spawn scratch and frame arena, and the job/pool stop
/// flags. Costs are free (`charge` keeps its no-op default).
struct AsyncCtx<'a> {
    pool: &'a ExecShared,
    job: &'a Arc<AsyncJob>,
    task: &'a Arc<TaskHandle>,
    frame: &'a mut Frame,
    cache: &'a mut ArrayCache,
    w: usize,
    worker: &'a mut WorkerCtx,
    /// Super-op firings this poll segment, flushed to the job counter on
    /// drop — one atomic per segment instead of one per firing, which is
    /// too hot a path for a shared cache line.
    super_ops: u64,
}

impl Drop for AsyncCtx<'_> {
    fn drop(&mut self) {
        if self.super_ops > 0 {
            self.job
                .super_ops
                .fetch_add(self.super_ops, Ordering::Relaxed);
        }
    }
}

impl ArrayOps for AsyncCtx<'_> {
    fn alloc_array(
        &mut self,
        dst: SlotId,
        name: &str,
        dims: &[usize],
        distributed: bool,
    ) -> Result<(), String> {
        let id = ArrayId(self.job.next_array.fetch_add(1, Ordering::Relaxed));
        let total: usize = dims.iter().product();
        let partitioning = if distributed {
            Partitioning::new(total, self.job.page_size, self.job.workers)
        } else {
            Partitioning::single_owner(
                total,
                self.job.page_size,
                self.job.workers,
                PeId(self.task.pe),
            )
        };
        self.job
            .store
            .allocate(
                id,
                name.to_string(),
                pods_istructure::ArrayShape::new(dims.to_vec()),
                partitioning,
            )
            .map_err(|e| e.to_string())?;
        self.frame.set_slot(dst, Value::ArrayRef(id));
        Ok(())
    }

    fn with_header<R>(
        &mut self,
        id: ArrayId,
        f: impl FnOnce(&ArrayHeader) -> R,
    ) -> Result<R, String> {
        let shared = self.cache.get(&self.job.store, id)?;
        Ok(f(shared.header()))
    }

    fn load_element(&mut self, id: ArrayId, offset: usize, dst: SlotId) -> Result<Loaded, String> {
        let shared = self.cache.get(&self.job.store, id)?;
        let waker = AsyncWaiter {
            task: Arc::clone(self.task),
            slot: dst,
        };
        match shared.read(offset, waker).map_err(|e| e.to_string())? {
            SharedReadResult::Present(v) => Ok(Loaded::Ready(v)),
            // The producing write will wake the task through the registered
            // waker; split-phase, so the core keeps the task running until
            // the value is consumed.
            SharedReadResult::Deferred => Ok(Loaded::Deferred),
        }
    }

    fn store_element(&mut self, id: ArrayId, offset: usize, value: Value) -> Result<(), String> {
        // Wakers land in the worker's delivery buffer; they fire when the
        // buffer fills or at the next task boundary.
        {
            let shared = self.cache.get(&self.job.store, id)?;
            shared
                .write_into(offset, value, &mut self.worker.delivery)
                .map_err(|e| e.to_string())?;
        }
        if self.worker.delivery.len() >= self.job.delivery_batch {
            self.pool.flush(self.w, self.job, &mut self.worker.delivery);
        }
        Ok(())
    }
}

impl ExecCtx for AsyncCtx<'_> {
    #[inline(always)]
    fn pc(&self) -> usize {
        self.frame.pc
    }

    #[inline(always)]
    fn set_pc(&mut self, pc: usize) {
        self.frame.pc = pc;
    }

    #[inline(always)]
    fn slot(&self, slot: SlotId) -> Option<Value> {
        self.frame.slot(slot)
    }

    #[inline(always)]
    fn set_slot(&mut self, slot: SlotId, value: Value) {
        self.frame.set_slot(slot, value);
    }

    #[inline(always)]
    fn clear_slot(&mut self, slot: SlotId) {
        self.frame.clear_slot(slot);
    }

    #[inline(always)]
    fn pe(&self) -> usize {
        self.task.pe
    }

    #[inline(always)]
    fn should_stop(&self) -> bool {
        self.job.stop.load(Ordering::Relaxed) || self.pool.stop.load(Ordering::Relaxed)
    }

    #[inline(always)]
    fn chunk_advanced(&mut self) {
        self.job.chunk_iterations.fetch_add(1, Ordering::Relaxed);
    }

    #[inline(always)]
    fn super_op_fired(&mut self) {
        self.super_ops += 1;
    }

    fn spawn(
        &mut self,
        target: SpId,
        args: &[Operand],
        distributed: bool,
        return_to: Option<SlotId>,
    ) -> Result<(), String> {
        // Marshal arguments into the worker's scratch vector (no per-spawn
        // allocation; distributed spawns reuse one slice).
        let mut buf = std::mem::take(&mut self.worker.spawn_args);
        buf.clear();
        buf.extend(args.iter().map(|a| self.operand(a)));
        let ret = return_to.map(|slot| (Arc::clone(self.task), slot));
        if distributed {
            for q in 0..self.job.workers {
                let ret_here = if q == self.task.pe { ret.clone() } else { None };
                self.pool.spawn_task(
                    self.w,
                    self.job,
                    target,
                    &buf,
                    q,
                    ret_here,
                    &mut self.worker.arena,
                );
            }
        } else {
            self.pool.spawn_task(
                self.w,
                self.job,
                target,
                &buf,
                self.task.pe,
                ret,
                &mut self.worker.arena,
            );
        }
        self.worker.spawn_args = buf;
        Ok(())
    }

    #[inline(always)]
    fn trace_sink(&mut self) -> Option<&mut dyn TraceSink> {
        if self.job.trace.is_some() {
            Some(self)
        } else {
            None
        }
    }
}

impl TraceSink for AsyncCtx<'_> {
    fn exec_event(&mut self, _pe: usize, ev: ExecEvent) {
        if let Some(t) = &self.job.trace {
            t.emit(self.w as u32, self.task.id.0, TraceEventKind::from_exec(ev));
        }
    }
}

/// A persistent cooperative executor: `workers` OS threads polling tasks
/// from per-worker run queues with work stealing. Dropping the pool joins
/// the threads; outstanding jobs — queued or in flight — are cut short at
/// the next instruction boundary and fail with a cancellation error.
pub(crate) struct AsyncPool {
    shared: Arc<ExecShared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl AsyncPool {
    /// Spawns an executor of `workers` threads (at least one).
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(ExecShared {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            workers,
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            coord: Mutex::new(Coord {
                ready: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            jobs_submitted: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let threads = (0..workers)
            .map(|w| {
                let s = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pods-async-{}-{w}", shared.id))
                    .spawn(move || s.worker(w))
                    .expect("spawn async worker")
            })
            .collect();
        AsyncPool { shared, threads }
    }

    /// Process-unique identity of this pool.
    pub(crate) fn id(&self) -> u64 {
        self.shared.id
    }

    /// Submits one prepared program for execution and returns a handle to
    /// wait on. The [`JobSpec`] is the same `Arc`-shared program state the
    /// native pool consumes, so prepared handles are engine-portable and a
    /// warm submission allocates only per-job state. The entry task is
    /// placed on a rotating home worker so concurrent jobs spread across
    /// the pool.
    pub(crate) fn submit(&self, spec: JobSpec, args: &[Value]) -> AsyncJobHandle {
        let started = Instant::now();
        let seq = self.shared.jobs_submitted.fetch_add(1, Ordering::Relaxed) + 1;
        let JobSpec {
            program,
            read_slots,
            partition,
            page_size,
            max_tasks,
            delivery_batch,
            chunks_autotuned,
            on_done,
            trace,
        } = spec;
        if let Some(t) = &trace {
            t.emit(t.service_lane(), 0, TraceEventKind::JobStarted);
        }
        let entry_template = program.entry();
        let job = Arc::new(AsyncJob {
            seq,
            pool_id: self.shared.id,
            program,
            read_slots,
            store: SharedArrayStore::new(),
            counts: Mutex::new(JobCounts::default()),
            last_suspend: Mutex::new(None),
            stop: AtomicBool::new(false),
            error: Mutex::new(None),
            result: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            entry: InstanceId(0),
            workers: self.shared.workers,
            page_size,
            max_polls: max_tasks,
            delivery_batch: delivery_batch.max(1),
            next_instance: AtomicU64::new(0),
            next_array: AtomicUsize::new(0),
            polls: AtomicU64::new(0),
            suspensions: AtomicU64::new(0),
            resumptions: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            wakeup_flushes: AtomicU64::new(0),
            arena_reuses: AtomicU64::new(0),
            chunk_iterations: AtomicU64::new(0),
            super_ops: AtomicU64::new(0),
            chunks_autotuned,
            on_done,
            trace,
            finished: AtomicBool::new(false),
        });
        let home = (seq as usize - 1) % self.shared.workers;
        // Submission happens off the worker threads, so the entry frame
        // comes from a throwaway arena (one allocation per job).
        let mut arena = InstanceArena::default();
        self.shared
            .spawn_task(home, &job, entry_template, args, 0, None, &mut arena);
        AsyncJobHandle {
            job,
            partition,
            started,
        }
    }
}

impl Drop for AsyncPool {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        {
            self.shared.lock_coord().shutdown = true;
        }
        self.shared.cv.notify_all();
        for t in self.threads.drain(..) {
            t.join().expect("async worker panicked");
        }
        // Jobs still queued when the pool dies would otherwise hang their
        // waiters; fail them loudly instead.
        for q in &self.shared.queues {
            for entry in q.lock().expect("queue poisoned").drain(..) {
                entry.job.fail(cancellation_error());
            }
        }
    }
}

/// A handle to one submitted cooperative job. `wait` blocks until the job
/// completes and assembles the uniform [`EngineOutcome`].
pub(crate) struct AsyncJobHandle {
    job: Arc<AsyncJob>,
    partition: PartitionReport,
    started: Instant,
}

impl AsyncJobHandle {
    /// Whether the job has already completed (successfully or not).
    pub(crate) fn is_done(&self) -> bool {
        self.job.is_done()
    }

    /// A detachable cancel token for this job, usable while (or after)
    /// `wait` consumes the handle.
    pub(crate) fn canceller(&self) -> AsyncCanceller {
        AsyncCanceller {
            job: Arc::clone(&self.job),
        }
    }

    /// Blocks until the job completes and returns its outcome.
    pub(crate) fn wait(self) -> Result<EngineOutcome, PodsError> {
        let mut done = self.job.done.lock().expect("done poisoned");
        while !*done {
            done = self.job.done_cv.wait(done).expect("done poisoned");
        }
        drop(done);
        if let Some(err) = self.job.error.lock().expect("error poisoned").take() {
            return Err(err.into());
        }
        let wall_us = self.started.elapsed().as_secs_f64() * 1e6;
        let arrays = self
            .job
            .store
            .snapshots()
            .into_iter()
            .map(|(id, name, shape, values)| ArraySnapshot {
                id,
                name,
                shape,
                values,
            })
            .collect();
        let return_value = self.job.result.lock().expect("result poisoned").take();
        Ok(EngineOutcome {
            engine: "async",
            return_value,
            arrays,
            modelled_us: None,
            wall_us,
            stats: EngineStats::AsyncCoop {
                stats: self.job.stats(),
                partition: self.partition,
            },
            diagnostics: None,
        })
    }
}

/// Cancel token for one cooperative job: stops the job at its next
/// instruction boundary with the supplied error, through the same stop-flag
/// path that pool teardown uses. A no-op if the job already finished.
#[derive(Clone)]
pub(crate) struct AsyncCanceller {
    job: Arc<AsyncJob>,
}

impl AsyncCanceller {
    /// Whether the job has already completed (successfully or not).
    pub(crate) fn is_done(&self) -> bool {
        self.job.is_done()
    }

    /// Stops the job with `err` unless it already finished.
    pub(crate) fn cancel(&self, err: SimulationError) {
        self.job.fail(err);
    }
}
