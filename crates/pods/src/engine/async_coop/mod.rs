//! The cooperative (async, futures-style) parallel engine.
//!
//! The native engine ([`super::NativeParallelEngine`]) already avoids
//! blocking OS threads on absent operands: the *instance* parks and the
//! worker moves on. But its suspension protocol is centralised — every
//! park, wake, and mailbox delivery goes through a job-global scheduler
//! mutex holding the blocked-instance registry — which puts a floor under
//! how cheap a suspension can get. The paper's thesis (iteration-level
//! parallelism pays off only when per-iteration scheduling overhead is
//! tiny) makes that floor the quantity worth attacking.
//!
//! This engine attacks it the way modern async runtimes do: each SP
//! instance is a **resumable state machine** ([`task::TaskHandle`]) whose
//! suspension state lives in the task itself. A deferred I-structure read
//! registers a **waker** — an `Arc` of the task plus the destination slot
//! — with the shared store's deferred-reader queue and the task keeps
//! running until the value is actually consumed (the split-phase rule of
//! the shared core); when the firing rule blocks, the task suspends, and
//! the write that eventually fills the element delivers the value by
//! locking only that one task and re-queues it if its awaited slot
//! arrived. A small cooperative executor ([`executor::AsyncPool`]) runs
//! the tasks: per-worker run queues, work stealing over *tasks* (not
//! threads), condvar-idle workers. There is no blocked-instance registry
//! and no mailbox map: value *delivery* locks only the receiving task.
//! (Re-queuing a woken task still touches the shared liveness and
//! ready-count locks — that part of the wake path is common to both
//! schedulers; what this engine removes is the per-delivery registry
//! transaction.)
//!
//! Everything else deliberately matches the native engine, so the two
//! schedulers are directly comparable:
//!
//! * same `Arc`-shared per-job program state ([`super::native::JobSpec`],
//!   also the [`crate::PreparedProgram`] fast path),
//! * same per-job model: one I-structure store, `live`/`in_flight`
//!   liveness counts with exact deadlock detection, first-error slot,
//!   drop-cancellation at instruction boundaries,
//! * same execution semantics *by construction*: both schedulers execute
//!   instructions through the shared core (`pods_sp::exec`), so operand
//!   coercion, Range-Filter clamping, and split-phase loads cannot
//!   diverge (the differential suite double-checks end to end),
//! * same knobs: [`crate::RunOptions::max_events`] bounds polls,
//!   [`crate::RunOptions::delivery_batch`] bounds the per-worker waker
//!   buffer (flushed at every task boundary, so liveness is unaffected).
//!
//! [`AsyncStats`] reports `suspensions` / `resumptions` / `steals`
//! alongside the shared counters, mirroring [`super::NativeStats`], so
//! `BENCH_engines.json`'s `async_vs_native` group can put the two
//! schedulers' overheads side by side.

mod executor;
mod task;

pub(crate) use executor::{AsyncCanceller, AsyncJobHandle, AsyncPool};

use super::{check_invocation, Engine, EngineOutcome};
use crate::engine::native::JobSpec;
use crate::error::PodsError;
use crate::pipeline::{CompiledProgram, RunOptions};
use pods_istructure::{StoreStats, Value};
use std::time::Instant;

/// Executes the partitioned SP program on a cooperative executor with
/// `opts.num_pes` worker threads: suspended instances are resumed by
/// I-structure wakers instead of a parked-instance registry. Reports
/// wall-clock time — the only honest clock for native execution.
///
/// This is the *cold* path: every `run` spins up a fresh executor and
/// tears it down afterwards. To reuse one executor across many runs, use
/// [`crate::Runtime`] with [`crate::EngineKind::AsyncCoop`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncCoopEngine;

/// Counters reported by the cooperative executor for one job. The shape
/// mirrors [`super::NativeStats`] (pool identity, job sequencing, wake-up
/// delivery) with the scheduler-specific trio the comparison is about:
/// `suspensions`, `resumptions`, and `steals`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncStats {
    /// Number of worker threads in the executor that ran the job.
    pub workers: usize,
    /// SP instances (tasks) created over the run.
    pub instances: u64,
    /// Task polls, counting each resume of a suspended instance (the
    /// async analogue of [`super::NativeStats::tasks`]).
    pub polls: u64,
    /// Times an instance returned `Pending` and saved its frame (the
    /// async analogue of [`super::NativeStats::parks`]).
    pub suspensions: u64,
    /// Suspended instances re-queued because a waker delivered their
    /// awaited slot. Equals `suspensions` on every run that completes.
    pub resumptions: u64,
    /// Tasks obtained by stealing from another worker's run queue.
    pub steals: u64,
    /// Process-unique identity of the executor that ran the job (shared
    /// id space with native pools — no two pools of either kind collide).
    pub pool_id: u64,
    /// 1-based sequence number of this job on its executor.
    pub job_seq: u64,
    /// Waker deliveries: one per `(waker, value)` pair a write
    /// re-activated, plus one per function-return value (returns travel
    /// through the same delivery path).
    pub wakeups: u64,
    /// Delivery-buffer flushes that performed those deliveries; batching
    /// coalesces up to `delivery_batch` wakeups per flush.
    pub wakeup_flushes: u64,
    /// Tasks whose frame vector was recycled from a worker's arena
    /// free-list instead of freshly allocated (the async analogue of
    /// [`super::NativeStats::arena_reuses`], so the two schedulers pay
    /// comparable allocator traffic).
    pub arena_reuses: u64,
    /// Extra loop iterations absorbed by chunked instances (the async
    /// analogue of [`super::NativeStats::chunk_iterations`]): grows by one
    /// each time the chunk driver advanced a task to its next iteration in
    /// place instead of spawning a fresh task.
    pub chunk_iterations: u64,
    /// Super-op firings (the async analogue of
    /// [`super::NativeStats::super_ops`]): whole fused runs executed in one
    /// dispatch by the specialized driver.
    pub super_ops: u64,
    /// Chunk-size retunes applied by [`crate::Runtime`]'s adaptive grain
    /// control before this job ran (0 on first runs and fixed policies).
    pub chunks_autotuned: u64,
    /// Allocation counters of this job's I-structure store (live/peak
    /// arrays and approximate bytes).
    pub store: StoreStats,
}

impl AsyncStats {
    /// SP instances (tasks) actually created over the run (alias of
    /// `instances`, named for symmetry with
    /// [`Self::iterations_per_instance`]).
    pub fn instances_spawned(&self) -> u64 {
        self.instances
    }

    /// Effective grain: average loop iterations executed per spawned task.
    /// `1.0` for an unchunked run; grows toward the chunk size as chunking
    /// takes hold.
    pub fn iterations_per_instance(&self) -> f64 {
        if self.instances == 0 {
            return 0.0;
        }
        (self.instances + self.chunk_iterations) as f64 / self.instances as f64
    }
}

impl std::fmt::Display for AsyncStats {
    /// One-line human summary, shared by the examples and the slow-job
    /// diagnostics (see [`super::EngineStats::summary`]).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "async: {} worker(s), {} instances ({:.1} iter/instance), {} polls, \
             {} super-ops, {} suspensions, {} steals, {} wakeups in {} flushes, peak {} arrays",
            self.workers,
            self.instances,
            self.iterations_per_instance(),
            self.polls,
            self.super_ops,
            self.suspensions,
            self.steals,
            self.wakeups,
            self.wakeup_flushes,
            self.store.peak_arrays,
        )
    }
}

impl Engine for AsyncCoopEngine {
    fn name(&self) -> &'static str {
        "async"
    }

    fn description(&self) -> &'static str {
        "cooperative executor: futures-style instance suspension with I-structure wakers (wall-clock time on N threads)"
    }

    fn run(
        &self,
        program: &CompiledProgram,
        args: &[Value],
        opts: &RunOptions,
    ) -> Result<EngineOutcome, PodsError> {
        check_invocation(program, args)?;
        let start = Instant::now();
        let pool = AsyncPool::new(opts.num_pes.max(1));
        let handle = pool.submit(JobSpec::from_options(program, opts), args);
        let mut outcome = handle.wait()?;
        // The cold path owns the executor, so its wall-clock honestly
        // includes executor spawn, measured from entry.
        outcome.wall_us = start.elapsed().as_secs_f64() * 1e6;
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineStats;
    use crate::pipeline::compile;
    use pods_machine::SimulationError;

    fn run_async(src: &str, args: &[Value], workers: usize) -> EngineOutcome {
        let program = compile(src).unwrap();
        AsyncCoopEngine
            .run(&program, args, &RunOptions::with_pes(workers))
            .unwrap()
    }

    fn async_stats(outcome: &EngineOutcome) -> AsyncStats {
        match &outcome.stats {
            EngineStats::AsyncCoop { stats, .. } => *stats,
            other => panic!("expected async stats, got {other:?}"),
        }
    }

    #[test]
    fn scalar_and_function_calls() {
        let outcome = run_async(
            "def main(n) { x = double(n); return x + 1; } def double(v) { return v * 2; }",
            &[Value::Int(10)],
            2,
        );
        assert_eq!(outcome.return_value, Some(Value::Int(21)));
        let stats = async_stats(&outcome);
        assert_eq!(stats.workers, 2);
        assert!(stats.instances >= 2);
        assert!(stats.polls >= stats.instances);
    }

    #[test]
    fn distributed_fill_is_complete_on_any_worker_count() {
        let src = r#"
            def main(n) {
                a = matrix(n, n);
                for i = 0 to n - 1 {
                    for j = 0 to n - 1 { a[i, j] = i * n + j; }
                }
                return a;
            }
        "#;
        let reference = run_async(src, &[Value::Int(8)], 1);
        let expected = reference.returned_array().unwrap().to_f64(-1.0);
        for workers in [2, 4, 8] {
            let outcome = run_async(src, &[Value::Int(8)], workers);
            let a = outcome.returned_array().unwrap();
            assert!(a.is_complete(), "incomplete on {workers} workers");
            assert_eq!(
                a.to_f64(-1.0),
                expected,
                "wrong values on {workers} workers"
            );
        }
    }

    #[test]
    fn consumers_suspend_until_producers_write_and_counters_balance() {
        let src = r#"
            def main(n) {
                a = array(n);
                for i = 0 to n - 1 { a[i] = i * 2; }
                s = a[n - 1] + a[0];
                return s;
            }
        "#;
        let outcome = run_async(src, &[Value::Int(10)], 4);
        assert_eq!(outcome.return_value, Some(Value::Int(18)));
        let stats = async_stats(&outcome);
        // Every suspension of a completed run was resumed by a waker.
        assert_eq!(stats.suspensions, stats.resumptions);
        assert!(stats.polls >= stats.instances + stats.resumptions);
    }

    #[test]
    fn carried_recurrence_is_computed_correctly() {
        let src = r#"
            def main(n) {
                src = array(n);
                for i = 0 to n - 1 { src[i] = i * 1.0; }
                acc = array(n);
                acc[0] = src[0];
                for i = 1 to n - 1 { acc[i] = acc[i - 1] + src[i]; }
                return acc;
            }
        "#;
        let outcome = run_async(src, &[Value::Int(16)], 4);
        let acc = outcome.returned_array().unwrap();
        assert!(acc.is_complete());
        assert_eq!(acc.get(&[15]), Some(Value::Float(120.0)));
    }

    #[test]
    fn single_assignment_violation_is_a_runtime_error() {
        let program =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[0] = i; } return 0; }")
                .unwrap();
        let err = AsyncCoopEngine
            .run(&program, &[Value::Int(4)], &RunOptions::with_pes(1))
            .unwrap_err();
        assert!(
            matches!(err, PodsError::Simulation(SimulationError::Runtime(_))),
            "{err}"
        );
    }

    #[test]
    fn reading_a_never_written_element_is_detected_as_deadlock() {
        let program = compile("def main(n) { a = array(n); a[0] = 1; return a[1]; }").unwrap();
        for workers in [1, 4] {
            let err = AsyncCoopEngine
                .run(&program, &[Value::Int(4)], &RunOptions::with_pes(workers))
                .unwrap_err();
            let PodsError::Simulation(SimulationError::Deadlock { detail, .. }) = &err else {
                panic!("workers={workers}: expected deadlock, got {err}");
            };
            assert!(
                detail.contains("awaiting"),
                "deadlock detail must name the awaited slot: {detail}"
            );
        }
    }

    #[test]
    fn poll_limit_aborts_runaway_runs() {
        let program = compile(
            "def main(n) { a = matrix(n, n); for i = 0 to n - 1 { for j = 0 to n - 1 { a[i, j] = i + j; } } return a; }",
        )
        .unwrap();
        let mut opts = RunOptions::with_pes(2);
        opts.max_events = 3;
        let err = AsyncCoopEngine
            .run(&program, &[Value::Int(8)], &opts)
            .unwrap_err();
        assert!(matches!(
            err,
            PodsError::Simulation(SimulationError::EventLimitExceeded { limit: 3 })
        ));
    }

    #[test]
    fn out_of_bounds_store_is_reported() {
        let program = compile("def main(n) { a = array(n); a[n + 5] = 1; return 0; }").unwrap();
        let err = AsyncCoopEngine
            .run(&program, &[Value::Int(4)], &RunOptions::with_pes(2))
            .unwrap_err();
        assert!(matches!(
            err,
            PodsError::Simulation(SimulationError::Runtime(_))
        ));
    }

    #[test]
    fn one_executor_runs_many_jobs_with_disjoint_state() {
        let fill =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * 3; } return a; }")
                .unwrap();
        let scalar = compile("def main(n) { return n * 7; }").unwrap();
        let pool = AsyncPool::new(4);
        let opts = RunOptions::with_pes(4);
        let mut handles = Vec::new();
        for k in 0..6i64 {
            let (program, args) = if k % 2 == 0 {
                (&fill, vec![Value::Int(8 + k)])
            } else {
                (&scalar, vec![Value::Int(k)])
            };
            handles.push((k, pool.submit(JobSpec::from_options(program, &opts), &args)));
        }
        let mut seqs = Vec::new();
        for (k, handle) in handles {
            let outcome = handle.wait().unwrap();
            if k % 2 == 0 {
                let a = outcome.returned_array().unwrap();
                assert!(a.is_complete(), "job {k} incomplete");
                assert_eq!(a.get(&[2]), Some(Value::Int(6)), "job {k}");
            } else {
                assert_eq!(outcome.return_value, Some(Value::Int(k * 7)), "job {k}");
            }
            let stats = async_stats(&outcome);
            assert_eq!(stats.pool_id, pool.id());
            seqs.push(stats.job_seq);
        }
        seqs.sort_unstable();
        assert_eq!(seqs, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn a_failing_job_does_not_poison_the_executor() {
        let bad = compile("def main(n) { a = array(n); a[0] = 1; return a[1]; }").unwrap();
        let good = compile("def main(n) { return n + 1; }").unwrap();
        let pool = AsyncPool::new(2);
        let opts = RunOptions::with_pes(2);
        let bad_handle = pool.submit(JobSpec::from_options(&bad, &opts), &[Value::Int(4)]);
        let good_handle = pool.submit(JobSpec::from_options(&good, &opts), &[Value::Int(4)]);
        assert!(bad_handle.wait().is_err());
        assert_eq!(
            good_handle.wait().unwrap().return_value,
            Some(Value::Int(5))
        );
        let again = pool.submit(JobSpec::from_options(&good, &opts), &[Value::Int(9)]);
        assert_eq!(again.wait().unwrap().return_value, Some(Value::Int(10)));
    }

    #[test]
    fn batched_waker_delivery_coalesces_flushes_without_changing_wakeups() {
        // Same probe workload as the native batching test: 16 split-phase
        // probes suspend on unwritten elements, one producer task wakes
        // them all. Batch 16 must deliver the same wakeups in fewer
        // flushes, with identical results.
        let src = r#"
            def main(n) {
                a = array(n);
                for i = 0 to n - 1 { a[i] = i * 3; }
                return probe(a, 0) + (probe(a, 1) + (probe(a, 2) + (probe(a, 3)
                     + (probe(a, 4) + (probe(a, 5) + (probe(a, 6) + (probe(a, 7)
                     + (probe(a, 8) + (probe(a, 9) + (probe(a, 10) + (probe(a, 11)
                     + (probe(a, 12) + (probe(a, 13) + (probe(a, 14) + probe(a, 15)
                     ))))))))))))));
            }
            def probe(a, i) { return a[i] + 1; }
        "#;
        let program = compile(src).unwrap();
        let expected = (0..16).map(|i| i * 3 + 1).sum::<i64>();
        let stats_for = |batch: usize| {
            let mut opts = RunOptions::with_pes(1);
            opts.delivery_batch = batch;
            let outcome = AsyncCoopEngine
                .run(&program, &[Value::Int(16)], &opts)
                .unwrap();
            assert_eq!(
                outcome.return_value,
                Some(Value::Int(expected)),
                "batch={batch}"
            );
            async_stats(&outcome)
        };
        let unbatched = stats_for(1);
        let batched = stats_for(16);
        assert_eq!(
            unbatched.wakeups, batched.wakeups,
            "batching must not change how many wakers fire"
        );
        assert!(
            unbatched.wakeups >= 32,
            "expected 16 deferred reads + 16 returns, got {}",
            unbatched.wakeups
        );
        assert!(
            batched.wakeup_flushes + 8 <= unbatched.wakeup_flushes,
            "batch=16 should need fewer flushes: {} vs {}",
            batched.wakeup_flushes,
            unbatched.wakeup_flushes
        );
    }

    #[test]
    fn worker_arena_recycles_task_frames() {
        // Mirror of the native arena test: one probe task per iteration,
        // sequentially — after the first frame is recycled every later
        // spawn reuses it, so reuse grows with n.
        let src = r#"
            def main(n) {
                a = array(n);
                s = array(n);
                for i = 0 to n - 1 { a[i] = i * 3; }
                for i = 0 to n - 1 { s[i] = probe(a, i); }
                return s;
            }
            def probe(a, i) { return a[i] + 1; }
        "#;
        let program = compile(src).unwrap();
        let mut opts = RunOptions::with_pes(1);
        opts.delivery_batch = 16;
        let outcome = AsyncCoopEngine
            .run(&program, &[Value::Int(64)], &opts)
            .unwrap();
        let stats = async_stats(&outcome);
        assert!(
            stats.arena_reuses > 32,
            "expected recycled task frames, got {} (instances {})",
            stats.arena_reuses,
            stats.instances
        );
    }
}
