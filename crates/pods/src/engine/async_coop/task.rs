//! The resumable SP instance: a futures-style task with a waker protocol.
//!
//! Where the native engine registers a parked instance in a *job-global*
//! blocked registry (one scheduler mutex, one mailbox map), a cooperative
//! task carries its whole suspension state in itself: the saved frame, the
//! slot it awaits, and a small per-task mutex. The waiter tag registered
//! with the I-structure store *is* the waker — an `Arc` of the task plus
//! the destination slot — so a write re-activates a suspended instance by
//! locking only that one task, never a central scheduler structure. This is
//! exactly the `Waker` half of Rust's `Future` contract, specialised to SP
//! instances: `deliver` is `wake_by_ref`, `try_suspend` is returning
//! `Poll::Pending` after re-checking for a wake that raced the suspension.

use pods_istructure::Value;
use pods_machine::InstanceId;
use pods_sp::{SlotId, SpId};
use std::sync::{Arc, Mutex};

/// The waiter tag the async engine registers with the shared I-structure
/// store: a waker. When the producing write lands, the store hands this tag
/// back and the writer delivers the value straight into the task.
pub(crate) struct AsyncWaiter {
    /// The task awaiting the value.
    pub task: Arc<TaskHandle>,
    /// The frame slot the value is destined for.
    pub slot: SlotId,
}

/// The saved execution state of a suspended (or queued) task: everything a
/// worker needs to resume the SP instance where it left off.
#[derive(Debug)]
pub(crate) struct Frame {
    pub pc: usize,
    pub slots: Vec<Option<Value>>,
}

impl Frame {
    pub(crate) fn slot(&self, slot: SlotId) -> Option<Value> {
        self.slots.get(slot.index()).copied().flatten()
    }

    pub(crate) fn is_present(&self, slot: SlotId) -> bool {
        self.slot(slot).is_some()
    }

    pub(crate) fn set_slot(&mut self, slot: SlotId, value: Value) {
        if slot.index() < self.slots.len() {
            self.slots[slot.index()] = Some(value);
        }
    }

    pub(crate) fn clear_slot(&mut self, slot: SlotId) {
        if slot.index() < self.slots.len() {
            self.slots[slot.index()] = None;
        }
    }
}

/// Where a task is in its lifecycle. Transitions:
/// `Queued → Running → {Queued (yield via wake), Suspended, Done}`,
/// `Suspended → Queued` (a waker delivered the awaited slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// In some worker's run queue, frame saved in the task.
    Queued,
    /// A worker holds the frame and is executing instructions.
    Running,
    /// Waiting for the given slot; frame saved in the task.
    Suspended(SlotId),
    /// Finished, errored, or abandoned; the frame is gone.
    Done,
}

/// The mutable core of a task, behind the per-task mutex.
#[derive(Debug)]
struct TaskCore {
    /// The saved frame; `None` exactly while a worker is running the task.
    frame: Option<Frame>,
    phase: Phase,
    /// Values that arrived while the frame was checked out (the per-task
    /// analogue of the native engine's job-global mailbox). Drained into
    /// the frame at resume and at suspension, so a wake that races the
    /// suspension is never lost.
    pending: Vec<(SlotId, Value)>,
}

/// One cooperative SP instance. Shared as `Arc<TaskHandle>`: the run queue,
/// the store's deferred-reader queues (as wakers), and child tasks (for
/// return routing) all hold references; the task owns no reference to its
/// job or pool, so dropping a job's store releases every task suspended on
/// it with no reference cycle.
pub(crate) struct TaskHandle {
    pub id: InstanceId,
    pub template: SpId,
    /// The virtual PE this instance runs as (drives Range Filters).
    pub pe: usize,
    /// Waker for the function-return value, if this is a call.
    pub return_to: Option<(Arc<TaskHandle>, SlotId)>,
    core: Mutex<TaskCore>,
}

impl TaskHandle {
    /// A fresh task, queued, over a ready-made frame vector (arguments
    /// already in the parameter slots — the executor builds frames through
    /// its per-worker arena so finished frames are recycled).
    pub(crate) fn new(
        id: InstanceId,
        template: SpId,
        pe: usize,
        slots: Vec<Option<Value>>,
        return_to: Option<(Arc<TaskHandle>, SlotId)>,
    ) -> TaskHandle {
        TaskHandle {
            id,
            template,
            pe,
            return_to,
            core: Mutex::new(TaskCore {
                frame: Some(Frame { pc: 0, slots }),
                phase: Phase::Queued,
                pending: Vec::new(),
            }),
        }
    }

    /// Checks the frame out for execution: drains pending deliveries into
    /// it and marks the task running. Called by the worker that popped the
    /// task off a run queue.
    pub(crate) fn begin_poll(&self) -> Frame {
        let mut core = self.core.lock().expect("task core poisoned");
        let mut frame = core.frame.take().expect("queued task owns its frame");
        for (slot, value) in core.pending.drain(..) {
            frame.set_slot(slot, value);
        }
        core.phase = Phase::Running;
        frame
    }

    /// Delivers a value into the task (the wake path). Returns `true` when
    /// the delivery re-activated a suspension — the caller must then put
    /// the task back on a run queue. Deliveries to a running task are
    /// buffered in `pending` (the frame is checked out); deliveries to a
    /// queued or suspended task land directly in the saved frame.
    pub(crate) fn deliver(&self, slot: SlotId, value: Value) -> bool {
        let mut core = self.core.lock().expect("task core poisoned");
        match core.phase {
            Phase::Running => {
                core.pending.push((slot, value));
                false
            }
            Phase::Queued => {
                if let Some(frame) = core.frame.as_mut() {
                    frame.set_slot(slot, value);
                }
                false
            }
            Phase::Suspended(awaited) => {
                let frame = core.frame.as_mut().expect("suspended task owns its frame");
                frame.set_slot(slot, value);
                if frame.is_present(awaited) {
                    core.phase = Phase::Queued;
                    true
                } else {
                    false
                }
            }
            Phase::Done => false,
        }
    }

    /// Attempts to suspend the running task on `awaited`. Pending
    /// deliveries are drained first; if one of them filled the awaited slot
    /// the frame is handed straight back (`Some`) and the task keeps
    /// running — the cooperative analogue of the native engine's
    /// park-then-mailbox re-check, closing the race where the producing
    /// write lands between the firing-rule miss and the suspension.
    pub(crate) fn try_suspend(&self, mut frame: Frame, awaited: SlotId) -> Option<Frame> {
        let mut core = self.core.lock().expect("task core poisoned");
        for (slot, value) in core.pending.drain(..) {
            frame.set_slot(slot, value);
        }
        if frame.is_present(awaited) {
            return Some(frame);
        }
        core.frame = Some(frame);
        core.phase = Phase::Suspended(awaited);
        None
    }

    /// Marks the task finished (successfully or abandoned); its frame is
    /// dropped by the caller and late deliveries become no-ops.
    pub(crate) fn retire(&self) {
        let mut core = self.core.lock().expect("task core poisoned");
        core.phase = Phase::Done;
        core.pending.clear();
        core.frame = None;
    }
}

impl std::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskHandle")
            .field("id", &self.id)
            .field("template", &self.template)
            .field("pe", &self.pe)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> Arc<TaskHandle> {
        let mut slots = vec![None; 4];
        slots[0] = Some(Value::Int(1));
        Arc::new(TaskHandle::new(InstanceId(7), SpId(0), 0, slots, None))
    }

    #[test]
    fn frames_carry_args_and_presence_bits() {
        let t = task();
        let frame = t.begin_poll();
        assert_eq!(frame.slot(SlotId(0)), Some(Value::Int(1)));
        assert!(!frame.is_present(SlotId(1)));
        assert_eq!(frame.pc, 0);
    }

    #[test]
    fn delivery_to_a_suspension_wakes_exactly_once() {
        let t = task();
        let frame = t.begin_poll();
        assert!(t.try_suspend(frame, SlotId(2)).is_none());
        // A delivery to a different slot fills the frame but does not wake.
        assert!(!t.deliver(SlotId(3), Value::Int(30)));
        // The awaited slot wakes — once.
        assert!(t.deliver(SlotId(2), Value::Int(20)));
        assert!(!t.deliver(SlotId(1), Value::Int(10)));
        let frame = t.begin_poll();
        assert_eq!(frame.slot(SlotId(1)), Some(Value::Int(10)));
        assert_eq!(frame.slot(SlotId(2)), Some(Value::Int(20)));
        assert_eq!(frame.slot(SlotId(3)), Some(Value::Int(30)));
    }

    #[test]
    fn a_wake_racing_the_suspension_is_not_lost() {
        let t = task();
        let frame = t.begin_poll();
        // The value arrives while the task is still running (frame checked
        // out): it lands in `pending` …
        assert!(!t.deliver(SlotId(2), Value::Int(9)));
        // … and the suspension attempt finds it and keeps the task running.
        let frame = t.try_suspend(frame, SlotId(2)).expect("must keep running");
        assert_eq!(frame.slot(SlotId(2)), Some(Value::Int(9)));
    }

    #[test]
    fn retired_tasks_ignore_late_deliveries() {
        let t = task();
        let _frame = t.begin_poll();
        t.retire();
        assert!(!t.deliver(SlotId(0), Value::Int(5)));
    }
}
