//! The execution layer of PODS: one [`Engine`] abstraction, five engines.
//!
//! Historically the repository had three unrelated ways to execute a
//! compiled program — the discrete-event machine simulator, the sequential
//! baseline interpreter, and the Pingali & Rogers cost model — each with its
//! own entry point and result type, wired ad hoc through the pipeline. This
//! module unifies them behind a single trait (in the spirit of Timely
//! Dataflow's `execute` layer): every engine consumes the same
//! [`CompiledProgram`] and [`RunOptions`] and produces the same
//! [`EngineOutcome`], so correctness can be cross-checked differentially and
//! speed-up sweeps can compare simulated PEs against real hardware threads
//! from one code path.
//!
//! The engines:
//!
//! * [`SimEngine`] — the paper-faithful instruction-level simulator
//!   (`pods_machine::simulate`); reports *simulated* time on N virtual PEs.
//! * [`SequentialEngine`] — the control-driven sequential interpreter
//!   (`pods_baseline::run_sequential`); the correctness oracle.
//! * [`PrEstimateEngine`] — the static-compilation cost model
//!   (`pods_baseline::PrModel`) driven by a sequential profile.
//! * [`NativeParallelEngine`] — executes the partitioned SP program on a
//!   real work-stealing thread pool with a thread-safe I-structure store,
//!   reporting *wall-clock* time on N OS threads.
//! * [`AsyncCoopEngine`] — the same partitioned program on a cooperative
//!   executor: instances are futures-style resumable state machines,
//!   suspended reads register *wakers* with the I-structure store, and a
//!   per-worker run-queue scheduler with work stealing over tasks resumes
//!   them — the scheduling-overhead comparison the paper's evaluation is
//!   about.
//!
//! Engine selection is *typed*: [`EngineKind`] is the enum of the five
//! engines, parses every historical name and alias (`FromStr`), and maps to
//! a `&'static` engine instance without allocation. The preferred way to
//! execute programs is a [`crate::Runtime`] built from an `EngineKind`;
//! the example below drives the static registry directly:
//!
//! ```
//! use pods::{compile, EngineKind, RunOptions, Value};
//!
//! let program = compile(
//!     "def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * i; } return a; }",
//! )?;
//! for kind in EngineKind::ALL {
//!     let outcome = kind
//!         .engine()
//!         .run(&program, &[Value::Int(8)], &RunOptions::with_pes(2))?;
//!     assert_eq!(outcome.returned_array().unwrap().get(&[3]), Some(Value::Int(9)));
//! }
//! assert_eq!("threads".parse::<EngineKind>()?, EngineKind::Native);
//! # Ok::<(), pods::PodsError>(())
//! ```

mod async_coop;
mod native;
mod pr;
mod seq;
mod sim;

pub(crate) use async_coop::{AsyncCanceller, AsyncJobHandle, AsyncPool};
pub use async_coop::{AsyncCoopEngine, AsyncStats};
pub(crate) use native::{
    build_read_slots, JobSpec, NativeCanceller, NativeJobHandle, NativePool, ReadSlots,
};
pub use native::{NativeParallelEngine, NativeStats};
pub use pr::PrEstimateEngine;
pub use seq::SequentialEngine;
pub use sim::SimEngine;

use crate::error::PodsError;
use crate::pipeline::{CompiledProgram, RunOptions};
use pods_baseline::PrPoint;
use pods_istructure::Value;
use pods_machine::{ArraySnapshot, SimulationStats, Unit};
use pods_partition::PartitionReport;
use std::sync::LazyLock;

/// A uniform executor of compiled PODS programs.
///
/// Engines are stateless and cheap to construct; configuration that varies
/// per run (machine size, page size, partitioning switches) travels in
/// [`RunOptions`].
pub trait Engine: Send + Sync {
    /// Short stable name used for engine selection (`"sim"`, `"seq"`,
    /// `"pr"`, `"native"`).
    fn name(&self) -> &'static str;

    /// One-line human description of what the engine measures.
    fn description(&self) -> &'static str;

    /// Executes `program` with `args` under `opts`.
    ///
    /// # Errors
    ///
    /// Returns a [`PodsError`] for malformed invocations (missing `main`,
    /// argument-count mismatch) and for run-time failures (deadlock,
    /// single-assignment violations, out-of-bounds accesses).
    fn run(
        &self,
        program: &CompiledProgram,
        args: &[Value],
        opts: &RunOptions,
    ) -> Result<EngineOutcome, PodsError>;
}

/// Per-engine statistics attached to an [`EngineOutcome`].
#[derive(Debug, Clone)]
pub enum EngineStats {
    /// Machine-simulator statistics plus the partitioning decisions.
    Simulated {
        /// Per-unit utilizations, counters, elapsed simulated time.
        stats: SimulationStats,
        /// The partitioner's per-loop decisions.
        partition: PartitionReport,
    },
    /// Sequential-interpreter profile summary.
    Sequential {
        /// Number of top-level loop nests profiled.
        nests: usize,
        /// Modelled time spent outside any loop nest (microseconds).
        serial_us: f64,
    },
    /// The static-compilation model's estimate.
    Estimated {
        /// The modelled point (PEs, time, speed-up).
        point: PrPoint,
    },
    /// Native thread-pool statistics plus the partitioning decisions.
    Native {
        /// Worker/instance/steal counters from the pool.
        stats: NativeStats,
        /// The partitioner's per-loop decisions.
        partition: PartitionReport,
    },
    /// Cooperative-executor statistics plus the partitioning decisions.
    AsyncCoop {
        /// Poll/suspension/resumption/steal counters from the executor.
        stats: AsyncStats,
        /// The partitioner's per-loop decisions.
        partition: PartitionReport,
    },
}

/// The uniform result of running a program on any [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// Name of the engine that produced this outcome.
    pub engine: &'static str,
    /// The value returned by `main`, if any.
    pub return_value: Option<Value>,
    /// Final contents of every allocated array, in allocation order.
    pub arrays: Vec<ArraySnapshot>,
    /// Modelled/simulated elapsed time in microseconds, for engines that
    /// model time (`sim`, `seq`, `pr`); `None` for the native engine, whose
    /// only honest clock is the wall.
    pub modelled_us: Option<f64>,
    /// Measured host wall-clock time of the run, in microseconds.
    pub wall_us: f64,
    /// Engine-specific statistics.
    pub stats: EngineStats,
    /// Per-job time breakdown from the flight recorder (queue wait vs
    /// dispatch vs run vs blocked time) — `Some` only when the runtime was
    /// built with tracing enabled and the recorder captured events for this
    /// job. See [`crate::trace`].
    pub diagnostics: Option<crate::trace::JobBreakdown>,
}

impl EngineOutcome {
    /// The elapsed time this engine is designed to report: modelled time
    /// when the engine models one, wall-clock time otherwise. This is the
    /// quantity speed-up sweeps compare.
    pub fn elapsed_us(&self) -> f64 {
        self.modelled_us.unwrap_or(self.wall_us)
    }

    /// The last-allocated array with the given source-level name.
    pub fn array(&self, name: &str) -> Option<&ArraySnapshot> {
        self.arrays.iter().rev().find(|a| a.name == name)
    }

    /// The array referenced by `main`'s return value, if it returned one.
    pub fn returned_array(&self) -> Option<&ArraySnapshot> {
        match self.return_value {
            Some(Value::ArrayRef(id)) => self.arrays.iter().find(|a| a.id == id),
            _ => None,
        }
    }

    /// Execution-Unit utilization, for engines that simulate the machine.
    pub fn eu_utilization(&self) -> Option<f64> {
        match &self.stats {
            EngineStats::Simulated { stats, .. } => Some(stats.utilization(Unit::Execution)),
            _ => None,
        }
    }

    /// Effective grain — average loop iterations executed per spawned SP
    /// instance — for the engines that spawn real instances (native,
    /// async). `None` for the modelled engines, which have no instance
    /// pool to measure.
    pub fn iterations_per_instance(&self) -> Option<f64> {
        match &self.stats {
            EngineStats::Native { stats, .. } => Some(stats.iterations_per_instance()),
            EngineStats::AsyncCoop { stats, .. } => Some(stats.iterations_per_instance()),
            _ => None,
        }
    }

    /// The partition report, for engines that run the partitioned program.
    pub fn partition(&self) -> Option<&PartitionReport> {
        match &self.stats {
            EngineStats::Simulated { partition, .. }
            | EngineStats::Native { partition, .. }
            | EngineStats::AsyncCoop { partition, .. } => Some(partition),
            _ => None,
        }
    }

    /// A one-line human summary of this outcome's scheduler statistics
    /// ([`EngineStats::summary`]).
    pub fn summary(&self) -> String {
        self.stats.summary()
    }
}

impl EngineStats {
    /// A one-line human summary of the engine's counters, uniform across
    /// engines: the pooled engines defer to [`NativeStats`]/[`AsyncStats`]
    /// `Display`, the modelled engines report their headline numbers.
    pub fn summary(&self) -> String {
        match self {
            EngineStats::Simulated { stats, .. } => format!(
                "sim: {:.0}µs simulated, EU utilization {:.0}%",
                stats.elapsed_us,
                stats.utilization(Unit::Execution) * 100.0
            ),
            EngineStats::Sequential { nests, serial_us } => {
                format!("seq: {nests} loop nest(s), {serial_us:.0}µs serial")
            }
            EngineStats::Estimated { point } => format!(
                "pr: {:.0}µs estimated on {} PE(s), speed-up {:.2}",
                point.elapsed_us, point.pes, point.speedup
            ),
            EngineStats::Native { stats, .. } => stats.to_string(),
            EngineStats::AsyncCoop { stats, .. } => stats.to_string(),
        }
    }
}

/// Names of all built-in engines, in canonical order.
pub const ENGINE_NAMES: [&str; 5] = ["sim", "seq", "pr", "native", "async"];

/// The typed identity of an execution engine.
///
/// This replaces stringly engine selection: parse a name (or alias) once
/// into an `EngineKind`, then build a [`crate::Runtime`] from it or fetch
/// the `&'static` engine instance with [`EngineKind::engine`]. Parsing is
/// case-insensitive and accepts every name the string-based API ever
/// accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// The instruction-level iPSC/2 machine simulator ([`SimEngine`]).
    Sim,
    /// The sequential oracle interpreter ([`SequentialEngine`]).
    Seq,
    /// The Pingali & Rogers static-compilation cost model
    /// ([`PrEstimateEngine`]).
    Pr,
    /// The native work-stealing thread pool ([`NativeParallelEngine`]).
    Native,
    /// The cooperative futures-style executor ([`AsyncCoopEngine`]).
    AsyncCoop,
}

static SIM_ENGINE: SimEngine = SimEngine;
static SEQ_ENGINE: SequentialEngine = SequentialEngine;
static NATIVE_ENGINE: NativeParallelEngine = NativeParallelEngine;
static ASYNC_ENGINE: AsyncCoopEngine = AsyncCoopEngine;
static PR_ENGINE: LazyLock<PrEstimateEngine> = LazyLock::new(PrEstimateEngine::default);

impl EngineKind {
    /// All engine kinds, in canonical order (matching [`ENGINE_NAMES`]).
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Sim,
        EngineKind::Seq,
        EngineKind::Pr,
        EngineKind::Native,
        EngineKind::AsyncCoop,
    ];

    /// The canonical short name (`"sim"`, `"seq"`, `"pr"`, `"native"`,
    /// `"async"`).
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Sim => "sim",
            EngineKind::Seq => "seq",
            EngineKind::Pr => "pr",
            EngineKind::Native => "native",
            EngineKind::AsyncCoop => "async",
        }
    }

    /// Every accepted spelling of this kind, canonical name first.
    pub fn aliases(self) -> &'static [&'static str] {
        match self {
            EngineKind::Sim => &["sim", "simulator", "pods"],
            EngineKind::Seq => &["seq", "sequential", "baseline"],
            EngineKind::Pr => &["pr", "estimate", "pingali-rogers"],
            EngineKind::Native => &["native", "threads", "parallel"],
            EngineKind::AsyncCoop => &["async", "async-coop", "coop", "futures"],
        }
    }

    /// Whether runs of this kind execute on a persistent worker pool a
    /// [`crate::Runtime`] keeps warm (as opposed to the modelled engines,
    /// which run eagerly on the calling thread).
    pub fn is_pooled(self) -> bool {
        matches!(self, EngineKind::Native | EngineKind::AsyncCoop)
    }

    /// Parses a name or alias, case-insensitively and without allocating.
    /// Returns `None` for unknown names ([`std::str::FromStr`] maps that to
    /// [`PodsError::UnknownEngine`]).
    pub fn parse(name: &str) -> Option<EngineKind> {
        EngineKind::ALL
            .into_iter()
            .find(|k| k.aliases().iter().any(|a| a.eq_ignore_ascii_case(name)))
    }

    /// The shared, statically-allocated engine instance of this kind.
    pub fn engine(self) -> &'static dyn Engine {
        match self {
            EngineKind::Sim => &SIM_ENGINE,
            EngineKind::Seq => &SEQ_ENGINE,
            EngineKind::Pr => &*PR_ENGINE,
            EngineKind::Native => &NATIVE_ENGINE,
            EngineKind::AsyncCoop => &ASYNC_ENGINE,
        }
    }

    /// The engine kind selected by the `PODS_ENGINE` environment variable
    /// (default: [`EngineKind::Sim`] when unset).
    ///
    /// This is the one place CLIs should read `PODS_ENGINE`, so that an
    /// unknown value fails loudly everywhere instead of silently falling
    /// back to a default.
    ///
    /// # Errors
    ///
    /// Returns [`PodsError::UnknownEngine`] when the variable is set to a
    /// name no engine answers to (or to non-UTF-8 bytes); the error message
    /// lists every valid engine name and alias, so a typo in `PODS_ENGINE`
    /// tells the user what would have worked.
    pub fn from_env() -> Result<EngineKind, PodsError> {
        EngineKind::from_env_value(std::env::var("PODS_ENGINE"))
    }

    /// The pure core of [`EngineKind::from_env`], split out so the
    /// name-resolution and error-message behaviour is unit-testable without
    /// mutating the process environment (which is unsound under the
    /// multi-threaded test harness).
    fn from_env_value(var: Result<String, std::env::VarError>) -> Result<EngineKind, PodsError> {
        match var {
            Ok(name) => name.parse(),
            Err(std::env::VarError::NotPresent) => Ok(EngineKind::Sim),
            Err(std::env::VarError::NotUnicode(raw)) => Err(PodsError::UnknownEngine {
                name: raw.to_string_lossy().into_owned(),
            }),
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = PodsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::parse(s).ok_or_else(|| PodsError::UnknownEngine {
            name: s.to_string(),
        })
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Looks an engine up by name (case-insensitive; a few aliases accepted).
///
/// Allocation-free: backed by [`EngineKind::parse`] and the static engine
/// registry. Returns `None` for unknown names;
/// [`crate::pipeline::CompiledProgram::run_on`] converts that into
/// [`PodsError::UnknownEngine`].
pub fn engine_by_name(name: &str) -> Option<&'static dyn Engine> {
    Some(EngineKind::parse(name)?.engine())
}

/// Per-task memo of array directory lookups, shared by both pooled
/// engines (generic over the store's waiter tag type).
///
/// Going through the store's sharded directory (plus an `Arc` refcount
/// bump) for every element access costs two shared-cache-line touches;
/// loop instances touch the same few arrays thousands of times, so one
/// lookup per task execution amortises to nothing. The cache lives on the
/// worker's stack for the duration of one task/poll and is simply rebuilt
/// after a park or suspension.
#[derive(Debug)]
pub(crate) struct ArrayCache<T> {
    entries: Vec<(
        pods_istructure::ArrayId,
        std::sync::Arc<pods_istructure::SharedArray<T>>,
    )>,
}

impl<T> Default for ArrayCache<T> {
    fn default() -> Self {
        ArrayCache {
            entries: Vec::new(),
        }
    }
}

impl<T> ArrayCache<T> {
    pub(crate) fn get(
        &mut self,
        store: &pods_istructure::SharedArrayStore<T>,
        id: pods_istructure::ArrayId,
    ) -> Result<&pods_istructure::SharedArray<T>, String> {
        if let Some(i) = self.entries.iter().position(|(k, _)| *k == id) {
            return Ok(&self.entries[i].1);
        }
        let shared = store.require(id).map_err(|e| e.to_string())?;
        self.entries.push((id, shared));
        Ok(&self.entries.last().expect("just pushed").1)
    }
}

/// Upper bound on recycled frames a worker keeps around, so a spike of tiny
/// instances cannot pin memory forever. Shared by both pooled engines.
const ARENA_MAX_FREE: usize = 256;

/// Per-worker free-list of instance frames (operand-slot vectors), shared
/// by both pooled engines. Loop bodies spawn one instance per iteration;
/// recycling the frame of every finished instance turns that allocator
/// traffic into a pop/push on a thread-local vector — and keeps the two
/// schedulers' allocator costs symmetric, so `async_vs_native` timings
/// measure scheduling, not allocation.
#[derive(Default)]
pub(crate) struct InstanceArena {
    free: Vec<Vec<Option<Value>>>,
}

impl InstanceArena {
    /// A frame of `num_slots` cleared slots with `args` copied into the
    /// parameter positions. Returns `true` when the frame was recycled.
    pub(crate) fn frame(&mut self, num_slots: usize, args: &[Value]) -> (Vec<Option<Value>>, bool) {
        let (mut slots, reused) = match self.free.pop() {
            Some(v) => (v, true),
            None => (Vec::with_capacity(num_slots), false),
        };
        slots.clear();
        slots.resize(num_slots, None);
        for (i, v) in args.iter().take(num_slots).enumerate() {
            slots[i] = Some(*v);
        }
        (slots, reused)
    }

    pub(crate) fn recycle(&mut self, slots: Vec<Option<Value>>) {
        if self.free.len() < ARENA_MAX_FREE {
            self.free.push(slots);
        }
    }
}

/// Per-job liveness accounting shared by both pooled engines. `live`
/// counts existing instances (queued, running, or parked/suspended);
/// `in_flight` counts queued-or-running tasks. When `in_flight` hits zero
/// with instances still live, no future delivery can wake them: the job is
/// deadlocked.
#[derive(Default)]
pub(crate) struct JobCounts {
    pub(crate) live: usize,
    pub(crate) in_flight: usize,
}

/// The error every job cut short by pool teardown reports (both pooled
/// engines use the same wording; tests match on "cancelled").
pub(crate) fn cancellation_error() -> pods_machine::SimulationError {
    pods_machine::SimulationError::Runtime(
        "job cancelled: its runtime was dropped before the job completed".into(),
    )
}

/// Shared argument validation used by every engine.
pub(crate) fn check_invocation(program: &CompiledProgram, args: &[Value]) -> Result<(), PodsError> {
    let Some(entry) = program.hir().entry() else {
        return Err(PodsError::MissingEntry);
    };
    if entry.params.len() != args.len() {
        return Err(PodsError::ArgumentMismatch {
            expected: entry.params.len(),
            got: args.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;

    #[test]
    fn registry_resolves_names_and_aliases() {
        for name in ENGINE_NAMES {
            let engine = engine_by_name(name).unwrap();
            assert_eq!(engine.name(), name);
            assert!(!engine.description().is_empty());
        }
        assert_eq!(engine_by_name("SIMULATOR").unwrap().name(), "sim");
        assert_eq!(engine_by_name("threads").unwrap().name(), "native");
        assert!(engine_by_name("warp-drive").is_none());
    }

    #[test]
    fn engine_kind_is_typed_and_static() {
        for (kind, name) in EngineKind::ALL.into_iter().zip(ENGINE_NAMES) {
            assert_eq!(kind.name(), name);
            assert_eq!(kind.to_string(), name);
            assert_eq!(kind.engine().name(), name);
            assert_eq!(name.parse::<EngineKind>().unwrap(), kind);
            assert_eq!(kind.aliases()[0], name);
        }
        // The registry hands out the same static instance every time.
        let a = engine_by_name("sim").unwrap() as *const dyn Engine;
        let b = engine_by_name("simulator").unwrap() as *const dyn Engine;
        assert!(std::ptr::addr_eq(a, b));
        assert!(matches!(
            "warp-drive".parse::<EngineKind>(),
            Err(PodsError::UnknownEngine { name }) if name == "warp-drive"
        ));
    }

    #[test]
    fn unknown_engine_errors_list_every_valid_name_and_alias() {
        let err = "warp-drive".parse::<EngineKind>().unwrap_err();
        let message = err.to_string();
        assert!(message.contains("warp-drive"), "{message}");
        for kind in EngineKind::ALL {
            for alias in kind.aliases() {
                assert!(
                    message.contains(alias),
                    "error message must list `{alias}`: {message}"
                );
            }
        }
    }

    #[test]
    fn from_env_rejects_unknown_names_with_the_full_engine_list() {
        // `from_env` is the one place CLIs read PODS_ENGINE; a typo there
        // must name every accepted spelling. Tested through the pure core
        // (no process-environment mutation under the threaded harness).
        let err = EngineKind::from_env_value(Ok("hypercube".into())).unwrap_err();
        let message = err.to_string();
        assert!(
            matches!(err, PodsError::UnknownEngine { ref name } if name == "hypercube"),
            "{err:?}"
        );
        for name in ENGINE_NAMES {
            assert!(
                message.contains(name),
                "from_env error must list `{name}`: {message}"
            );
        }
        assert!(message.contains("threads"), "{message}");
        assert!(message.contains("simulator"), "{message}");

        // Default and alias resolution through the same core.
        assert_eq!(
            EngineKind::from_env_value(Err(std::env::VarError::NotPresent)).unwrap(),
            EngineKind::Sim
        );
        assert_eq!(
            EngineKind::from_env_value(Ok("THREADS".into())).unwrap(),
            EngineKind::Native
        );
    }

    #[test]
    fn every_engine_validates_invocations() {
        let program = compile("def main(n) { return n; }").unwrap();
        let no_main = compile("def helper(x) { return x; }").unwrap();
        for name in ENGINE_NAMES {
            let engine = engine_by_name(name).unwrap();
            assert!(matches!(
                engine.run(&program, &[], &RunOptions::default()),
                Err(PodsError::ArgumentMismatch {
                    expected: 1,
                    got: 0
                })
            ));
            assert!(matches!(
                engine.run(&no_main, &[], &RunOptions::default()),
                Err(PodsError::MissingEntry)
            ));
        }
    }

    #[test]
    fn scalar_program_agrees_across_all_engines() {
        let program = compile("def main(n) { return n * 3 + 1; }").unwrap();
        for name in ENGINE_NAMES {
            let engine = engine_by_name(name).unwrap();
            let outcome = engine
                .run(&program, &[Value::Int(4)], &RunOptions::with_pes(2))
                .unwrap();
            assert_eq!(outcome.return_value, Some(Value::Int(13)), "{name}");
            assert_eq!(outcome.engine, engine.name());
            assert!(outcome.elapsed_us() >= 0.0);
        }
    }
}
