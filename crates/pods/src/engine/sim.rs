//! The discrete-event machine-simulator engine.

use super::{check_invocation, Engine, EngineOutcome, EngineStats};
use crate::error::PodsError;
use crate::pipeline::{CompiledProgram, RunOptions};
use crate::trace::{RecorderExecSink, TraceHandle};
use pods_istructure::Value;
use pods_machine::{simulate, simulate_with_sink};
use std::time::Instant;

/// Executes the partitioned program on the instruction-level iPSC/2
/// simulator ([`pods_machine::simulate`]). Reports *simulated* elapsed time
/// on `opts.num_pes` virtual PEs — the paper's own measurement methodology.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimEngine;

impl SimEngine {
    /// [`Engine::run`] with the runtime's flight recorder attached: the
    /// shared exec core's events (suspensions, deferred loads, chunk
    /// advances) are recorded on the lane of the simulated PE that produced
    /// them, exactly as the pooled engines record theirs.
    pub(crate) fn run_traced(
        &self,
        program: &CompiledProgram,
        args: &[Value],
        opts: &RunOptions,
        trace: TraceHandle,
    ) -> Result<EngineOutcome, PodsError> {
        check_invocation(program, args)?;
        let start = Instant::now();
        let (partitioned, partition) = program.partitioned(opts);
        let sink = Box::new(RecorderExecSink { handle: trace });
        let result = simulate_with_sink(&partitioned, args, &opts.machine_config(), sink)?;
        let wall_us = start.elapsed().as_secs_f64() * 1e6;
        Ok(EngineOutcome {
            engine: self.name(),
            return_value: result.return_value,
            arrays: result.arrays,
            modelled_us: Some(result.stats.elapsed_us),
            wall_us,
            stats: EngineStats::Simulated {
                stats: result.stats,
                partition,
            },
            diagnostics: None,
        })
    }
}

impl Engine for SimEngine {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn description(&self) -> &'static str {
        "instruction-level discrete-event simulator (simulated time on N virtual PEs)"
    }

    fn run(
        &self,
        program: &CompiledProgram,
        args: &[Value],
        opts: &RunOptions,
    ) -> Result<EngineOutcome, PodsError> {
        check_invocation(program, args)?;
        let start = Instant::now();
        let (partitioned, partition) = program.partitioned(opts);
        let result = simulate(&partitioned, args, &opts.machine_config())?;
        let wall_us = start.elapsed().as_secs_f64() * 1e6;
        Ok(EngineOutcome {
            engine: self.name(),
            return_value: result.return_value,
            arrays: result.arrays,
            modelled_us: Some(result.stats.elapsed_us),
            wall_us,
            stats: EngineStats::Simulated {
                stats: result.stats,
                partition,
            },
            diagnostics: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;

    #[test]
    fn sim_outcome_carries_simulated_time_and_partition_report() {
        let program =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i + 1; } return a; }")
                .unwrap();
        let outcome = SimEngine
            .run(&program, &[Value::Int(8)], &RunOptions::with_pes(4))
            .unwrap();
        assert!(outcome.modelled_us.unwrap() > 0.0);
        assert!(outcome.wall_us > 0.0);
        assert!(outcome.eu_utilization().unwrap() > 0.0);
        assert_eq!(outcome.partition().unwrap().distributed_loops().count(), 1);
        let a = outcome.returned_array().unwrap();
        assert!(a.is_complete());
        assert_eq!(a.get(&[7]), Some(Value::Int(8)));
    }
}
