//! The sequential-interpreter engine (the correctness oracle).

use super::{check_invocation, Engine, EngineOutcome, EngineStats};
use crate::error::PodsError;
use crate::pipeline::{CompiledProgram, RunOptions};
use pods_baseline::{run_sequential_bounded, BaselineError, SequentialRun};
use pods_istructure::{ArrayId, Value};
use pods_machine::{ArraySnapshot, SimulationError, TimingModel};
use std::time::Instant;

/// Executes the program with the control-driven sequential interpreter
/// ([`pods_baseline::run_sequential`]) — no SPs, no I-structure run-time,
/// just program order with the iPSC/2 cost model. The differential tests use
/// this engine as the oracle the parallel engines must agree with.
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialEngine;

/// Maps the interpreter's step-budget exhaustion onto the engines' shared
/// event-limit error, so `RunOptions::max_events` reports uniformly across
/// `sim`, `native`, `seq`, and `pr`.
pub(crate) fn map_baseline_error(err: BaselineError, limit: u64) -> PodsError {
    if err.is_step_limit() {
        PodsError::Simulation(SimulationError::EventLimitExceeded { limit })
    } else {
        PodsError::Baseline(err)
    }
}

/// Converts the interpreter's array states into the uniform snapshot form.
pub(crate) fn baseline_snapshots(run: &SequentialRun) -> Vec<ArraySnapshot> {
    run.arrays
        .iter()
        .enumerate()
        .map(|(i, a)| ArraySnapshot {
            id: ArrayId(i),
            name: a.name.clone(),
            shape: a.shape.clone(),
            values: a.values.clone(),
        })
        .collect()
}

impl Engine for SequentialEngine {
    fn name(&self) -> &'static str {
        "seq"
    }

    fn description(&self) -> &'static str {
        "control-driven sequential interpreter (modelled time, correctness oracle)"
    }

    fn run(
        &self,
        program: &CompiledProgram,
        args: &[Value],
        opts: &RunOptions,
    ) -> Result<EngineOutcome, PodsError> {
        check_invocation(program, args)?;
        let start = Instant::now();
        let run = run_sequential_bounded(
            program.hir(),
            args,
            &TimingModel::default(),
            opts.max_events,
        )
        .map_err(|e| map_baseline_error(e, opts.max_events))?;
        let wall_us = start.elapsed().as_secs_f64() * 1e6;
        Ok(EngineOutcome {
            engine: self.name(),
            return_value: run.return_value,
            arrays: baseline_snapshots(&run),
            modelled_us: Some(run.elapsed_us),
            wall_us,
            stats: EngineStats::Sequential {
                nests: run.nests.len(),
                serial_us: run.serial_us,
            },
            diagnostics: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;

    #[test]
    fn sequential_outcome_exposes_arrays_and_profile() {
        let program =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i * 2; } return a; }")
                .unwrap();
        let outcome = SequentialEngine
            .run(&program, &[Value::Int(6)], &RunOptions::default())
            .unwrap();
        assert_eq!(
            outcome.returned_array().unwrap().get(&[5]),
            Some(Value::Int(10))
        );
        assert!(outcome.modelled_us.unwrap() > 0.0);
        assert!(matches!(
            outcome.stats,
            EngineStats::Sequential { nests: 1, .. }
        ));
        assert!(outcome.partition().is_none());
    }

    #[test]
    fn runtime_errors_surface_as_baseline_errors() {
        let program = compile("def main(n) { a = array(n); return a[0]; }").unwrap();
        let err = SequentialEngine
            .run(&program, &[Value::Int(3)], &RunOptions::default())
            .unwrap_err();
        assert!(matches!(err, PodsError::Baseline(_)), "{err}");
    }

    #[test]
    fn max_events_is_enforced_as_a_statement_budget() {
        let program =
            compile("def main(n) { a = array(n); for i = 0 to n - 1 { a[i] = i; } return a; }")
                .unwrap();
        let opts = RunOptions {
            max_events: 4,
            ..RunOptions::default()
        };
        let err = SequentialEngine
            .run(&program, &[Value::Int(64)], &opts)
            .unwrap_err();
        assert!(
            matches!(
                err,
                PodsError::Simulation(pods_machine::SimulationError::EventLimitExceeded {
                    limit: 4
                })
            ),
            "{err}"
        );
        // Unlimited by default.
        assert!(SequentialEngine
            .run(&program, &[Value::Int(64)], &RunOptions::default())
            .is_ok());
    }
}
